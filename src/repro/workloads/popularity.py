"""Topic popularity models.

Section 5.1 points out that "not every topic has the same popularity and
even the rate at which processes subscribe and unsubscribe can be different
for two distinct topics".  The workload generators therefore draw both the
subscription interest and the publication traffic from configurable
popularity distributions — uniform for control experiments, Zipf for the
realistic skewed case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.rng import weighted_choice, zipf_weights

__all__ = ["TopicPopularity"]


@dataclass(frozen=True)
class TopicPopularity:
    """A fixed set of topics with a popularity weight per topic.

    ``topics[0]`` is the most popular.  Use :meth:`uniform` or :meth:`zipf`
    to construct; :meth:`sample` draws one topic according to the weights and
    :meth:`subscriber_quota` converts the weights into integer subscriber
    counts for population-assignment workloads.
    """

    topics: Sequence[str]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if not self.topics:
            raise ValueError("at least one topic is required")
        if len(self.topics) != len(self.weights):
            raise ValueError("topics and weights must have the same length")
        if any(weight < 0 for weight in self.weights):
            raise ValueError("weights must be non-negative")
        if sum(self.weights) <= 0:
            raise ValueError("weights must not all be zero")

    # --------------------------------------------------------- constructors

    @staticmethod
    def uniform(topic_count: int, prefix: str = "topic") -> "TopicPopularity":
        """Equally popular topics ``{prefix}-00 ...``."""
        topics = [f"{prefix}-{index:02d}" for index in range(topic_count)]
        return TopicPopularity(topics=topics, weights=[1.0] * topic_count)

    @staticmethod
    def zipf(topic_count: int, exponent: float = 1.0, prefix: str = "topic") -> "TopicPopularity":
        """Zipf-distributed popularity (rank 1 = most popular)."""
        topics = [f"{prefix}-{index:02d}" for index in range(topic_count)]
        return TopicPopularity(topics=topics, weights=zipf_weights(topic_count, exponent))

    @staticmethod
    def hierarchy(
        roots: int, children_per_root: int, exponent: float = 1.0, prefix: str = "topic"
    ) -> "TopicPopularity":
        """Two-level hierarchical topics ``root/child`` with Zipf weights.

        Used by the data-aware multicast experiments, which need a topic
        hierarchy rather than a flat list.
        """
        names: List[str] = []
        for root_index in range(roots):
            for child_index in range(children_per_root):
                names.append(f"{prefix}-{root_index:02d}/sub-{child_index:02d}")
        return TopicPopularity(topics=names, weights=zipf_weights(len(names), exponent))

    # -------------------------------------------------------------- queries

    @property
    def normalised_weights(self) -> List[float]:
        """Weights rescaled to sum to 1."""
        total = sum(self.weights)
        return [weight / total for weight in self.weights]

    def probability_of(self, topic: str) -> float:
        """Normalised popularity of one topic (0 if unknown)."""
        try:
            index = list(self.topics).index(topic)
        except ValueError:
            return 0.0
        return self.normalised_weights[index]

    def sample(self, rng: random.Random) -> str:
        """Draw one topic according to popularity."""
        return weighted_choice(rng, list(self.topics), list(self.weights))

    def sample_many(self, rng: random.Random, count: int, distinct: bool = False) -> List[str]:
        """Draw ``count`` topics; with ``distinct=True`` no topic repeats."""
        if not distinct:
            return [self.sample(rng) for _ in range(count)]
        if count >= len(self.topics):
            return list(self.topics)
        chosen: List[str] = []
        remaining = list(self.topics)
        remaining_weights = list(self.weights)
        for _ in range(count):
            pick = weighted_choice(rng, remaining, remaining_weights)
            index = remaining.index(pick)
            remaining.pop(index)
            remaining_weights.pop(index)
            chosen.append(pick)
        return chosen

    def subscriber_quota(self, population: int) -> Dict[str, int]:
        """Integer subscriber counts per topic proportional to popularity.

        Every topic gets at least one subscriber as long as the population
        allows it, so unpopular topics are not silently dropped from
        experiments.
        """
        if population <= 0:
            return {topic: 0 for topic in self.topics}
        weights = self.normalised_weights
        quotas = {topic: max(1, round(weight * population)) for topic, weight in zip(self.topics, weights)}
        return quotas
