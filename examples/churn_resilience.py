#!/usr/bin/env python
"""Churn resilience: fairness without giving up gossip's robustness.

The paper motivates fairness with churn — participants who feel exploited
leave abruptly — and simultaneously demands that a fair protocol keep the
robustness that makes gossip attractive (§5.2).  This script subjects
classic and fair gossip to increasing node churn plus 5% message loss and a
mid-run network partition, and reports delivery ratio and fairness side by
side.

Run with::

    python examples/churn_resilience.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.analysis import Table
from repro.experiments import ExperimentConfig, run_experiment
from repro.pubsub import TopicFilter
from repro.sim import PartitionInjector
from repro.workloads import TopicPopularity, TopicPublicationWorkload
from repro.experiments.scenarios import build_simulation, build_system


def churn_sweep() -> None:
    table = Table(
        ["system", "churn", "delivery_ratio", "ratio_jain", "wasted_share"],
        title="Delivery and fairness under node churn (plus 5% message loss)",
    )
    for system in ("gossip", "fair-gossip"):
        for churn in (0.0, 0.03, 0.08):
            config = ExperimentConfig(
                name=f"churn/{system}/{churn}",
                system=system,
                nodes=72,
                topics=8,
                duration=20.0,
                drain_time=15.0,
                publication_rate=3.0,
                loss_rate=0.05,
                churn_down_probability=churn,
                churn_up_probability=0.5,
                fanout=4,
                seed=31,
            )
            result = run_experiment(config)
            table.add_row(
                system=system,
                churn=churn,
                delivery_ratio=result.reliability.delivery_ratio,
                ratio_jain=result.fairness.report.ratio_jain,
                wasted_share=result.fairness.report.wasted_share,
            )
    print(table.render())


def partition_demo() -> None:
    """A 10-round network partition: gossip heals itself once it lifts."""
    config = ExperimentConfig(
        name="partition", system="fair-gossip", nodes=60, topics=4, duration=0.0, seed=17
    )
    simulator, network = build_simulation(config)
    system = build_system(config, simulator, network)
    for node_id in system.node_ids():
        system.subscribe(node_id, TopicFilter("alerts"))
    popularity = TopicPopularity.uniform(1, prefix="alerts")
    # Rename the single generated topic to the subscribed one.
    popularity = TopicPopularity(topics=["alerts"], weights=[1.0])
    workload = TopicPublicationWorkload(
        system, simulator, popularity, publishers=system.node_ids()[:3], rate=2.0
    )
    workload.start(duration=40.0, start_at=1.0)
    PartitionInjector(simulator, network).split_in_two(
        system.node_ids(), time=10.0, heal_after=10.0
    )
    simulator.run(until=70.0)
    delivered = system.delivery_log.total_deliveries()
    expected = len(workload.schedule.events) * len(system.node_ids())
    print(
        f"\n10-round partition at t=10: delivered {delivered} of {expected} "
        f"({delivered / expected:.1%}) — dissemination resumes once the partition heals"
    )


def main() -> None:
    churn_sweep()
    partition_demo()


if __name__ == "__main__":
    main()
