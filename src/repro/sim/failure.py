"""Compatibility shim: failure injection now lives in :mod:`repro.faults`.

The paper motivates fairness partly through *churn* (§3.2); the machinery
that injects it — crash/recover schedules, continuous churn, transient
partitions, and the declarative :class:`~repro.faults.plan.FaultPlan` that
drives both the simulator and the live runtime — is the
:mod:`repro.faults` package.  This module re-exports the imperative
injectors under their historical import path.
"""

from __future__ import annotations

from ..faults.injectors import ChurnInjector, CrashEvent, CrashSchedule, PartitionInjector

__all__ = ["CrashEvent", "CrashSchedule", "ChurnInjector", "PartitionInjector"]
