"""Tests for the broker baseline and data-aware multicast."""

from __future__ import annotations

import pytest

from repro.brokers import BrokerSystem
from repro.core import EXPRESSIVE_POLICY, evaluate_fairness
from repro.damulticast import DataAwareMulticastSystem
from repro.pubsub import ContentFilter, TopicFilter, TopicHierarchy
from repro.sim import Network, Simulator


def make_ids(count):
    return [f"c{index:02d}" for index in range(count)]


class TestBrokerSystem:
    def build(self, count=20, brokers=2, seed=30):
        simulator = Simulator(seed=seed)
        network = Network(simulator)
        ids = make_ids(count)
        return BrokerSystem(simulator, network, ids, broker_count=brokers), simulator, ids

    def test_topic_subscription_delivery(self):
        system, simulator, ids = self.build()
        for index, node_id in enumerate(ids):
            system.subscribe(node_id, TopicFilter("news" if index % 2 == 0 else "sports"))
        system.publish(ids[1], topic="news")
        simulator.run(until=simulator.now + 5)
        assert system.delivery_log.total_deliveries() == 10

    def test_content_subscription_delivery(self):
        system, simulator, ids = self.build(count=10, seed=31)
        system.subscribe(ids[0], ContentFilter.build(category="metals"))
        system.subscribe(ids[1], ContentFilter.build(category="energy"))
        system.publish(ids[2], category="metals", level=5)
        simulator.run(until=simulator.now + 5)
        assert system.delivery_log.nodes() == [ids[0]]

    def test_cross_broker_forwarding(self):
        system, simulator, ids = self.build(count=10, brokers=2, seed=32)
        # Clients are assigned round-robin, so ids[0] and ids[1] have
        # different home brokers; a publication by ids[1] must still reach
        # ids[0] through broker-to-broker forwarding.
        system.subscribe(ids[0], TopicFilter("t"))
        system.publish(ids[1], topic="t")
        simulator.run(until=simulator.now + 5)
        assert system.delivery_log.delivery_count(ids[0]) == 1
        interbroker = sum(
            system.ledger.account(broker).gossip_messages_sent for broker in system.broker_ids()
        )
        assert interbroker > 0

    def test_single_broker_system_works(self):
        system, simulator, ids = self.build(count=8, brokers=1, seed=33)
        for node_id in ids:
            system.subscribe(node_id, TopicFilter("t"))
        system.publish(ids[0], topic="t")
        simulator.run(until=simulator.now + 5)
        assert system.delivery_log.total_deliveries() == 8

    def test_unsubscribe_stops_delivery(self):
        system, simulator, ids = self.build(count=6, seed=34)
        system.subscribe(ids[0], TopicFilter("t"))
        simulator.run(until=simulator.now + 2)
        system.unsubscribe(ids[0], TopicFilter("t"))
        simulator.run(until=simulator.now + 2)
        system.publish(ids[1], topic="t")
        simulator.run(until=simulator.now + 5)
        assert system.delivery_log.delivery_count(ids[0]) == 0

    def test_brokers_carry_nearly_all_contribution(self):
        system, simulator, ids = self.build(count=30, brokers=2, seed=35)
        for node_id in ids:
            system.subscribe(node_id, TopicFilter("t"))
        for index in range(20):
            system.publish(ids[index % len(ids)], topic="t")
            simulator.run(until=simulator.now + 0.2)
        simulator.run(until=simulator.now + 5)
        report = evaluate_fairness(
            EXPRESSIVE_POLICY.contributions(system.ledger),
            EXPRESSIVE_POLICY.benefits(system.ledger),
        )
        assert report.wasted_share > 0.8  # brokers work, clients benefit
        broker_sends = sum(
            system.ledger.account(broker).gossip_messages_sent for broker in system.broker_ids()
        )
        client_sends = sum(
            system.ledger.account(client).gossip_messages_sent for client in ids
        )
        assert broker_sends > client_sends

    def test_duplicate_event_not_redelivered(self):
        system, simulator, ids = self.build(count=6, brokers=2, seed=36)
        system.subscribe(ids[0], TopicFilter("t"))
        event = system.publish(ids[1], topic="t")
        simulator.run(until=simulator.now + 5)
        # Re-inject the same event id; brokers must drop it as already seen.
        system.clients[ids[1]].publish(event)
        simulator.run(until=simulator.now + 5)
        assert system.delivery_log.delivery_count(ids[0]) == 1

    def test_invalid_construction(self):
        simulator = Simulator(seed=1)
        network = Network(simulator)
        with pytest.raises(ValueError):
            BrokerSystem(simulator, network, [], broker_count=1)
        with pytest.raises(ValueError):
            BrokerSystem(simulator, network, make_ids(2), broker_count=0)


class TestDataAwareMulticast:
    def build(self, count=30, seed=40, fanout=4, delegates=2):
        simulator = Simulator(seed=seed)
        network = Network(simulator)
        ids = make_ids(count)
        hierarchy = TopicHierarchy(["sports/football", "sports/tennis", "tech/ai"])
        system = DataAwareMulticastSystem(
            simulator,
            network,
            ids,
            hierarchy=hierarchy,
            fanout=fanout,
            delegates_per_root=delegates,
        )
        return system, simulator, ids

    def test_subscribers_deliver_their_topic(self):
        system, simulator, ids = self.build()
        for index, node_id in enumerate(ids[:20]):
            topic = "sports/football" if index % 2 == 0 else "tech/ai"
            system.subscribe(node_id, TopicFilter(topic))
        for index in range(10):
            system.publish(ids[25], topic="sports/football")
            simulator.run(until=simulator.now + 0.5)
        simulator.run(until=simulator.now + 10)
        football_subscribers = {ids[index] for index in range(0, 20, 2)}
        delivered = {
            record.node_id
            for event_id in system.delivery_log.event_ids()
            for record in system.delivery_log.deliveries_of_event(event_id)
        }
        assert delivered.issubset(football_subscribers)
        assert len(delivered) >= 0.8 * len(football_subscribers)

    def test_non_subscribers_do_not_deliver(self):
        system, simulator, ids = self.build(count=12, seed=41)
        system.subscribe(ids[0], TopicFilter("tech/ai"))
        system.publish(ids[1], topic="sports/football")
        simulator.run(until=simulator.now + 10)
        assert system.delivery_log.total_deliveries() == 0

    def test_publisher_outside_group_uses_delegate(self):
        system, simulator, ids = self.build(count=20, seed=42)
        for node_id in ids[:6]:
            system.subscribe(node_id, TopicFilter("sports/football"))
        # ids[15] never subscribed; its publication must be handed off.
        system.publish(ids[15], topic="sports/football")
        simulator.run(until=simulator.now + 10)
        assert system.delivery_log.total_deliveries() >= 4
        assert system.delegates()  # delegates were recruited

    def test_delegates_forward_topics_they_do_not_deliver(self):
        system, simulator, ids = self.build(count=24, seed=43)
        for node_id in ids[:8]:
            system.subscribe(node_id, TopicFilter("sports/football"))
        for node_id in ids[8:12]:
            system.subscribe(node_id, TopicFilter("sports/tennis"))
        for index in range(15):
            system.publish(ids[20], topic="sports/football")
            system.publish(ids[21], topic="sports/tennis")
            simulator.run(until=simulator.now + 0.4)
        simulator.run(until=simulator.now + 10)
        delegate_ids = {node for nodes in system.delegates().values() for node in nodes}
        assert delegate_ids
        # At least one delegate forwarded traffic on a topic it never delivered
        # (broker-like behaviour, the paper's §4.2 observation).
        unfair_delegates = [
            node_id
            for node_id in delegate_ids
            if system.ledger.account(node_id).gossip_messages_sent > 0
            and system.ledger.account(node_id).events_delivered
            < system.ledger.account(node_id).events_forwarded
        ]
        assert unfair_delegates

    def test_ordinary_members_are_fair(self):
        system, simulator, ids = self.build(count=30, seed=44)
        for index, node_id in enumerate(ids):
            topic = ["sports/football", "sports/tennis", "tech/ai"][index % 3]
            system.subscribe(node_id, TopicFilter(topic))
        for index in range(30):
            topic = ["sports/football", "sports/tennis", "tech/ai"][index % 3]
            system.publish(ids[(index * 7) % 30], topic=topic)
            simulator.run(until=simulator.now + 0.3)
        simulator.run(until=simulator.now + 10)
        report = evaluate_fairness(
            EXPRESSIVE_POLICY.contributions(system.ledger),
            EXPRESSIVE_POLICY.benefits(system.ledger),
        )
        assert report.ratio_jain > 0.6

    def test_content_filter_rejected(self):
        system, _, ids = self.build(count=4, seed=45)
        with pytest.raises(TypeError):
            system.subscribe(ids[0], ContentFilter.build(level=1))

    def test_invalid_construction(self):
        simulator = Simulator(seed=1)
        network = Network(simulator)
        with pytest.raises(ValueError):
            DataAwareMulticastSystem(simulator, network, [])
        with pytest.raises(ValueError):
            DataAwareMulticastSystem(simulator, network, make_ids(4), delegates_per_root=0)
