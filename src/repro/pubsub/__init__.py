"""Selective information dissemination model (Section 2 of the paper).

Events, topics and topic hierarchies, subscription filters (topic-based and
content-based), subscription tables, matching engines, and the
publish/subscribe/unsubscribe interface that every dissemination system in
this repository implements.
"""

from .events import Event, EventFactory, TOPIC_ATTRIBUTE
from .filters import (
    AndFilter,
    AttributeCondition,
    ContentFilter,
    Filter,
    InterestFunction,
    MatchAllFilter,
    MatchNoneFilter,
    NotFilter,
    OrFilter,
    TopicFilter,
    filter_from_dict,
)
from .interfaces import DeliveryCallback, DeliveryLog, DeliveryRecord, DisseminationSystem
from .matching import CountingContentIndex, MatchingEngine, TopicIndex
from .subscriptions import Subscription, SubscriptionTable
from .topics import Topic, TopicHierarchy, topic_path

__all__ = [
    "Event",
    "EventFactory",
    "TOPIC_ATTRIBUTE",
    "Filter",
    "TopicFilter",
    "ContentFilter",
    "AttributeCondition",
    "AndFilter",
    "OrFilter",
    "NotFilter",
    "MatchAllFilter",
    "MatchNoneFilter",
    "InterestFunction",
    "filter_from_dict",
    "DeliveryCallback",
    "DeliveryLog",
    "DeliveryRecord",
    "DisseminationSystem",
    "MatchingEngine",
    "TopicIndex",
    "CountingContentIndex",
    "Subscription",
    "SubscriptionTable",
    "Topic",
    "TopicHierarchy",
    "topic_path",
]
