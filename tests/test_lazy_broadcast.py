"""Tests for the two-phase lazy probabilistic broadcast (``lazy-push``).

The protocol's correctness surface, pinned from four angles:

* **mechanics** — store-set selection, the infection estimator, eager-budget
  retirement (non-store nodes drop payloads, stores keep them), id garbage
  collection, pull suppression/retry, and the digest → request → reply
  recovery flow, all at the single-node level;
* **end-to-end invariants** — under fixed seeds and Bernoulli loss the lazy
  system delivers at least as much as plain push on the same seed while the
  store occupancy stays inside its bound, and byte-identical golden traces
  make the whole exchange (including the loss model's draws) reproducible;
* **compatibility** — the four lazy wire kinds round-trip through the
  runtime codec, the node runs unmodified on the live host, and the
  ``alpha`` config field is cache-neutral at its default so the pinned
  PR-1/PR-3 cache keys survive;
* **operability** — registry error paths fail fast with did-you-mean
  messages, and the recovery counters flow through FaultPlan runs into the
  ``repro report`` recovery table in both engines.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.experiments import (
    ExperimentConfig,
    StackSpec,
    config_hash,
    get_scenario,
    run_experiment,
)
from repro.experiments.cli import main as cli_main
from repro.faults import FaultPlan, FaultSpec
from repro.gossip import (
    LAZY_DIGEST_KIND,
    LAZY_PUSH_KIND,
    LAZY_REPLY_KIND,
    LAZY_REQUEST_KIND,
    GossipSystem,
    LazyPushGossipNode,
    eager_push_rounds,
    lazy_store_ids,
)
from repro.gossip.push import GossipMessage
from repro.gossip.pushpull import DigestMessage, PullRequest
from repro.pubsub import TopicFilter
from repro.pubsub.events import Event
from repro.registry import (
    MEMBERSHIP,
    RegistryError,
    build_interest_model,
    build_popularity,
    build_stack,
    parse_spec_overrides,
)
from repro.runtime.host import NodeHost
from repro.runtime.transport import MemoryTransport
from repro.runtime.wire import decode_message, encode_message
from repro.sim import BernoulliLoss, Network, Simulator, UniformLatency
from repro.sim.network import Message
from repro.sim.rng import RngRegistry
from repro.telemetry.report import _recovery_table, load_report_source, render_snapshots
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.workloads import TopicPopularity, TopicPublicationWorkload

# Pinned pre-lazy cache keys (identical literals to test_registry_specs):
# the ``alpha`` field must not disturb them.
SMOKE_CONFIG_HASH = "1cf8fcce9dce9547b8ba7d369156e39045a0194e020f154fe35dce71c1866442"
SMOKE_BROKERS_CONFIG_HASH = "65d5faff74bf5437fbe010ef5bee2c2dfe13bc5d18f14a10e5d79e8f79120753"


def make_event(index: int = 0, topic: str = "news", size: int = 32) -> Event:
    return Event(
        event_id=f"pub#{index}",
        publisher="pub",
        attributes={"topic": topic},
        published_at=0.0,
        size=size,
    )


def quiet_lazy_system(nodes: int = 8, seed: int = 3, **node_overrides):
    """A lazy system whose gossip rounds are silenced (``fanout=0``).

    Rounds still tick (ageing, GC) but send nothing, so handler-level tests
    see exactly the messages they inject.
    """
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    node_ids = [f"n{i}" for i in range(nodes)]
    kwargs = {
        "fanout": 0,
        "gossip_size": 8,
        "alpha": 0.5,
        "store_ids": lazy_store_ids(node_ids, 0.5),
        "population": nodes,
    }
    kwargs.update(node_overrides)
    system = GossipSystem(
        simulator,
        network,
        node_ids,
        node_class=LazyPushGossipNode,
        node_kwargs=kwargs,
        bootstrap_degree=4,
    )
    return simulator, network, system


def store_and_plain(system):
    """One store node and one non-store node from a quiet system."""
    store = next(node for node in system.nodes.values() if node.is_store)
    plain = next(node for node in system.nodes.values() if not node.is_store)
    return store, plain


# ---------------------------------------------------------------------------
# Store selection and the infection estimator
# ---------------------------------------------------------------------------


class TestStoreSelection:
    IDS = tuple(f"node-{i:03d}" for i in range(20))

    def test_selection_is_deterministic_and_order_free(self):
        forward = lazy_store_ids(self.IDS, 0.3)
        assert forward == lazy_store_ids(reversed(self.IDS), 0.3)
        assert forward == lazy_store_ids(list(self.IDS) * 2, 0.3)

    def test_selection_size_is_ceil_of_the_fraction(self):
        for alpha in (0.05, 0.25, 0.3, 0.5, 0.75, 1.0):
            selected = lazy_store_ids(self.IDS, alpha)
            assert len(selected) == max(1, math.ceil(alpha * len(self.IDS)))
            assert selected <= frozenset(self.IDS)

    def test_alpha_one_selects_everyone(self):
        assert lazy_store_ids(self.IDS, 1.0) == frozenset(self.IDS)

    def test_growing_alpha_grows_the_same_prefix(self):
        # Hash ranking means smaller store sets nest inside larger ones, so
        # sweeping alpha changes capacity without reshuffling who stores.
        assert lazy_store_ids(self.IDS, 0.1) <= lazy_store_ids(self.IDS, 0.5)
        assert lazy_store_ids(self.IDS, 0.5) <= lazy_store_ids(self.IDS, 0.9)

    @pytest.mark.parametrize("alpha", [0.0, -0.25, 1.0001, 7])
    def test_bad_alpha_is_rejected(self, alpha):
        with pytest.raises(ValueError, match="alpha"):
            lazy_store_ids(self.IDS, alpha)

    def test_empty_population_yields_empty_store_set(self):
        assert lazy_store_ids((), 0.5) == frozenset()


class TestEagerRounds:
    def test_budget_grows_with_population_and_shrinks_with_fanout(self):
        assert eager_push_rounds(1000, 3) > eager_push_rounds(50, 3)
        assert eager_push_rounds(1000, 8) < eager_push_rounds(1000, 2)

    def test_budget_is_the_push_doubling_time_plus_slack(self):
        # 128 nodes at fanout 2: log2(64) = 6 rounds to half, plus one slack.
        assert eager_push_rounds(128, 2) == 7

    def test_tiny_systems_still_get_a_usable_budget(self):
        assert eager_push_rounds(2, 1) >= 2
        assert eager_push_rounds(0, 0) >= 2


# ---------------------------------------------------------------------------
# Wire codecs for the four lazy kinds
# ---------------------------------------------------------------------------


class TestLazyWireCodecs:
    def roundtrip(self, message: Message) -> Message:
        return decode_message(encode_message(message))

    def test_lazy_push_roundtrip(self):
        payload = GossipMessage(
            events=(make_event(0), make_event(1)), sender_benefit_rate=0.5
        )
        decoded = self.roundtrip(
            Message("a", "b", LAZY_PUSH_KIND, payload=payload, size=4, sent_at=1.5)
        )
        assert decoded.kind == LAZY_PUSH_KIND
        assert [event.to_dict() for event in decoded.payload.events] == [
            event.to_dict() for event in payload.events
        ]

    def test_lazy_reply_roundtrip(self):
        payload = GossipMessage(events=(make_event(9),), sender_benefit_rate=1.25)
        decoded = self.roundtrip(Message("b", "a", LAZY_REPLY_KIND, payload=payload))
        assert decoded.kind == LAZY_REPLY_KIND
        assert decoded.payload.events[0] == make_event(9)
        assert decoded.payload.sender_benefit_rate == 1.25

    def test_lazy_digest_roundtrip(self):
        payload = DigestMessage(event_ids=("e1", "e2", "e3"), sender_benefit_rate=0.75)
        decoded = self.roundtrip(Message("a", "b", LAZY_DIGEST_KIND, payload=payload))
        assert decoded.kind == LAZY_DIGEST_KIND
        assert decoded.payload == payload

    def test_lazy_request_roundtrip(self):
        payload = PullRequest(event_ids=("e2", "e9"))
        decoded = self.roundtrip(Message("b", "a", LAZY_REQUEST_KIND, payload=payload))
        assert decoded.kind == LAZY_REQUEST_KIND
        assert decoded.payload == payload


# ---------------------------------------------------------------------------
# Node mechanics (quiet system: injected messages only)
# ---------------------------------------------------------------------------


class TestNodeMechanics:
    def test_node_constructor_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            quiet_lazy_system(alpha=1.5, store_ids=None)

    def test_standalone_node_is_its_own_store(self):
        # Without an explicit store set every node stores itself, so unit
        # fixtures can always serve their own pulls.
        _, _, system = quiet_lazy_system(store_ids=None)
        assert all(node.is_store for node in system.nodes.values())

    def test_absorb_is_at_most_once(self):
        _, _, system = quiet_lazy_system()
        node = next(iter(system.nodes.values()))
        system.subscribe(node.node_id, TopicFilter("news"))
        event = make_event()
        assert node._absorb_event(event) is True
        assert node._absorb_event(event) is False
        assert len(node.delivery_log.deliveries_by_node(node.node_id)) == 1

    def test_absorb_arms_the_eager_budget(self):
        _, _, system = quiet_lazy_system()
        store, plain = store_and_plain(system)
        for node in (store, plain):
            event = make_event()
            node._absorb_event(event)
            assert node._id_age[event.event_id] == 0
            assert node._hot_budget[event.event_id] == node.eager_rounds
        assert make_event().event_id in store.store
        assert make_event().event_id not in plain.store

    def test_non_store_node_drops_payload_after_the_eager_phase(self):
        _, _, system = quiet_lazy_system()
        _, plain = store_and_plain(system)
        event = make_event()
        plain._absorb_event(event)
        for _ in range(plain.eager_rounds):
            plain.after_round()
        assert plain._event_payload(event.event_id) is None
        assert plain.buffer.get(event.event_id) is None
        # ...but the id survives for digests until GC.
        assert event.event_id in plain._id_age

    def test_store_node_keeps_payload_after_the_eager_phase(self):
        _, _, system = quiet_lazy_system()
        store, _ = store_and_plain(system)
        event = make_event()
        store._absorb_event(event)
        for _ in range(store.eager_rounds):
            store.after_round()
        assert store._event_payload(event.event_id) == event

    def test_store_occupancy_is_bounded_fifo(self):
        _, _, system = quiet_lazy_system(buffer_capacity=4)
        store, _ = store_and_plain(system)
        for index in range(10):
            store._absorb_event(make_event(index))
        assert len(store.store) == store.store_capacity == 4
        assert make_event(0).event_id not in store.store  # oldest evicted
        assert make_event(9).event_id in store.store

    def test_aged_ids_are_garbage_collected_everywhere(self):
        _, _, system = quiet_lazy_system(buffer_max_rounds=3)
        store, _ = store_and_plain(system)
        event = make_event()
        store._absorb_event(event)
        assert store.id_gc_rounds == 3
        for _ in range(store.id_gc_rounds + 1):
            store.after_round()
        assert event.event_id not in store._id_age
        assert event.event_id not in store.store
        assert store.buffer.get(event.event_id) is None

    def test_pending_pull_suppresses_duplicates_then_retries(self):
        _, _, system = quiet_lazy_system()
        store, plain = store_and_plain(system)
        digest = Message(
            sender=store.node_id,
            recipient=plain.node_id,
            kind=LAZY_DIGEST_KIND,
            payload=DigestMessage(event_ids=("ghost#1",), sender_benefit_rate=0.0),
        )
        plain.on_message(digest)
        plain.on_message(digest)  # same round: suppressed
        assert plain.pulls_issued == 1
        for _ in range(plain.pull_retry_rounds):
            plain.after_round()  # retry window expires
        plain.on_message(digest)
        assert plain.pulls_issued == 2

    def test_known_digest_ids_count_as_saved_events(self):
        _, _, system = quiet_lazy_system()
        store, plain = store_and_plain(system)
        event = make_event()
        plain._absorb_event(event)
        digest = Message(
            sender=store.node_id,
            recipient=plain.node_id,
            kind=LAZY_DIGEST_KIND,
            payload=DigestMessage(event_ids=(event.event_id,), sender_benefit_rate=0.0),
        )
        plain.on_message(digest)
        assert plain.events_saved == 1
        assert plain.pulls_issued == 0


class TestRecoveryFlow:
    def test_digest_request_reply_recovers_the_missing_event(self):
        simulator, network, system = quiet_lazy_system()
        store, plain = store_and_plain(system)
        system.subscribe(plain.node_id, TopicFilter("news"))
        event = make_event()
        store._absorb_event(event)
        plain.on_message(
            Message(
                sender=store.node_id,
                recipient=plain.node_id,
                kind=LAZY_DIGEST_KIND,
                payload=DigestMessage(
                    event_ids=(event.event_id,), sender_benefit_rate=0.0
                ),
            )
        )
        assert plain.pulls_issued == 1
        simulator.run(until=5.0)  # request reaches the store, reply comes back
        assert store.pulls_served == 1
        assert plain.recoveries == 1
        assert event.event_id in plain.seen_event_ids
        assert plain.delivery_log.delivered(plain.node_id, event.event_id)
        assert network.stats.sent_by_kind.get(LAZY_REQUEST_KIND, 0) == 1
        assert network.stats.sent_by_kind.get(LAZY_REPLY_KIND, 0) == 1

    def test_duplicate_replies_do_not_double_count_recoveries(self):
        _, _, system = quiet_lazy_system()
        store, plain = store_and_plain(system)
        event = make_event()
        reply = Message(
            sender=store.node_id,
            recipient=plain.node_id,
            kind=LAZY_REPLY_KIND,
            payload=GossipMessage(events=(event,), sender_benefit_rate=0.0),
        )
        plain.on_message(reply)
        plain.on_message(reply)
        assert plain.recoveries == 1

    def test_requests_for_unknown_ids_are_silently_unserved(self):
        simulator, network, system = quiet_lazy_system()
        store, plain = store_and_plain(system)
        store.on_message(
            Message(
                sender=plain.node_id,
                recipient=store.node_id,
                kind=LAZY_REQUEST_KIND,
                payload=PullRequest(event_ids=("never-published#1",)),
            )
        )
        simulator.run(until=2.0)
        assert store.pulls_served == 0
        assert network.stats.sent_by_kind.get(LAZY_REPLY_KIND, 0) == 0


# ---------------------------------------------------------------------------
# End-to-end invariants on fixed seeds
# ---------------------------------------------------------------------------

#: The verified comparison shape: the sweep over seeds {1,2,3,7,11,23,42} ×
#: loss {0.05,0.15,0.25} on this 24-node workload showed lazy-push matching
#: or beating plain push on delivery ratio in every cell and beating it on
#: reliability-per-byte in every cell.  The pinned combos below are a
#: deterministic subsample of that sweep.
_COMPARISON_SHAPE = dict(
    nodes=24,
    topics=6,
    interest_model="zipf",
    max_topics_per_node=4,
    publication_rate=2.0,
    duration=6.0,
    drain_time=8.0,  # the digest cadence needs the longer drain to converge
    fanout=3,
    gossip_size=8,
)

_RUN_CACHE = {}


def lossy_run(system: str, seed: int, loss: float):
    key = (system, seed, loss)
    if key not in _RUN_CACHE:
        config = ExperimentConfig(
            name=f"lazy-prop-{system}",
            system=system,
            seed=seed,
            loss_rate=loss,
            **_COMPARISON_SHAPE,
        )
        _RUN_CACHE[key] = run_experiment(config, keep_system=True)
    return _RUN_CACHE[key]


class TestEndToEndInvariants:
    def test_smoke_lazy_scenario_recovers_to_full_delivery(self):
        result = run_experiment(get_scenario("smoke-lazy").config, keep_system=True)
        assert result.delivery_ratio == pytest.approx(1.0)
        nodes = result.system.nodes.values()
        assert sum(node.pulls_issued for node in nodes) > 0
        assert sum(node.pulls_served for node in nodes) > 0
        assert sum(node.recoveries for node in nodes) > 0
        assert sum(node.events_saved for node in nodes) > 0

    def test_store_fraction_and_occupancy_bounds_hold(self):
        result = lossy_run("lazy-push", seed=7, loss=0.15)
        nodes = list(result.system.nodes.values())
        stores = [node for node in nodes if node.is_store]
        assert len(stores) == math.ceil(0.5 * len(nodes))
        for node in nodes:
            assert len(node.store) <= node.store_capacity
            if not node.is_store:
                assert not node.store

    def test_every_node_delivers_at_most_once_per_event(self):
        result = lossy_run("lazy-push", seed=7, loss=0.15)
        log = result.system.delivery_log
        for node_id in result.system.nodes:
            records = log.deliveries_by_node(node_id)
            assert len(records) == len({record.event_id for record in records})

    @pytest.mark.parametrize(
        "seed,loss", [(7, 0.15), (23, 0.25), (42, 0.25)]
    )
    def test_delivery_ratio_matches_or_beats_plain_push(self, seed, loss):
        lazy = lossy_run("lazy-push", seed, loss)
        push = lossy_run("gossip", seed, loss)
        assert lazy.delivery_ratio >= push.delivery_ratio

    def test_reliability_per_byte_beats_plain_push_under_loss(self):
        lazy = lossy_run("lazy-push", seed=7, loss=0.15)
        push = lossy_run("gossip", seed=7, loss=0.15)
        lazy_rpb = lazy.delivery_ratio / lazy.system.network.stats.bytes_sent
        push_rpb = push.delivery_ratio / push.system.network.stats.bytes_sent
        assert lazy_rpb > push_rpb


# ---------------------------------------------------------------------------
# Golden traces
# ---------------------------------------------------------------------------


def run_traced_lazy(seed: int) -> bytes:
    """One small lazy run with stochastic latency AND loss, fully traced.

    Mirrors ``test_sim_determinism.run_traced_system``: byte-identical
    traces mean every RNG draw — gossip targets, digest phases, loss,
    latency, recovery targets — replayed identically.
    """
    import json

    simulator = Simulator(seed=seed)
    network = Network(
        simulator,
        latency_model=UniformLatency(0.05, 0.25),
        loss_model=BernoulliLoss(0.1),
    )
    trace = []
    network.add_delivery_hook(
        lambda message, delivered_at: trace.append(
            [message.sender, message.recipient, message.kind, message.sent_at, delivered_at]
        )
    )
    node_ids = [f"n{i}" for i in range(12)]
    system = GossipSystem(
        simulator,
        network,
        node_ids,
        node_class=LazyPushGossipNode,
        node_kwargs={
            "fanout": 3,
            "gossip_size": 8,
            "alpha": 0.5,
            "store_ids": lazy_store_ids(node_ids, 0.5),
            "population": len(node_ids),
        },
        bootstrap_degree=4,
    )
    for index, node_id in enumerate(system.node_ids()):
        if index % 2 == 0:
            system.subscribe(node_id, TopicFilter("news"))
    popularity = TopicPopularity.zipf(4, exponent=1.0)
    workload = TopicPublicationWorkload(
        system, simulator, popularity, publishers=system.node_ids()[:3], rate=3.0
    )
    workload.start(duration=8.0, start_at=1.0)
    simulator.run(until=18.0)
    artifact = {
        "trace": trace,
        "stats": {
            "sent": network.stats.sent,
            "delivered": network.stats.delivered,
            "lost": network.stats.lost,
            "bytes_sent": network.stats.bytes_sent,
            "sent_by_kind": dict(sorted(network.stats.sent_by_kind.items())),
        },
        "deliveries": system.delivery_log.total_deliveries(),
    }
    return json.dumps(artifact, sort_keys=True).encode("utf-8")


class TestGoldenTraces:
    def test_same_seed_produces_byte_identical_traces(self):
        assert run_traced_lazy(5) == run_traced_lazy(5)

    def test_different_seed_changes_the_trace(self):
        assert run_traced_lazy(5) != run_traced_lazy(6)

    def test_trace_speaks_the_lazy_kinds_not_plain_push(self):
        import json

        stats = json.loads(run_traced_lazy(5))["stats"]["sent_by_kind"]
        assert stats.get(LAZY_PUSH_KIND, 0) > 0
        assert stats.get(LAZY_DIGEST_KIND, 0) > 0
        assert "gossip.push" not in stats


# ---------------------------------------------------------------------------
# Cache-key neutrality and the config surface
# ---------------------------------------------------------------------------


class TestCacheNeutrality:
    def test_pinned_pr1_pr3_cache_keys_are_unchanged(self):
        assert config_hash(get_scenario("smoke").config) == SMOKE_CONFIG_HASH
        brokers = get_scenario("smoke").config.with_overrides(
            system="brokers", name="smoke-brokers"
        )
        assert config_hash(brokers) == SMOKE_BROKERS_CONFIG_HASH

    def test_alpha_is_omitted_from_dicts_at_its_default(self):
        assert "alpha" not in ExperimentConfig().to_dict()
        assert ExperimentConfig(alpha=0.25).to_dict()["alpha"] == 0.25

    def test_alpha_round_trips_flat_and_nested(self):
        config = ExperimentConfig(system="lazy-push", alpha=0.25)
        spec = StackSpec.from_config(config)
        assert spec.system.alpha == 0.25
        assert spec.to_config() == config
        assert StackSpec.from_dict(spec.to_dict()) == spec

    def test_alpha_is_settable_by_dotted_path_and_flat_alias(self):
        assert parse_spec_overrides(["system.alpha=0.25"]) == {"system.alpha": 0.25}
        spec = StackSpec()
        assert spec.get("system.alpha") == 0.5
        assert spec.with_value("system.alpha", 0.25) == spec.with_value("alpha", 0.25)

    def test_cli_accepts_the_readme_override_spelling(self, capsys):
        code = cli_main(
            [
                "run",
                "smoke-lazy",
                "--no-cache",
                "--set",
                "system.alpha=0.25",
            ]
        )
        assert code == 0
        assert "smoke-lazy" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Registry error paths
# ---------------------------------------------------------------------------


class TestRegistryErrors:
    def _build(self, spec: StackSpec):
        simulator = Simulator(seed=1)
        network = Network(simulator)
        return build_stack(spec, simulator, network)

    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5, True])
    def test_alpha_out_of_range_fails_fast(self, alpha):
        spec = get_scenario("smoke-lazy").spec.with_value("system.alpha", alpha)
        with pytest.raises(RegistryError, match="system.alpha"):
            self._build(spec)

    def test_non_digest_membership_fails_with_a_suggestion(self):
        MEMBERSHIP.register(
            "lpbcst", lambda ctx: None, description="test-only typo membership"
        )
        try:
            spec = get_scenario("smoke-lazy").spec.with_value(
                "membership.kind", "lpbcst"
            )
            with pytest.raises(RegistryError) as excinfo:
                self._build(spec)
        finally:
            MEMBERSHIP.unregister("lpbcst")
        message = str(excinfo.value)
        assert "digest-capable" in message
        assert "lpbcast" in message  # did-you-mean

    def test_error_names_the_digest_capable_kinds(self):
        MEMBERSHIP.register(
            "oracle2", lambda ctx: None, description="test-only membership"
        )
        try:
            spec = get_scenario("smoke-lazy").spec.with_value(
                "membership.kind", "oracle2"
            )
            with pytest.raises(
                RegistryError, match="cyclon.*full.*lpbcast"
            ):
                self._build(spec)
        finally:
            MEMBERSHIP.unregister("oracle2")


# ---------------------------------------------------------------------------
# The recovery table in ``repro report``
# ---------------------------------------------------------------------------


def canned_snapshot(sequence: int, at: float, scale: int) -> TelemetrySnapshot:
    """A snapshot with node-tagged lazy telemetry (two nodes)."""
    return TelemetrySnapshot(
        at=at,
        sequence=sequence,
        counters=(
            ("lazy.pulls_issued", (("node", "n1"),), 2.0 * scale),
            ("lazy.pulls_issued", (("node", "n2"),), 1.0 * scale),
            ("lazy.pulls_served", (("node", "n1"),), 3.0 * scale),
            ("lazy.recoveries", (("node", "n2"),), 1.0 * scale),
            ("lazy.events_saved", (("node", "n1"),), 10.0 * scale),
        ),
        gauges=(
            ("lazy.hot_events", (("node", "n1"),), 4.0),
            ("lazy.store_events", (("node", "n1"),), 7.0 * scale),
            ("lazy.store_bytes", (("node", "n1"),), 70.0 * scale),
        ),
    )


class TestRecoveryReport:
    def test_table_sums_nodes_per_snapshot(self):
        table = _recovery_table([canned_snapshot(0, 1.0, 1), canned_snapshot(1, 2.0, 2)])
        assert table is not None
        assert len(table.rows) == 2
        assert table.rows[0]["pulls_issued"] == 3.0  # 2 + 1 across nodes
        assert table.rows[1]["pulls_issued"] == 6.0
        assert table.rows[1]["recoveries"] == 2.0
        assert table.rows[1]["store_bytes"] == 140.0

    def test_render_snapshots_includes_the_recovery_section(self):
        rendered = render_snapshots([canned_snapshot(0, 1.0, 1)])
        assert "lazy recovery" in rendered
        assert "pulls_issued" in rendered

    def test_no_lazy_telemetry_means_no_table(self):
        plain = TelemetrySnapshot(
            at=1.0, sequence=0, counters=(("gossip.messages_sent", (), 5.0),)
        )
        assert _recovery_table([plain]) is None


# ---------------------------------------------------------------------------
# FaultPlan acceptance: recovery fires in both worlds
# ---------------------------------------------------------------------------


LOSS_PLAN = FaultPlan(
    (FaultSpec(kind="perturb", at=1.0, until=6.0, loss_rate=0.3),)
)


class TestFaultPlanAcceptance:
    def test_sim_run_with_fault_plan_reports_recoveries(self, tmp_path, capsys):
        plan_path = tmp_path / "loss_plan.json"
        plan_path.write_text(LOSS_PLAN.to_json())
        stream = tmp_path / "metrics.jsonl"
        code = cli_main(
            [
                "run",
                "smoke-lazy",
                "--no-cache",
                "--fault",
                str(plan_path),
                "--telemetry",
                f"jsonl:{stream}",
            ]
        )
        assert code == 0
        capsys.readouterr()
        snapshots = load_report_source(str(stream)).snapshots
        final = snapshots[-1]
        recovered = sum(
            value for name, _, value in final.counters if name == "lazy.recoveries"
        )
        assert recovered > 0
        # The same stream renders both the fault timeline and the recovery
        # table, so one report shows cause and effect side by side.
        rendered = render_snapshots(snapshots)
        assert "fault timeline" in rendered
        assert "lazy recovery" in rendered

    def test_live_run_with_fault_plan_reports_recoveries(self):
        async def scenario() -> NodeHost:
            spec = get_scenario("smoke-lazy").spec.with_values(
                {"nodes": 12, "system.gossip_size": 8}
            )
            host = NodeHost(
                MemoryTransport(),
                seed=spec.seed,
                time_scale=20.0,
                spec=spec,
                fault_plan=LOSS_PLAN,
            )
            await host.start()
            popularity = build_popularity(spec)
            model = build_interest_model(spec, popularity)
            interest = model.assign(
                list(spec.node_ids()),
                RngRegistry(spec.seed).stream("experiment-interest"),
            )
            interest.apply(host)
            rng = RngRegistry(1234).stream("publications")
            # Publish inside the perturbation window so losses open gaps...
            for index in range(40):
                host.publish(f"node-{index % 12:03d}", topic=popularity.sample(rng))
                await asyncio.sleep(0.005)
            # ...and drain well past it so digests pull them closed.
            await asyncio.sleep(0.8)
            await host.stop()
            return host

        host = asyncio.run(scenario())
        assert host.telemetry.counter_total("lazy.pulls_issued") > 0
        assert host.telemetry.counter_total("lazy.recoveries") > 0


# ---------------------------------------------------------------------------
# Live runtime parity
# ---------------------------------------------------------------------------


class TestLiveParity:
    def _run_live(self, publications: int = 30) -> NodeHost:
        async def scenario() -> NodeHost:
            spec = get_scenario("smoke").spec.with_values(
                {"nodes": 10, "system.kind": "lazy-push"}
            )
            host = NodeHost(MemoryTransport(), seed=spec.seed, time_scale=20.0, spec=spec)
            await host.start()
            popularity = build_popularity(spec)
            model = build_interest_model(spec, popularity)
            interest = model.assign(
                list(spec.node_ids()),
                RngRegistry(spec.seed).stream("experiment-interest"),
            )
            interest.apply(host)
            rng = RngRegistry(1234).stream("publications")
            for index in range(publications):
                host.publish(f"node-{index % 10:03d}", topic=popularity.sample(rng))
                await asyncio.sleep(0.005)
            await asyncio.sleep(0.4)
            await host.stop()
            return host

        return asyncio.run(scenario())

    def test_lazy_push_runs_unmodified_on_the_live_host(self):
        host = self._run_live()
        assert host.system is not None and host.system.name == "push-gossip"
        assert all(
            isinstance(node, LazyPushGossipNode) for node in host.system.nodes.values()
        )
        assert host.delivery_log.total_deliveries() > 0
        assert host.network.decode_errors == 0
        assert host.transport.frames_sent > 0

    def test_live_store_set_matches_the_simulator_selection(self):
        # Both engines derive the store set from the same hash ranking, so a
        # live cluster and a simulation of the same spec agree on who stores.
        host = self._run_live(publications=5)
        node_ids = sorted(host.system.nodes)
        expected = lazy_store_ids(node_ids, 0.5)
        live_stores = {
            node_id
            for node_id, node in host.system.nodes.items()
            if node.is_store
        }
        assert live_stores == expected

    def test_sim_and_live_deliver_comparable_volumes(self):
        # Documented tolerance (same as the runtime parity suite): per
        # published event, the live engine must reach at least half the
        # simulator's delivery count on the matching spec — enough to catch
        # a protocol that only works on one engine, loose enough for
        # wall-clock scheduling jitter.
        publications = 30
        host = self._run_live(publications=publications)
        spec = get_scenario("smoke").spec.with_values(
            {"nodes": 10, "system.kind": "lazy-push"}
        )
        sim_result = run_experiment(
            spec.to_config().with_overrides(name="lazy-parity-sim")
        )
        assert sim_result.delivery_ratio > 0.9
        live_per_event = host.delivery_log.total_deliveries() / publications
        sim_per_event = sim_result.total_deliveries / len(sim_result.published_events)
        assert live_per_event > 0.5 * sim_per_event
