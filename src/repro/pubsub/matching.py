"""Matching engines: map an event to the set of interested subscribers.

Two indexes are provided:

* :class:`TopicIndex` — constant-time lookup for topic-based selection.
* :class:`CountingContentIndex` — the classic counting algorithm for
  content-based matching: each equality/range condition is indexed by
  attribute, an event increments a per-filter counter for every condition it
  satisfies, and filters whose counter reaches their condition count match.

The :class:`MatchingEngine` front-end routes filters to the appropriate index
and is what brokers, rendezvous nodes, and the oracle use.  Gossip nodes do
not need an index — each node only evaluates its own ``ISINTERESTED`` — but
the broker baseline and the analysis layer match against thousands of foreign
filters, where the index matters.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .events import Event, TOPIC_ATTRIBUTE
from .filters import AttributeCondition, ContentFilter, Filter, TopicFilter

__all__ = ["TopicIndex", "CountingContentIndex", "MatchingEngine"]


class TopicIndex:
    """Exact-topic index: ``topic -> {(node, filter_id)}``."""

    def __init__(self) -> None:
        self._by_topic: Dict[str, Set[Tuple[str, str]]] = defaultdict(set)

    def add(self, node_id: str, topic_filter: TopicFilter) -> None:
        """Register a node's topic filter."""
        self._by_topic[topic_filter.topic].add((node_id, topic_filter.filter_id))

    def remove(self, node_id: str, topic_filter: TopicFilter) -> None:
        """Remove a previously registered topic filter (no-op if absent)."""
        self._by_topic.get(topic_filter.topic, set()).discard((node_id, topic_filter.filter_id))

    def match(self, event: Event) -> Set[str]:
        """Node ids subscribed to the event's topic."""
        topic = event.attribute(TOPIC_ATTRIBUTE)
        if topic is None:
            return set()
        return {node_id for node_id, _ in self._by_topic.get(str(topic), ())}

    def subscribers(self, topic: str) -> Set[str]:
        """Node ids subscribed to ``topic``."""
        return {node_id for node_id, _ in self._by_topic.get(topic, ())}

    def topic_count(self) -> int:
        """Number of topics with at least one subscriber."""
        return sum(1 for entries in self._by_topic.values() if entries)

    def filter_count(self) -> int:
        """Number of (node, filter) registrations currently indexed."""
        return sum(len(entries) for entries in self._by_topic.values())


@dataclass
class _IndexedFilter:
    node_id: str
    content_filter: ContentFilter
    condition_count: int


class CountingContentIndex:
    """Counting-based content filter index.

    Filters with zero conditions (match-all) are kept in a separate set since
    they match every event by definition.
    """

    def __init__(self) -> None:
        self._filters: Dict[Tuple[str, str], _IndexedFilter] = {}
        self._by_attribute: Dict[str, List[Tuple[Tuple[str, str], AttributeCondition]]] = defaultdict(list)
        self._match_all: Set[Tuple[str, str]] = set()

    def add(self, node_id: str, content_filter: ContentFilter) -> None:
        """Register a node's content filter."""
        key = (node_id, content_filter.filter_id)
        if key in self._filters:
            return
        entry = _IndexedFilter(
            node_id=node_id,
            content_filter=content_filter,
            condition_count=len(content_filter.conditions),
        )
        self._filters[key] = entry
        if not content_filter.conditions:
            self._match_all.add(key)
            return
        for condition in content_filter.conditions:
            self._by_attribute[condition.attribute].append((key, condition))

    def remove(self, node_id: str, content_filter: ContentFilter) -> None:
        """Remove a previously registered content filter (no-op if absent)."""
        key = (node_id, content_filter.filter_id)
        if key not in self._filters:
            return
        del self._filters[key]
        self._match_all.discard(key)
        for attribute in {condition.attribute for condition in content_filter.conditions}:
            self._by_attribute[attribute] = [
                (entry_key, condition)
                for entry_key, condition in self._by_attribute[attribute]
                if entry_key != key
            ]

    def match(self, event: Event) -> Set[str]:
        """Node ids whose content filters match the event."""
        satisfied: Dict[Tuple[str, str], int] = defaultdict(int)
        for attribute in event.attributes:
            for key, condition in self._by_attribute.get(attribute, ()):
                if condition.holds_for(event):
                    satisfied[key] += 1
        matched = {
            self._filters[key].node_id
            for key, count in satisfied.items()
            if key in self._filters and count >= self._filters[key].condition_count
        }
        matched.update(self._filters[key].node_id for key in self._match_all)
        return matched

    def filter_count(self) -> int:
        """Number of indexed filters."""
        return len(self._filters)


class MatchingEngine:
    """Routes filters to the right index and matches events against all of them.

    Filters that are neither :class:`TopicFilter` nor :class:`ContentFilter`
    (composites, custom predicates) fall back to linear evaluation, so the
    engine is complete even if slower for exotic filters.
    """

    def __init__(self) -> None:
        self.topic_index = TopicIndex()
        self.content_index = CountingContentIndex()
        self._fallback: Dict[Tuple[str, str], Tuple[str, Filter]] = {}

    def add(self, node_id: str, subscription_filter: Filter) -> None:
        """Register a filter for a node."""
        if isinstance(subscription_filter, TopicFilter):
            self.topic_index.add(node_id, subscription_filter)
        elif isinstance(subscription_filter, ContentFilter):
            self.content_index.add(node_id, subscription_filter)
        else:
            key = (node_id, subscription_filter.filter_id)
            self._fallback[key] = (node_id, subscription_filter)

    def remove(self, node_id: str, subscription_filter: Filter) -> None:
        """Remove a filter for a node (no-op if absent)."""
        if isinstance(subscription_filter, TopicFilter):
            self.topic_index.remove(node_id, subscription_filter)
        elif isinstance(subscription_filter, ContentFilter):
            self.content_index.remove(node_id, subscription_filter)
        else:
            self._fallback.pop((node_id, subscription_filter.filter_id), None)

    def match(self, event: Event) -> Set[str]:
        """All node ids interested in the event."""
        interested = self.topic_index.match(event)
        interested |= self.content_index.match(event)
        for node_id, subscription_filter in self._fallback.values():
            if subscription_filter.matches(event):
                interested.add(node_id)
        return interested

    def registered_filter_count(self) -> int:
        """Total filters across the three stores."""
        return (
            self.topic_index.filter_count()
            + self.content_index.filter_count()
            + len(self._fallback)
        )
