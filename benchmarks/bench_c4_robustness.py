"""Experiment C4 (§5.2 challenge 5): does adaptation hurt gossip robustness?

Classic vs fair gossip under combined node churn and message loss.  Expected
shape: both protocols keep a high delivery ratio (the gossip robustness the
paper wants preserved), with the fair protocol within a few points of the
classic one at every churn level while remaining fairer.
"""

from __future__ import annotations

from common import BASE_CONFIG, attach_extra_info, print_results, run_configs


CHURN_LEVELS = [0.0, 0.02, 0.05, 0.1]


def run_robustness():
    base = BASE_CONFIG.with_overrides(
        name="c4",
        nodes=96,
        duration=20.0,
        drain_time=15.0,
        loss_rate=0.05,
        fanout=4,
        churn_up_probability=0.4,
    )
    configs = [
        base.with_overrides(
            system=system,
            churn_down_probability=churn,
            name=f"c4/{system}/churn={churn}",
        )
        for system in ("gossip", "fair-gossip")
        for churn in CHURN_LEVELS
    ]
    return run_configs(configs)


def test_c4_robustness_under_churn_and_loss(benchmark):
    results = benchmark.pedantic(run_robustness, rounds=1, iterations=1)
    print_results("C4 — delivery ratio under churn (5% message loss), classic vs fair", results)
    attach_extra_info(benchmark, results)
    by_name = {result.config.name: result for result in results}
    for churn in CHURN_LEVELS:
        classic = by_name[f"c4/gossip/churn={churn}"].reliability.delivery_ratio
        fair = by_name[f"c4/fair-gossip/churn={churn}"].reliability.delivery_ratio
        # The fair protocol tracks classic gossip's robustness closely.
        assert fair > 0.8
        assert fair >= classic - 0.08
    # Fairness advantage persists even under churn.
    assert (
        by_name["c4/fair-gossip/churn=0.05"].fairness.report.ratio_jain
        > by_name["c4/gossip/churn=0.05"].fairness.report.ratio_jain
    )
