"""Work/benefit accounting — the ledger behind Figures 1–3.

The paper quantifies *contribution* as the number of messages a process
publishes or forwards (application **and** infrastructure messages, §2), and
*benefit* as the number of interesting events the process delivers plus, for
topic-based selection, the number of filters it has placed (Figure 2).  For
expressive selection the contribution is additionally modulated by the
fanout and the gossip message size (Figure 3).

:class:`WorkLedger` records the raw quantities per node; how they are folded
into scalar contribution and benefit values is delegated to
:class:`ContributionWeights` / :class:`BenefitWeights` so the fairness policy
(:mod:`repro.core.policy`) can switch between the paper's topic-based and
expressive formulas without touching the protocols that do the recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "NodeAccount",
    "ContributionWeights",
    "BenefitWeights",
    "WorkLedger",
    "AccountSnapshot",
]


@dataclass
class NodeAccount:
    """Raw per-node counters.

    All quantities are cumulative since the start of the run; windowed views
    (needed by the adaptive controllers) are built by differencing snapshots.
    """

    node_id: str
    events_published: int = 0
    gossip_messages_sent: int = 0
    events_forwarded: int = 0
    bytes_forwarded: int = 0
    infrastructure_messages: int = 0
    subscription_forwards: int = 0
    events_delivered: int = 0
    filters_placed: int = 0
    subscribe_operations: int = 0
    unsubscribe_operations: int = 0
    crashes: int = 0

    def copy(self) -> "NodeAccount":
        """Return an independent copy (used for windowed differencing)."""
        return NodeAccount(**self.__dict__)

    def minus(self, earlier: "NodeAccount") -> "NodeAccount":
        """Counter-wise difference ``self - earlier`` (same node)."""
        if earlier.node_id != self.node_id:
            raise ValueError("cannot difference accounts of different nodes")
        result = NodeAccount(node_id=self.node_id)
        for name in (
            "events_published",
            "gossip_messages_sent",
            "events_forwarded",
            "bytes_forwarded",
            "infrastructure_messages",
            "subscription_forwards",
            "events_delivered",
            "subscribe_operations",
            "unsubscribe_operations",
            "crashes",
        ):
            setattr(result, name, getattr(self, name) - getattr(earlier, name))
        # filters_placed is a level, not a flow; keep the current level.
        result.filters_placed = self.filters_placed
        return result


@dataclass(frozen=True)
class ContributionWeights:
    """How raw counters combine into the scalar *contribution*.

    The defaults implement the paper's definition: one unit per message the
    node published or forwarded, including infrastructure messages.  Setting
    ``per_event_forwarded`` or ``per_byte`` non-zero weighs large gossip
    messages more, which is the Figure 3 "message size" modulation.
    """

    per_publish: float = 1.0
    per_gossip_message: float = 1.0
    per_event_forwarded: float = 0.0
    per_byte: float = 0.0
    per_infrastructure_message: float = 1.0
    per_subscription_forward: float = 1.0

    def contribution(self, account: NodeAccount) -> float:
        """Scalar contribution of a node under these weights."""
        return (
            self.per_publish * account.events_published
            + self.per_gossip_message * account.gossip_messages_sent
            + self.per_event_forwarded * account.events_forwarded
            + self.per_byte * account.bytes_forwarded
            + self.per_infrastructure_message * account.infrastructure_messages
            + self.per_subscription_forward * account.subscription_forwards
        )


@dataclass(frozen=True)
class BenefitWeights:
    """How raw counters combine into the scalar *benefit*.

    Figure 2 (topic-based): benefit = delivered events and placed filters.
    Figure 3 (expressive): benefit = delivered events only, which is the
    default here (``per_filter=0``).
    """

    per_delivery: float = 1.0
    per_filter: float = 0.0
    baseline: float = 0.0

    def benefit(self, account: NodeAccount) -> float:
        """Scalar benefit of a node under these weights."""
        return (
            self.baseline
            + self.per_delivery * account.events_delivered
            + self.per_filter * account.filters_placed
        )


@dataclass(frozen=True)
class AccountSnapshot:
    """Frozen view of the ledger at one instant (per-node raw accounts)."""

    taken_at: float
    accounts: Mapping[str, NodeAccount]

    def account(self, node_id: str) -> NodeAccount:
        """The account of one node (an empty account if never touched)."""
        return self.accounts.get(node_id, NodeAccount(node_id=node_id))


class WorkLedger:
    """System-wide accounting of work and benefit.

    Protocol code calls the ``record_*`` methods; analysis code and the
    adaptive controllers read via :meth:`account`, :meth:`snapshot`, and the
    aggregate helpers.  The ledger itself never interprets the counters —
    interpretation lives in the weight objects and the fairness policy.
    """

    def __init__(self) -> None:
        self._accounts: Dict[str, NodeAccount] = {}

    def _get(self, node_id: str) -> NodeAccount:
        account = self._accounts.get(node_id)
        if account is None:
            account = NodeAccount(node_id=node_id)
            self._accounts[node_id] = account
        return account

    # ------------------------------------------------------------ recording

    def record_publish(self, node_id: str, events: int = 1) -> None:
        """The node published ``events`` new events."""
        self._get(node_id).events_published += events

    def record_gossip_send(self, node_id: str, messages: int = 1, events: int = 0, size: int = 0) -> None:
        """The node sent gossip messages carrying ``events`` events."""
        account = self._get(node_id)
        account.gossip_messages_sent += messages
        account.events_forwarded += events
        account.bytes_forwarded += size

    def record_infrastructure(self, node_id: str, messages: int = 1) -> None:
        """The node sent membership / maintenance messages."""
        self._get(node_id).infrastructure_messages += messages

    def record_subscription_forward(self, node_id: str, messages: int = 1) -> None:
        """The node forwarded subscribe/unsubscribe requests for others."""
        self._get(node_id).subscription_forwards += messages

    def record_delivery(self, node_id: str, events: int = 1) -> None:
        """The node delivered ``events`` interesting events."""
        self._get(node_id).events_delivered += events

    def record_subscribe(self, node_id: str) -> None:
        """The node performed a subscribe operation."""
        account = self._get(node_id)
        account.subscribe_operations += 1
        account.filters_placed += 1

    def record_unsubscribe(self, node_id: str) -> None:
        """The node performed an unsubscribe operation."""
        account = self._get(node_id)
        account.unsubscribe_operations += 1
        account.filters_placed = max(0, account.filters_placed - 1)

    def record_crash(self, node_id: str) -> None:
        """The node crashed (used for the instability penalty of §3.2)."""
        self._get(node_id).crashes += 1

    def ensure_node(self, node_id: str) -> None:
        """Make sure a node appears in reports even if it never did anything."""
        self._get(node_id)

    # -------------------------------------------------------------- queries

    def account(self, node_id: str) -> NodeAccount:
        """Raw account for one node (empty account if never touched)."""
        return self._accounts.get(node_id, NodeAccount(node_id=node_id))

    def node_ids(self) -> List[str]:
        """All nodes with an account, sorted."""
        return sorted(self._accounts)

    def snapshot(self, taken_at: float = 0.0) -> AccountSnapshot:
        """Frozen copy of every account, for windowed differencing."""
        return AccountSnapshot(
            taken_at=taken_at,
            accounts={node_id: account.copy() for node_id, account in self._accounts.items()},
        )

    def window(self, earlier: AccountSnapshot) -> Dict[str, NodeAccount]:
        """Per-node accounts accumulated since ``earlier`` was taken."""
        result: Dict[str, NodeAccount] = {}
        for node_id, account in self._accounts.items():
            previous = earlier.accounts.get(node_id)
            result[node_id] = account.minus(previous) if previous is not None else account.copy()
        return result

    def contributions(self, weights: ContributionWeights) -> Dict[str, float]:
        """Per-node scalar contributions under ``weights``."""
        return {node_id: weights.contribution(account) for node_id, account in self._accounts.items()}

    def benefits(self, weights: BenefitWeights) -> Dict[str, float]:
        """Per-node scalar benefits under ``weights``."""
        return {node_id: weights.benefit(account) for node_id, account in self._accounts.items()}

    def totals(self) -> NodeAccount:
        """System-wide totals (summed over every node)."""
        total = NodeAccount(node_id="<total>")
        for account in self._accounts.values():
            total.events_published += account.events_published
            total.gossip_messages_sent += account.gossip_messages_sent
            total.events_forwarded += account.events_forwarded
            total.bytes_forwarded += account.bytes_forwarded
            total.infrastructure_messages += account.infrastructure_messages
            total.subscription_forwards += account.subscription_forwards
            total.events_delivered += account.events_delivered
            total.filters_placed += account.filters_placed
            total.subscribe_operations += account.subscribe_operations
            total.unsubscribe_operations += account.unsubscribe_operations
            total.crashes += account.crashes
        return total

    def reset(self) -> None:
        """Forget every account (between independent runs)."""
        self._accounts.clear()
