"""Causal dissemination tracing shared by the simulator and the live runtime.

Where the telemetry package answers "how much" (counters, histograms,
snapshots), this package answers "which path": a sampled, trace-context-
propagating span layer that follows *individual events* through every
dissemination kind — eager push, push-pull, lazy digests, and
``gossip.lazy-request``/``-reply`` recovery — on either engine.

The moving parts:

* :class:`TraceContext` rides on messages (simulator ``Message.trace``
  metadata, an optional ``trace`` key on live wire frames) carrying
  ``(trace id = event id, parent span id, hop count)``;
* protocol nodes and networks emit :class:`SpanRecord` observations
  (``publish`` / ``relay`` / ``receive`` / ``duplicate`` / ``digest-advert``
  / ``pull-recover`` / ``deliver`` / ``drop``) through a shared
  :class:`Tracer` into a pluggable :class:`TraceSink`;
* sampling is head-based and hash-deterministic (:class:`TraceSampler`):
  the publisher decides once per event, downstream contexts are always
  honoured, and the default rate of 0 means untraced runs carry no
  contexts, emit no spans, and keep physics and cache keys byte-identical;
* :mod:`repro.tracing.analyze` reconstructs per-event infection trees and
  the aggregate hop/latency/redundancy/recovery numbers behind
  ``python -m repro trace``.

The pre-span :class:`TraceRecorder` (flat category records, used by the
failure injectors) lives on in :mod:`repro.tracing.legacy`, re-exported
through the ``repro.sim.trace`` deprecation shim.
"""

from .analyze import EventTrace, TraceAnalysis, analyze_spans, render_trace
from .context import TraceContext, decode_contexts, encode_contexts
from .legacy import TraceRecord, TraceRecorder
from .sampler import TraceSampler
from .spans import (
    DELIVER,
    DIGEST_ADVERT,
    DROP,
    DUPLICATE,
    PUBLISH,
    PULL_RECOVER,
    RECEIVE,
    RELAY,
    SPAN_KINDS,
    TRACE_SCHEMA,
    JsonlTraceSink,
    MemoryTraceSink,
    SpanRecord,
    TraceSink,
    read_spans_jsonl,
)
from .tracer import Tracer

__all__ = [
    "TRACE_SCHEMA",
    "SPAN_KINDS",
    "PUBLISH",
    "RELAY",
    "RECEIVE",
    "DUPLICATE",
    "DIGEST_ADVERT",
    "PULL_RECOVER",
    "DELIVER",
    "DROP",
    "TraceContext",
    "encode_contexts",
    "decode_contexts",
    "SpanRecord",
    "TraceSink",
    "MemoryTraceSink",
    "JsonlTraceSink",
    "read_spans_jsonl",
    "TraceSampler",
    "Tracer",
    "EventTrace",
    "TraceAnalysis",
    "analyze_spans",
    "render_trace",
    "TraceRecord",
    "TraceRecorder",
]
