"""Tests for the campaign layer (``repro.campaign``).

Pins the tentpole guarantees of dependency-driven campaigns:

* campaign specs round-trip through JSON and validation fails fast with
  did-you-mean suggestions for every cross-reference;
* the compiled graph orders services topologically and rejects cycles;
* execution is incremental — a warm cache re-runs nothing, an edited
  sweep parameter re-runs exactly the dependent points, and the canonical
  manifest is byte-identical across warm reruns;
* ``ONE`` connectors short-circuit to a fully cached alternative;
* corrupt cache entries read as misses, bump the ``cache.corrupt``
  counter, and the affected point re-runs;
* the ``python -m repro campaign`` CLI works end to end.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.campaign import (
    CampaignError,
    CampaignExecutor,
    CampaignSpec,
    Connector,
    compile_graph,
    expand_service,
)
from repro.experiments.cache import ResultCache
from repro.experiments.cli import main as cli_main
from repro.experiments.executor import ParallelSweepExecutor
from repro.experiments.runner import run_experiment

SPEC_DICT = {
    "schema": "campaign/v1",
    "name": "unit",
    "description": "unit-test campaign",
    "services": {
        "compare-systems": {"scenario": "smoke", "compare": ["gossip", "fair-gossip"]},
        "fanout-sweep": {"scenario": "smoke", "sweep": {"system.fanout": [2, 3]}},
        "alt-cold": {"scenario": "smoke", "set": {"system.fanout": 7}},
        "late": {
            "scenario": "smoke",
            "set": {"workload.publication_rate": 3.0},
            "after": ["compare-table"],
        },
    },
    "targets": {
        "compare-table": {"inputs": ["compare-systems"], "title": "systems"},
        "sweep-report": {"inputs": {"seq": ["fanout-sweep", "late"]}, "kind": "report"},
        "one-table": {"inputs": {"one": ["alt-cold", "fanout-sweep"]}},
    },
}


def make_spec(mutate=None) -> CampaignSpec:
    payload = copy.deepcopy(SPEC_DICT)
    if mutate is not None:
        mutate(payload)
    return CampaignSpec.from_dict(payload).validate()


def make_executor(spec, tmp_path, **kwargs) -> CampaignExecutor:
    cache = ResultCache(str(tmp_path / "cache"))
    return CampaignExecutor(
        spec,
        executor=ParallelSweepExecutor(cache=cache),
        out_dir=str(tmp_path / "out"),
        **kwargs,
    )


class TestSpecRoundTrip:
    def test_json_round_trip(self):
        spec = make_spec()
        rebuilt = CampaignSpec.from_dict(spec.to_dict()).validate()
        assert rebuilt.to_dict() == spec.to_dict()
        assert rebuilt == spec

    def test_connector_shorthands(self):
        assert Connector.parse("svc", "t") == Connector("all", ("svc",))
        assert Connector.parse(["a", "b"], "t") == Connector("all", ("a", "b"))
        nested = Connector.parse({"seq": ["a", {"one": ["b", "c"]}]}, "t")
        assert nested.describe() == "SEQ(a, ONE(b, c))"
        assert nested.service_names() == ["a", "b", "c"]

    def test_connector_bad_shapes(self):
        with pytest.raises(CampaignError, match="unknown connector"):
            Connector.parse({"any": ["a"]}, "t")
        with pytest.raises(CampaignError, match="exactly one"):
            Connector.parse({"all": ["a"], "one": ["b"]}, "t")
        with pytest.raises(CampaignError, match="non-empty"):
            Connector.parse({"one": []}, "t")

    def test_from_file_validates(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(SPEC_DICT), encoding="utf-8")
        assert CampaignSpec.from_file(str(path)).name == "unit"
        path.write_text("{ truncated", encoding="utf-8")
        with pytest.raises(CampaignError, match="not valid JSON"):
            CampaignSpec.from_file(str(path))
        with pytest.raises(CampaignError, match="cannot read"):
            CampaignSpec.from_file(str(tmp_path / "missing.json"))


class TestValidation:
    def test_unknown_scenario_suggests(self):
        with pytest.raises(CampaignError, match="did you mean 'smoke'"):
            make_spec(lambda p: p["services"]["alt-cold"].update(scenario="smke"))

    def test_unknown_system_suggests(self):
        with pytest.raises(CampaignError, match="unknown system 'random-gossip'"):
            make_spec(
                lambda p: p["services"]["alt-cold"].update(compare=["random-gossip"])
            )

    def test_unknown_sweep_key_suggests(self):
        with pytest.raises(CampaignError, match="unknown config key"):
            make_spec(
                lambda p: p["services"]["fanout-sweep"].update(
                    sweep={"system.fanouts": [2, 3]}
                )
            )

    def test_unsweepable_structured_field(self):
        with pytest.raises(CampaignError, match="structured"):
            make_spec(lambda p: p["services"]["alt-cold"].update(set={"faults.plan": []}))

    def test_dangling_after_edge_suggests(self):
        with pytest.raises(CampaignError, match="'after' names unknown node"):
            make_spec(lambda p: p["services"]["late"].update(after=["compare-tabel"]))

    def test_unknown_input_service_suggests(self):
        with pytest.raises(CampaignError, match="inputs name unknown service"):
            make_spec(
                lambda p: p["targets"]["compare-table"].update(inputs=["compare-system"])
            )

    def test_duplicate_names_rejected(self):
        def clash(payload):
            payload["targets"]["alt-cold"] = {"inputs": ["fanout-sweep"]}

        with pytest.raises(CampaignError, match="duplicate node name"):
            make_spec(clash)

    def test_unknown_fields_suggest(self):
        with pytest.raises(CampaignError, match="unknown field"):
            make_spec(lambda p: p["services"]["alt-cold"].update(sets={"x": 1}))
        with pytest.raises(CampaignError, match="unknown field"):
            make_spec(lambda p: p["targets"]["one-table"].update(kindd="table"))

    def test_cycle_detected(self):
        def cycle(payload):
            # late -> compare-table (after) and compare-table's input service
            # gains after: [sweep-report] whose SEQ contains late.
            payload["services"]["compare-systems"]["after"] = ["sweep-report"]

        with pytest.raises(CampaignError, match="cycle"):
            make_spec(cycle)

    def test_no_targets_rejected(self):
        with pytest.raises(CampaignError, match="no targets"):
            make_spec(lambda p: p["targets"].clear())


class TestGraph:
    def test_topological_order_and_edges(self):
        spec = make_spec()
        graph = compile_graph(spec)
        order = graph.order
        # Declaration-stable topological order: dependencies precede dependents.
        assert order.index("compare-systems") < order.index("compare-table")
        assert order.index("compare-table") < order.index("late")
        assert order.index("fanout-sweep") < order.index("late")  # SEQ edge
        assert order.index("late") < order.index("sweep-report")
        deps = graph.dependency_map()
        assert "compare-table" in deps["late"]

    def test_restricted_to_target_subset(self):
        spec = make_spec()
        graph = compile_graph(spec)
        needed = graph.restricted_to(["compare-table"])
        assert needed == {"compare-systems", "compare-table"}


class TestExpansion:
    def test_compare_then_sweep_grid(self):
        spec = make_spec()
        assert [c.name for c in expand_service(spec.service("compare-systems"))] == [
            "smoke/gossip",
            "smoke/fair-gossip",
        ]
        sweep_points = expand_service(spec.service("fanout-sweep"))
        assert [c.fanout for c in sweep_points] == [2, 3]

    def test_set_coerces_via_spec(self):
        spec = make_spec()
        (point,) = expand_service(spec.service("alt-cold"))
        assert point.fanout == 7
        (late,) = expand_service(spec.service("late"))
        assert late.publication_rate == 3.0


class TestIncrementalExecution:
    def test_cold_then_warm_zero_reruns(self, tmp_path):
        spec = make_spec()
        cold = make_executor(spec, tmp_path).run()
        assert all(r.status == "done" for r in cold.services.values())
        assert all(r.status == "done" for r in cold.targets.values())
        assert cold.totals()["cache_hits"] == 0
        warm = make_executor(spec, tmp_path).run()
        assert warm.totals()["computed"] == 0
        assert warm.totals()["cache_hits"] == cold.totals()["computed"]

    def test_warm_manifests_byte_identical(self, tmp_path):
        spec = make_spec()
        make_executor(spec, tmp_path).run()
        first = make_executor(spec, tmp_path).run()
        second = make_executor(spec, tmp_path).run()
        assert first.canonical_json() == second.canonical_json()

    def test_edited_parameter_reruns_exactly_dependents(self, tmp_path):
        spec = make_spec()
        make_executor(spec, tmp_path).run()

        edited = make_spec(
            lambda p: p["services"]["fanout-sweep"].update(
                sweep={"system.fanout": [2, 4]}
            )
        )
        manifest = make_executor(edited, tmp_path).run()
        # fanout=2 is shared with the first run; fanout=4 is the only new
        # point anywhere in the campaign.
        sweep_record = manifest.services["fanout-sweep"]
        assert sweep_record.computed == 1
        assert sweep_record.cache_hits == 1
        for name, record in manifest.services.items():
            if name not in ("fanout-sweep", "alt-cold"):
                assert record.computed == 0, name
        assert manifest.totals()["computed"] == 1

    def test_target_subset_runs_only_ancestors(self, tmp_path):
        spec = make_spec()
        manifest = make_executor(spec, tmp_path, targets=["compare-table"]).run()
        assert set(manifest.services) == {"compare-systems"}
        assert manifest.targets["compare-table"].status == "done"

    def test_unknown_target_selection_suggests(self, tmp_path):
        spec = make_spec()
        with pytest.raises(CampaignError, match="did you mean 'compare-table'"):
            make_executor(spec, tmp_path, targets=["compare-tabel"])

    def test_dry_run_executes_nothing(self, tmp_path):
        spec = make_spec()
        executor = make_executor(spec, tmp_path)
        manifest = executor.run(dry_run=True)
        assert executor.cache.entry_count() == 0
        assert not (tmp_path / "out").exists()
        assert all(r.status in ("done", "skipped") for r in manifest.services.values())
        planned = manifest.services["fanout-sweep"]
        assert [point.cached for point in planned.points] == [False, False]

    def test_one_short_circuits_to_cached_alternative(self, tmp_path):
        spec = make_spec()
        cache = ResultCache(str(tmp_path / "cache"))
        for config in expand_service(spec.service("fanout-sweep")):
            cache.store(run_experiment(config))
        manifest = make_executor(spec, tmp_path, targets=["one-table"]).run()
        assert manifest.services["fanout-sweep"].status == "done"
        assert manifest.services["fanout-sweep"].computed == 0
        assert manifest.services["alt-cold"].status == "skipped"
        assert manifest.targets["one-table"].inputs == ["fanout-sweep"]

    def test_one_runs_first_alternative_when_all_cold(self, tmp_path):
        spec = make_spec()
        manifest = make_executor(spec, tmp_path, targets=["one-table"]).run()
        assert manifest.services["alt-cold"].status == "done"
        assert manifest.services.get("fanout-sweep") is None or (
            manifest.services["fanout-sweep"].status == "skipped"
        )
        assert manifest.targets["one-table"].inputs == ["alt-cold"]

    def test_failure_propagates_to_dependents(self, tmp_path):
        # An empty compare list cannot fail, so force failure by pointing a
        # service at a scenario that validates but explodes at run time via
        # monkeypatching is overkill — instead check the state machinery
        # directly with a pre-failed state.
        spec = make_spec()
        executor = make_executor(spec, tmp_path)
        states = {name: "pending" for name in executor.graph.order}
        states["fanout-sweep"] = "failed"
        target = spec.target("sweep-report")
        assert executor._child_status(target.inputs, states) == "failed"
        one = spec.target("one-table")
        # ONE stays pending while an alternative can still succeed.
        assert executor._child_status(one.inputs, states) == "pending"
        states["alt-cold"] = "failed"
        assert executor._child_status(one.inputs, states) == "failed"


class TestCacheProvenanceAndCorruption:
    def test_provenance_recorded_and_surfaced(self, tmp_path):
        spec = make_spec()
        executor = make_executor(spec, tmp_path)
        manifest = executor.run()
        warm = make_executor(spec, tmp_path).run()
        point = warm.services["compare-systems"].points[0]
        provenance = dict(point.provenance)
        assert "version" in provenance and "created_at" in provenance
        entries = list(executor.cache.scan_provenance())
        assert entries and all(prov is not None for _path, prov in entries)
        for _path, prov in entries:
            assert set(prov) >= {"config", "version", "created_at"}
        assert manifest.cache_stats["stores"] == manifest.totals()["computed"]

    def test_truncated_entry_reruns_point_and_counts_corrupt(self, tmp_path):
        class CounterTelemetry:
            def __init__(self):
                self.counts = {}

            def increment(self, name, value=1):
                self.counts[name] = self.counts.get(name, 0) + value

        spec = make_spec()
        make_executor(spec, tmp_path).run()

        telemetry = CounterTelemetry()
        cache = ResultCache(str(tmp_path / "cache"), telemetry=telemetry)
        # compare-systems is demanded unconditionally (a plain ALL input), so
        # its corrupt point must re-run; a corrupt ONE alternative would
        # instead be routed around via the short-circuit.
        target_config = expand_service(spec.service("compare-systems"))[0]
        artifact = cache.path_for(target_config)
        artifact.write_text(
            artifact.read_text(encoding="utf-8")[:40], encoding="utf-8"
        )
        assert not cache.fresh(target_config)

        executor = CampaignExecutor(
            spec,
            executor=ParallelSweepExecutor(cache=cache),
            out_dir=str(tmp_path / "out"),
        )
        manifest = executor.run()
        assert manifest.totals()["computed"] == 1
        assert manifest.services["compare-systems"].computed == 1
        assert manifest.cache_stats["corrupt"] >= 1
        assert telemetry.counts["cache.corrupt"] >= 1
        # The re-run repaired the entry: a fresh campaign is fully warm.
        repaired = make_executor(spec, tmp_path).run()
        assert repaired.totals()["computed"] == 0


class TestCampaignCli:
    def write_spec(self, tmp_path, payload=None):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(payload or SPEC_DICT), encoding="utf-8")
        return str(path)

    def argv(self, tmp_path, *extra):
        return [
            "campaign",
            *extra,
            "--cache-dir",
            str(tmp_path / "cache"),
            "--out-dir",
            str(tmp_path / "out"),
        ]

    def test_cold_warm_and_status(self, capsys, tmp_path):
        spec_path = self.write_spec(tmp_path)
        assert cli_main(self.argv(tmp_path, spec_path)) == 0
        cold = capsys.readouterr().out
        assert "computed: 6" in cold
        assert cli_main(self.argv(tmp_path, spec_path)) == 0
        warm = capsys.readouterr().out
        assert "computed: 0" in warm and "cache hits: 6" in warm
        manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
        assert manifest["schema"] == "campaign-manifest/v1"
        assert cli_main(["campaign", "status", spec_path, "--cache-dir", str(tmp_path / "cache")]) == 0
        status = capsys.readouterr().out
        assert "fresh" in status and "ONE(alt-cold, fanout-sweep)" in status

    def test_dry_run_prints_plan(self, capsys, tmp_path):
        spec_path = self.write_spec(tmp_path)
        assert cli_main(self.argv(tmp_path, spec_path, "--dry-run")) == 0
        out = capsys.readouterr().out
        assert "dry run" in out and "to compute" in out
        assert not (tmp_path / "out").exists()

    def test_unknown_target_flag_fails_with_suggestion(self, tmp_path):
        spec_path = self.write_spec(tmp_path)
        with pytest.raises(SystemExit, match="did you mean 'one-table'"):
            cli_main(self.argv(tmp_path, spec_path, "--target", "one-tble"))

    def test_invalid_spec_fails_fast(self, tmp_path):
        payload = copy.deepcopy(SPEC_DICT)
        payload["services"]["alt-cold"]["scenario"] = "smkoe"
        spec_path = self.write_spec(tmp_path, payload)
        with pytest.raises(SystemExit, match="unknown scenario"):
            cli_main(self.argv(tmp_path, spec_path))

    def test_report_renders_manifest(self, capsys, tmp_path):
        spec_path = self.write_spec(tmp_path)
        assert cli_main(self.argv(tmp_path, spec_path)) == 0
        capsys.readouterr()
        assert cli_main(["report", str(tmp_path / "out" / "manifest.json")]) == 0
        out = capsys.readouterr().out
        assert "campaign unit — services" in out and "targets" in out
