"""Lightweight metric primitives.

The simulator and the protocols expose their state through three primitives:
counters (monotonic), gauges (set to the latest value), and histograms
(accumulate samples, summarise on demand).  A :class:`MetricsRegistry` keys
them by ``(name, node)`` so per-node and system-wide views come from the same
store.  Analysis code and the fairness accounting both read from here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "HistogramSummary", "MetricsRegistry"]


@dataclass
class Counter:
    """Monotonically increasing counter."""

    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only move forward; use a Gauge for decreasing values")
        self.value += amount


@dataclass
class Gauge:
    """Latest-value metric."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class HistogramSummary:
    """Summary statistics of a histogram's samples."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float
    p50: float
    p95: float
    p99: float


@dataclass
class Histogram:
    """Accumulates raw samples and summarises them on demand."""

    samples: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    def summary(self) -> HistogramSummary:
        if not self.samples:
            return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(self.samples)
        count = len(ordered)
        mean = sum(ordered) / count
        variance = sum((sample - mean) ** 2 for sample in ordered) / count
        return HistogramSummary(
            count=count,
            mean=mean,
            minimum=ordered[0],
            maximum=ordered[-1],
            stddev=math.sqrt(variance),
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
        )


def percentile(ordered: List[float], quantile: float) -> float:
    """Linear-interpolation percentile of an already sorted sample list."""
    if not ordered:
        return 0.0
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be within [0, 1]")
    if len(ordered) == 1:
        return ordered[0]
    position = quantile * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


class MetricsRegistry:
    """Store of named, optionally per-node metrics."""

    _SYSTEM = ""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, str], Counter] = {}
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        self._histograms: Dict[Tuple[str, str], Histogram] = {}

    # --------------------------------------------------------------- access

    def counter(self, name: str, node: str = _SYSTEM) -> Counter:
        """Return (creating if needed) the counter ``name`` for ``node``."""
        key = (name, node)
        metric = self._counters.get(key)
        if metric is None:
            metric = Counter()
            self._counters[key] = metric
        return metric

    def gauge(self, name: str, node: str = _SYSTEM) -> Gauge:
        """Return (creating if needed) the gauge ``name`` for ``node``."""
        key = (name, node)
        metric = self._gauges.get(key)
        if metric is None:
            metric = Gauge()
            self._gauges[key] = metric
        return metric

    def histogram(self, name: str, node: str = _SYSTEM) -> Histogram:
        """Return (creating if needed) the histogram ``name`` for ``node``."""
        key = (name, node)
        metric = self._histograms.get(key)
        if metric is None:
            metric = Histogram()
            self._histograms[key] = metric
        return metric

    # ------------------------------------------------------------ shortcuts

    def increment(self, name: str, node: str = _SYSTEM, amount: float = 1.0) -> None:
        """Increment a counter in one call."""
        self.counter(name, node).increment(amount)

    def observe(self, name: str, value: float, node: str = _SYSTEM) -> None:
        """Record one histogram sample in one call."""
        self.histogram(name, node).observe(value)

    # -------------------------------------------------------------- queries

    def counter_value(self, name: str, node: str = _SYSTEM) -> float:
        """Current value of a counter (0 if it was never touched)."""
        metric = self._counters.get((name, node))
        return metric.value if metric is not None else 0.0

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every node (including the system slot)."""
        return sum(metric.value for (metric_name, _), metric in self._counters.items() if metric_name == name)

    def per_node_counter(self, name: str) -> Dict[str, float]:
        """Mapping ``node -> value`` for a counter, excluding the system slot."""
        return {
            node: metric.value
            for (metric_name, node), metric in self._counters.items()
            if metric_name == name and node != self._SYSTEM
        }

    def per_node_gauge(self, name: str) -> Dict[str, float]:
        """Mapping ``node -> value`` for a gauge, excluding the system slot."""
        return {
            node: metric.value
            for (metric_name, node), metric in self._gauges.items()
            if metric_name == name and node != self._SYSTEM
        }

    def histogram_summary(self, name: str, node: str = _SYSTEM) -> HistogramSummary:
        """Summary of a histogram (empty summary if never observed)."""
        return self.histogram(name, node).summary()

    def names(self) -> Dict[str, List[str]]:
        """All metric names grouped by primitive type."""
        return {
            "counters": sorted({name for name, _ in self._counters}),
            "gauges": sorted({name for name, _ in self._gauges}),
            "histograms": sorted({name for name, _ in self._histograms}),
        }

    def reset(self) -> None:
        """Forget every metric (between independent runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
