"""Length-prefixed JSON wire codec for the live runtime.

Every message that crosses a transport is one *frame*: a 4-byte big-endian
length prefix followed by a UTF-8 JSON object.  The JSON object carries the
:class:`~repro.sim.network.Message` envelope (sender, recipient, kind, size,
sent_at) plus a ``payload`` encoded by a per-kind codec.  Codecs exist for
every protocol payload that travels in the stack — gossip events and
digests, pull requests, CYCLON shuffles, lpbcast membership digests — and
for the runtime's own control frames (remote publish and subscription
exchanges).  ``None`` and plain-JSON payloads pass through unchanged, so new
message kinds with JSON-native payloads work without registering a codec.

The memory transport runs every frame through this codec too: what the
socket transports put on the wire is byte-for-byte what the in-process
transport exercises, which is what makes memory-transport tests meaningful
for the UDP/TCP paths.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..brokers import broker as _broker
from ..damulticast import dam as _dam
from ..dht import dks as _dks
from ..dht import scribe as _scribe
from ..gossip.push import GossipMessage
from ..gossip.pushpull import DigestMessage, PullRequest
from ..membership.cyclon import ShufflePayload
from ..membership.lpbcast import MembershipDigest
from ..membership.views import NodeDescriptor
from ..pubsub.events import Event
from ..pubsub.filters import Filter, filter_from_dict
from ..sim.network import Message
from ..tracing.context import decode_contexts, encode_contexts

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_SIZE",
    "PUBLISH_KIND",
    "SUBSCRIBE_KIND",
    "UNSUBSCRIBE_KIND",
    "WireError",
    "encode_message",
    "decode_message",
    "frame",
    "FrameDecoder",
]

#: Bumped whenever the frame layout or a payload encoding changes.
WIRE_VERSION = 1

#: Upper bound on a single frame; protects receivers from hostile prefixes.
MAX_FRAME_SIZE = 16 * 1024 * 1024

#: Control frame kinds understood by :class:`~repro.runtime.host.NodeHost`.
PUBLISH_KIND = "runtime.publish"
SUBSCRIBE_KIND = "runtime.subscribe"
UNSUBSCRIBE_KIND = "runtime.unsubscribe"

_LENGTH = struct.Struct(">I")


class WireError(ValueError):
    """Raised when a frame cannot be encoded or decoded."""


# --------------------------------------------------------------- descriptors


def _encode_descriptor(descriptor: NodeDescriptor) -> List[Any]:
    return [descriptor.node_id, descriptor.age, list(descriptor.topics)]


def _decode_descriptor(payload: List[Any]) -> NodeDescriptor:
    node_id, age, topics = payload
    return NodeDescriptor(node_id=str(node_id), age=int(age), topics=tuple(topics))


def _encode_membership_digest(digest: MembershipDigest) -> Dict[str, Any]:
    return {"descriptors": [_encode_descriptor(entry) for entry in digest.descriptors]}


def _decode_membership_digest(payload: Dict[str, Any]) -> MembershipDigest:
    return MembershipDigest(
        descriptors=tuple(_decode_descriptor(entry) for entry in payload["descriptors"])
    )


# ------------------------------------------------------------ gossip payloads


def _encode_gossip(message: GossipMessage) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {
        "events": [event.to_dict() for event in message.events],
        "benefit": message.sender_benefit_rate,
    }
    if message.membership_digest is not None:
        encoded["digest"] = _encode_membership_digest(message.membership_digest)
    return encoded


def _decode_gossip(payload: Dict[str, Any]) -> GossipMessage:
    digest = payload.get("digest")
    return GossipMessage(
        events=tuple(Event.from_dict(entry) for entry in payload["events"]),
        sender_benefit_rate=float(payload.get("benefit", 0.0)),
        membership_digest=None if digest is None else _decode_membership_digest(digest),
    )


def _encode_digest_message(message: DigestMessage) -> Dict[str, Any]:
    return {"event_ids": list(message.event_ids), "benefit": message.sender_benefit_rate}


def _decode_digest_message(payload: Dict[str, Any]) -> DigestMessage:
    return DigestMessage(
        event_ids=tuple(payload["event_ids"]),
        sender_benefit_rate=float(payload.get("benefit", 0.0)),
    )


def _encode_pull_request(message: PullRequest) -> Dict[str, Any]:
    return {"event_ids": list(message.event_ids)}


def _decode_pull_request(payload: Dict[str, Any]) -> PullRequest:
    return PullRequest(event_ids=tuple(payload["event_ids"]))


def _encode_shuffle(message: ShufflePayload) -> Dict[str, Any]:
    return {"descriptors": [_encode_descriptor(entry) for entry in message.descriptors]}


def _decode_shuffle(payload: Dict[str, Any]) -> ShufflePayload:
    return ShufflePayload(
        descriptors=tuple(_decode_descriptor(entry) for entry in payload["descriptors"])
    )


def _encode_filter(subscription_filter: Filter) -> Dict[str, Any]:
    return subscription_filter.to_dict()


#: ``kind -> (encoder, decoder)``; kinds absent here fall back to plain JSON.
_CODECS: Dict[str, Tuple[Callable[[Any], Any], Callable[[Any], Any]]] = {
    "gossip.push": (_encode_gossip, _decode_gossip),
    "gossip.pull-reply": (_encode_gossip, _decode_gossip),
    "gossip.digest": (_encode_digest_message, _decode_digest_message),
    "gossip.pull-request": (_encode_pull_request, _decode_pull_request),
    # Lazy probabilistic broadcast reuses the push/digest/pull payload
    # shapes under its own kinds (see repro.gossip.lazy).
    "gossip.lazy-push": (_encode_gossip, _decode_gossip),
    "gossip.lazy-reply": (_encode_gossip, _decode_gossip),
    "gossip.lazy-digest": (_encode_digest_message, _decode_digest_message),
    "gossip.lazy-request": (_encode_pull_request, _decode_pull_request),
    # Bridge relays carry a plain gossip payload across domain boundaries
    # (see repro.topology.bridge) under their own kind.
    "topology.bridge": (_encode_gossip, _decode_gossip),
    "membership.cyclon.request": (_encode_shuffle, _decode_shuffle),
    "membership.cyclon.reply": (_encode_shuffle, _decode_shuffle),
    "membership.lpbcast.digest": (_encode_membership_digest, _decode_membership_digest),
    PUBLISH_KIND: (lambda event: event.to_dict(), Event.from_dict),
    SUBSCRIBE_KIND: (_encode_filter, filter_from_dict),
    UNSUBSCRIBE_KIND: (_encode_filter, filter_from_dict),
}

# Baseline protocol payloads (brokers, Scribe/SplitStream trees, DKS groups,
# data-aware multicast) serialize next to the protocol code that owns them;
# merging their codec tables here is what lets ``serve --scenario`` run the
# non-gossip baselines on real transports.
for _module in (_broker, _scribe, _dks, _dam):
    _CODECS.update(_module.WIRE_CODECS)


# ------------------------------------------------------------------ envelope


def encode_message(message: Message) -> bytes:
    """Encode a message envelope plus payload as one JSON frame body."""
    payload: Any = message.payload
    codec = _CODECS.get(message.kind)
    if codec is not None:
        if payload is None:
            raise WireError(f"message kind {message.kind!r} requires a payload")
        payload = codec[0](payload)
    envelope = {
        "v": WIRE_VERSION,
        "sender": message.sender,
        "recipient": message.recipient,
        "kind": message.kind,
        "size": message.size,
        "sent_at": message.sent_at,
        "payload": payload,
    }
    # The trace key is only present on traced frames, so the untraced wire
    # format is byte-for-byte unchanged and WIRE_VERSION need not bump;
    # decoders ignore unknown keys, so mixed traced/untraced clusters work.
    if message.trace:
        envelope["trace"] = encode_contexts(message.trace)
    try:
        return json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise WireError(
            f"payload of kind {message.kind!r} is not JSON-serializable: {error}"
        ) from None


def decode_message(data: bytes) -> Message:
    """Decode one JSON frame body back into a message."""
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"malformed frame: {error}") from None
    if not isinstance(envelope, dict):
        raise WireError("frame must decode to a JSON object")
    version = envelope.get("v")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version!r} (expected {WIRE_VERSION})")
    # Malformed envelopes and mis-shaped payloads must surface as WireError:
    # receivers treat WireError as "count and drop the frame", anything else
    # would tear down the connection serving an otherwise healthy peer.
    try:
        kind = envelope["kind"]
        payload = envelope.get("payload")
        codec = _CODECS.get(kind)
        if codec is not None:
            payload = codec[1](payload)
        return Message(
            sender=envelope["sender"],
            recipient=envelope["recipient"],
            kind=kind,
            payload=payload,
            size=int(envelope.get("size", 1)),
            sent_at=float(envelope.get("sent_at", 0.0)),
            trace=decode_contexts(envelope.get("trace")),
        )
    except WireError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as error:
        raise WireError(f"malformed envelope or payload: {error!r}") from None


# ------------------------------------------------------------------- framing


def frame(body: bytes) -> bytes:
    """Prefix a frame body with its 4-byte big-endian length."""
    if len(body) > MAX_FRAME_SIZE:
        raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME_SIZE")
    return _LENGTH.pack(len(body)) + body


class FrameDecoder:
    """Incremental splitter for length-prefixed frames on a byte stream.

    Feed arbitrary chunks (as delivered by a TCP socket); complete frame
    bodies come out in order.  State between calls is just the undecoded
    tail, so one decoder per connection is all a server needs.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb a chunk and return every frame completed by it."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                break
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_FRAME_SIZE:
                raise WireError(f"incoming frame of {length} bytes exceeds MAX_FRAME_SIZE")
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                break
            frames.append(bytes(self._buffer[_LENGTH.size : end]))
            del self._buffer[:end]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)
