"""FaultController: drive a :class:`~repro.faults.plan.FaultPlan` anywhere.

The controller is deliberately substrate-agnostic: it touches only the
scheduling surface shared by the discrete-event
:class:`~repro.sim.engine.Simulator` and the live
:class:`~repro.runtime.scheduler.AsyncScheduler` (``now``, ``rng``,
``schedule``/``schedule_periodic``), the network surface shared by
:class:`~repro.sim.network.Network` and
:class:`~repro.runtime.network.RuntimeNetwork` (``known_nodes``,
``set_partition``/``clear_partition``,
``set_perturbation``/``clear_perturbation``), and the
:class:`~repro.sim.node.ProcessRegistry` both worlds populate.  One
controller implementation therefore actuates the same plan JSON in the
simulator and on real transports.

Every fault event is emitted as tagged telemetry (``fault.events`` counters
keyed by ``action``, ``fault.skipped`` for targets that no longer exist,
``fault.partition_active`` / ``fault.perturb_active`` / ``fault.nodes_down``
gauges), so snapshot streams carry a fault timeline next to the fairness
series — ``python -m repro report`` renders it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .actions import (
    FAULT_EVENTS_METRIC,
    FAULT_SKIPPED_METRIC,
    apply_node_action,
    churn_tick,
)
from .plan import FaultPlan, FaultPlanError, FaultSpec

__all__ = ["FaultController"]


class FaultController:
    """Schedules and applies one fault plan on a scheduler/network/registry.

    Parameters
    ----------
    scheduler:
        ``Simulator`` or ``AsyncScheduler`` (duck-typed).
    network:
        ``Network`` or ``RuntimeNetwork`` (duck-typed); may be ``None`` for
        plans without partition/perturb entries.
    registry:
        The shared :class:`~repro.sim.node.ProcessRegistry`; may be ``None``
        for plans without node-level entries.
    plan:
        The (already validated) fault plan to execute.
    domain_map:
        The run's :class:`~repro.topology.domains.DomainMap`, required when
        the plan contains domain-partition entries (``domains=...``); those
        entries resolve domain names into a group map at install time.
    telemetry / trace:
        Optional observability hooks; recording draws no randomness and
        schedules nothing, so attaching them cannot perturb a run.
    """

    def __init__(
        self,
        scheduler,
        network=None,
        registry=None,
        plan: FaultPlan = FaultPlan(),
        *,
        domain_map=None,
        telemetry=None,
        trace=None,
    ) -> None:
        if plan.needs_registry() and registry is None:
            raise FaultPlanError(
                "fault plan contains node-level entries (crash/recover/leave/churn) "
                "but no process registry is available"
            )
        if plan.needs_network() and network is None:
            raise FaultPlanError(
                "fault plan contains network entries (partition/perturb) "
                "but no network is available"
            )
        for index, entry in enumerate(plan.entries):
            if entry.kind != "partition" or not entry.domains:
                continue
            if domain_map is None:
                raise FaultPlanError(
                    f"fault entry #{index} ('partition'): names domains "
                    f"{sorted(entry.domains)} but the run has no topology; "
                    "set topology.domains (or pass --topology) first"
                )
            # Resolve now so unknown domain names fail at build time, not
            # mid-run; the install closure re-resolves against the same map.
            try:
                domain_map.partition_assignment(entry.domains)
            except ValueError as error:
                raise FaultPlanError(
                    f"fault entry #{index} ('partition'): {error}"
                )
        self._domain_map = domain_map
        self._scheduler = scheduler
        self._network = network
        self._registry = registry
        self.plan = plan
        self._telemetry = telemetry
        self._trace = trace
        self._events: List = []
        self._timers: List = []
        self._started = False
        self._perturb_active = 0
        self._partition_active = 0
        #: Generation counters: each install bumps one, and the matching
        #: heal/lift only clears the network if its own install is still
        #: the latest.  Back-to-back windows (one window's end == the next
        #: window's start) are valid, and scheduling order within the
        #: shared timestamp must not let the earlier window's heal erase
        #: the later window's freshly installed fault.
        self._partition_generation = 0
        self._perturb_generation = 0
        #: Event counts by action (``crash``/``recover``/``leave``/
        #: ``skipped``/``partition``/``heal``/``perturb``).
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Schedule every plan entry; idempotent."""
        if self._started:
            return
        self._started = True
        for index, entry in enumerate(self.plan.entries):
            if entry.kind in ("crash", "recover", "leave"):
                self._schedule_node_actions(entry)
            elif entry.kind == "churn":
                self._schedule_churn(entry, index)
            elif entry.kind == "partition":
                self._schedule_partition(entry)
            elif entry.kind == "perturb":
                self._schedule_perturb(entry, index)
            else:  # pragma: no cover - validate() rejects unknown kinds
                raise FaultPlanError(f"unknown fault kind {entry.kind!r}")

    def stop(self) -> None:
        """Cancel pending events and timers; lift live network faults.

        A partition or perturbation whose heal/lift event was still pending
        is cleared here — cancelling the heal while leaving the network
        split would leak a permanent partition into whatever runs next.
        """
        for event in self._events:
            event.cancel()
        self._events.clear()
        for timer in self._timers:
            timer.stop()
        self._timers.clear()
        if self._network is not None and self._perturb_active:
            self._network.clear_perturbation()
            self._perturb_active = 0
            self._set_gauge("fault.perturb_active", 0.0)
        if self._network is not None and self._partition_active:
            self._network.clear_partition()
            self._partition_active = 0
            self._set_gauge("fault.partition_active", 0.0)
        self._started = False

    # ----------------------------------------------------------- schedulers

    def _at(self, timestamp: float, action, label: str) -> None:
        """Schedule ``action`` at absolute plan time (clamped to now)."""
        delay = max(0.0, timestamp - self._scheduler.now)
        self._events.append(self._scheduler.schedule(delay, action, label=label))

    def _schedule_node_actions(self, entry: FaultSpec) -> None:
        for node_id in entry.nodes:
            self._at(
                entry.at,
                lambda node_id=node_id, action=entry.kind: self._apply_node(action, node_id),
                label=f"fault:{entry.kind}:{node_id}",
            )

    def _schedule_churn(self, entry: FaultSpec, index: int) -> None:
        stream_name = entry.rng_stream or f"fault-{index}-churn"

        protected = set(entry.protected)

        def tick() -> None:
            if entry.until > 0 and self._scheduler.now > entry.until:
                for timer in timers:
                    timer.stop()
                return
            churn_tick(
                self._registry,
                self._scheduler.rng.stream(stream_name),
                entry.down_probability,
                entry.up_probability,
                protected,
                on_crash=lambda node_id: self._record("crash", node_id),
                on_recover=lambda node_id: self._record("recover", node_id),
            )

        timers: List = []

        def arm() -> None:
            timer = self._scheduler.schedule_periodic(
                entry.period, tick, label=f"fault:churn:{stream_name}"
            )
            timers.append(timer)
            self._timers.append(timer)

        if entry.at <= self._scheduler.now:
            arm()
        else:
            self._at(entry.at, arm, label=f"fault:churn-start:{stream_name}")

    def _schedule_partition(self, entry: FaultSpec) -> None:
        generation = {"installed": None}

        def install() -> None:
            if entry.domains:
                assignment = self._domain_map.partition_assignment(entry.domains)
            elif entry.groups:
                assignment = {node_id: group for node_id, group in entry.groups}
            else:
                members = sorted(self._network.known_nodes())
                cutoff = max(1, int(len(members) * entry.fraction))
                assignment = {
                    node_id: (1 if position < cutoff else 0)
                    for position, node_id in enumerate(members)
                }
            self._network.set_partition(assignment)
            self._partition_generation += 1
            generation["installed"] = self._partition_generation
            self._partition_active += 1
            self._record("partition")
            self._set_gauge("fault.partition_active", 1.0)

        def heal() -> None:
            self._partition_active = max(0, self._partition_active - 1)
            if generation["installed"] != self._partition_generation:
                return  # a newer window's install superseded this one
            self._network.clear_partition()
            self._record("heal")
            self._set_gauge("fault.partition_active", 0.0)

        self._at(entry.at, install, label="fault:partition:install")
        self._at(entry.at + entry.heal_after, heal, label="fault:partition:heal")

    def _schedule_perturb(self, entry: FaultSpec, index: int) -> None:
        stream_name = entry.rng_stream or f"fault-{index}-perturb"
        generation = {"installed": None}

        def install() -> None:
            rng = self._scheduler.rng.stream(stream_name) if entry.loss_rate > 0 else None
            self._network.set_perturbation(
                extra_latency=entry.extra_latency, loss_rate=entry.loss_rate, rng=rng
            )
            self._perturb_generation += 1
            generation["installed"] = self._perturb_generation
            self._perturb_active += 1
            self._record("perturb")
            self._set_gauge("fault.perturb_active", 1.0)

        def lift() -> None:
            self._perturb_active = max(0, self._perturb_active - 1)
            if generation["installed"] != self._perturb_generation:
                return  # a newer window's install superseded this one
            self._network.clear_perturbation()
            self._set_gauge("fault.perturb_active", 0.0)

        self._at(entry.at, install, label="fault:perturb:install")
        if entry.until > 0:
            self._at(entry.until, lift, label="fault:perturb:lift")

    # ------------------------------------------------------------ actuation

    def _apply_node(self, action: str, node_id: str) -> None:
        """Apply one crash/recover/leave; unknown targets become ``skipped``."""
        if apply_node_action(self._registry, node_id, action):
            self._record(action, node_id)
        else:
            self._skip(action, node_id)

    # -------------------------------------------------------- observability

    def _record(self, action: str, node_id: str = "") -> None:
        self.counts[action] = self.counts.get(action, 0) + 1
        if self._telemetry is not None:
            self._telemetry.increment(FAULT_EVENTS_METRIC, action=action)
            if self._registry is not None:
                down = len(self._registry.all()) - len(self._registry.alive())
                self._telemetry.set_gauge("fault.nodes_down", float(down))
        if self._trace is not None:
            self._trace.record(self._scheduler.now, "fault", node=node_id, action=action)

    def _skip(self, action: str, node_id: str) -> None:
        """A fault targeted a node that no longer exists: make it loud.

        Dropping the event silently would let a mistyped or already-left
        node id turn a failure experiment into a quieter one with nobody
        noticing; instead the skip lands in telemetry (``fault.skipped``)
        and the trace.
        """
        self.counts["skipped"] = self.counts.get("skipped", 0) + 1
        if self._telemetry is not None:
            self._telemetry.increment(FAULT_SKIPPED_METRIC, action=action)
        if self._trace is not None:
            self._trace.record(
                self._scheduler.now,
                "fault",
                node=node_id,
                action="skipped",
                requested=action,
            )

    def _set_gauge(self, name: str, value: float) -> None:
        if self._telemetry is not None:
            self._telemetry.set_gauge(name, value)
