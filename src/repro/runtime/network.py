"""Live message fabric with the simulator network's interface.

:class:`RuntimeNetwork` implements the surface of
:class:`~repro.sim.network.Network` that processes and membership components
touch (``register`` / ``set_alive`` / ``send`` / ``alive_nodes`` / stats /
delivery hooks), but instead of scheduling a delivery on the event queue it
encodes the message with the wire codec and hands the frame to a
:class:`~repro.runtime.transport.Transport`.  Latency is whatever the
transport and the kernel provide; loss is whatever the wire loses — the
simulator's latency/loss *models* have no live counterpart by design.

The fault layer, however, needs live actuators: :meth:`set_partition`
installs the same group map the simulator's network uses (frames across
groups are dropped, on the send side and for frames arriving from remote
peers), and :meth:`set_perturbation` adds artificial per-frame latency
(scheduled on the runtime's own scheduler) and Bernoulli loss drawn from a
named fault RNG stream.  Both default to off and cost nothing while off,
which is what lets one :class:`~repro.faults.plan.FaultPlan` run unmodified
on either substrate.

Control frames (kinds starting with ``runtime.``) are routed to the host's
control handler instead of a node, which is how remote publish and
subscription exchanges enter a live cluster.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from ..sim.network import FaultInjectionSurface, Message, NetworkStats
from .scheduler import AsyncScheduler
from .transport import Transport
from .wire import WireError, decode_message, encode_message

__all__ = ["RuntimeNetwork", "CONTROL_PREFIX"]

#: Message kinds owned by the runtime itself rather than a protocol node.
CONTROL_PREFIX = "runtime."


class RuntimeNetwork(FaultInjectionSurface):
    """Connects live processes through a transport.

    Parameters
    ----------
    scheduler:
        Supplies ``now`` for send timestamps (the ``simulator`` the hosted
        processes see).
    transport:
        Frame carrier; the network registers itself as its receiver.
    """

    def __init__(self, scheduler: AsyncScheduler, transport: Transport) -> None:
        self._scheduler = scheduler
        self._transport = transport
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._alive: Set[str] = set()
        self.stats = NetworkStats()
        self.decode_errors = 0
        self._init_fault_state()
        self._delivery_hooks: list = []
        #: Optional :class:`~repro.tracing.tracer.Tracer`; when set, dropped
        #: traced frames emit ``drop`` spans (same contract as the simulator
        #: network's ``tracer`` attribute).
        self.tracer = None
        #: Installed by the host; receives decoded ``runtime.*`` messages.
        self.control_handler: Optional[Callable[[Message], None]] = None
        transport.set_receiver(self._on_frame)

    # --------------------------------------------------------------- wiring

    @property
    def simulator(self) -> AsyncScheduler:
        """The scheduler driving the hosted processes."""
        return self._scheduler

    @property
    def transport(self) -> Transport:
        """The frame carrier underneath this network."""
        return self._transport

    def register(self, node_id: str, handler: Callable[[Message], None]) -> None:
        """Attach a process; it becomes reachable and alive."""
        self._handlers[node_id] = handler
        self._alive.add(node_id)
        self._transport.register_node(node_id)

    def unregister(self, node_id: str) -> None:
        """Detach a process completely."""
        self._handlers.pop(node_id, None)
        self._alive.discard(node_id)

    def set_alive(self, node_id: str, alive: bool) -> None:
        """Mark a registered process up or down without unregistering it."""
        if node_id not in self._handlers:
            raise KeyError(f"unknown node {node_id!r}")
        if alive:
            self._alive.add(node_id)
        else:
            self._alive.discard(node_id)

    def is_alive(self, node_id: str) -> bool:
        """Whether the local node is currently able to receive messages."""
        return node_id in self._alive

    def known_nodes(self) -> Set[str]:
        """All locally registered node identifiers."""
        return set(self._handlers)

    def alive_nodes(self) -> Set[str]:
        """Identifiers of local nodes currently alive."""
        return set(self._alive)

    def add_delivery_hook(self, hook: Callable[[Message, float], None]) -> None:
        """Register a callback invoked as ``hook(message, delivered_at)``."""
        self._delivery_hooks.append(hook)

    # Partition and perturbation actuators are inherited from
    # FaultInjectionSurface — the same implementation the simulator's
    # Network uses, so one FaultPlan means the same physics in both worlds.

    # --------------------------------------------------------------- sending

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any = None,
        size: int = 1,
        trace: Optional[Tuple] = None,
    ) -> Message:
        """Encode a message and hand it to the transport."""
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size=size,
            sent_at=self._scheduler.now,
            trace=trace,
        )
        self.stats.record_sent(message)
        extra_latency = 0.0
        if not message.kind.startswith(CONTROL_PREFIX):
            if not self._same_partition(sender, recipient):
                self.stats.dropped_partition += 1
                self._trace_drop(message, "partition")
                return message
            if self._perturb_loss > 0.0 and self._perturb_rng.random() < self._perturb_loss:
                self.stats.lost += 1
                self._trace_drop(message, "lost")
                return message
            extra_latency = self._perturb_latency
            if self._link_profile is not None:
                link_latency, link_loss = self._link_profile.effects(sender, recipient)
                if link_loss > 0.0 and self._link_profile.rng.random() < link_loss:
                    self.stats.lost += 1
                    self._trace_drop(message, "lost")
                    return message
                extra_latency += link_latency
        body = encode_message(message)
        if extra_latency > 0.0:
            def deliver_later(recipient=recipient, body=body, message=message) -> None:
                if not self._transport.send(recipient, body):
                    self.stats.dropped_dead += 1
                    self._trace_drop(message, "dead")

            self._scheduler.schedule(
                extra_latency, deliver_later, label="fault:extra-latency"
            )
        elif not self._transport.send(recipient, body):
            self.stats.dropped_dead += 1
            self._trace_drop(message, "dead")
        return message

    def broadcast(
        self,
        sender: str,
        recipients: Iterable[str],
        kind: str,
        payload: Any = None,
        size: int = 1,
        trace: Optional[Tuple] = None,
    ) -> Tuple[Message, ...]:
        """Send the same payload to several recipients (one message each)."""
        return tuple(
            self.send(sender, recipient, kind, payload=payload, size=size, trace=trace)
            for recipient in recipients
        )

    def _trace_drop(self, message: Message, reason: str) -> None:
        if message.trace and self.tracer is not None:
            self.tracer.record_drop(message, reason)

    # ------------------------------------------------------------- receiving

    def _on_frame(self, body: bytes) -> None:
        try:
            message = decode_message(body)
        except WireError:
            self.decode_errors += 1
            return
        self._deliver(message)

    def _deliver(self, message: Message) -> None:
        if message.kind.startswith(CONTROL_PREFIX):
            if self.control_handler is not None:
                self.control_handler(message)
            return
        # Frames from remote peers are filtered here too: in a multi-host
        # cluster only the host running the fault controller knows about the
        # partition, so the receive side must enforce it as well.
        if not self._same_partition(message.sender, message.recipient):
            self.stats.dropped_partition += 1
            self._trace_drop(message, "partition")
            return
        handler = self._handlers.get(message.recipient)
        if handler is None or message.recipient not in self._alive:
            self.stats.dropped_dead += 1
            self._trace_drop(message, "dead")
            return
        self.stats.delivered += 1
        now = self._scheduler.now
        for hook in self._delivery_hooks:
            hook(message, now)
        handler(message)
