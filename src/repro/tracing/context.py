"""Trace context: the causal coordinates a message carries for one event.

A :class:`TraceContext` is the piece of tracing state that *travels*: it
names the trace (the event id — one trace per published event), the span
that caused this message to exist (the sender's ``relay`` /
``digest-advert`` span), and how many hops the event has taken so far.
Receivers parent their own spans on ``parent_span`` and extend the hop
count, which is what lets :mod:`repro.tracing.analyze` reconstruct the
infection tree purely from the span stream.

This module is dependency-free on purpose: the simulator's network attaches
context tuples to in-flight messages and the wire codec serializes them, and
neither may pull the rest of the tracing package (or anything above it) into
their import graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["TraceContext", "encode_contexts", "decode_contexts"]


@dataclass(frozen=True)
class TraceContext:
    """Causal coordinates for one event on one message.

    Attributes
    ----------
    trace_id:
        The trace identifier; always the event id of the event being traced.
    parent_span:
        Span id of the sender-side span (``relay``, ``digest-advert``) that
        put this event on the wire; receiver spans use it as their parent.
    hops:
        Network hops the event has taken when this message arrives (the
        publisher's own copy is hop 0).
    """

    trace_id: str
    parent_span: int
    hops: int


def encode_contexts(contexts: Sequence[TraceContext]) -> List[List[Any]]:
    """Wire shape: one compact ``[trace_id, parent_span, hops]`` triple each."""
    return [[ctx.trace_id, ctx.parent_span, ctx.hops] for ctx in contexts]


def decode_contexts(payload: Any) -> Optional[Tuple[TraceContext, ...]]:
    """Inverse of :func:`encode_contexts`; ``None`` for an absent/empty list."""
    if not payload:
        return None
    return tuple(
        TraceContext(trace_id=str(entry[0]), parent_span=int(entry[1]), hops=int(entry[2]))
        for entry in payload
    )
