"""Experiment F3 (Figure 3): expressive fairness via fanout and message size.

Content-based filters over a synthetic attribute space (no topics to group
by), with the contribution levers ablated: fanout adaptation only, payload
adaptation only, both, neither (= classic).  Figure 3's claim is that both
levers modulate contribution against benefit (= #delivered); the expected
shape is that each lever alone improves fairness over the classic baseline
and both together improve it the most, at unchanged delivery ratio.
"""

from __future__ import annotations

from common import BASE_CONFIG, attach_extra_info, print_results, run_configs


def run_ablation():
    base = BASE_CONFIG.with_overrides(
        name="fig3",
        system="fair-gossip",
        interest_model="content",
        topics_per_node=2,
        fairness_policy="expressive",
        nodes=80,
        duration=20.0,
        drain_time=12.0,
    )
    variants = {
        "classic": base.with_overrides(system="gossip", name="fig3/classic"),
        "fanout-only": base.with_overrides(adapt_fanout=True, adapt_payload=False, name="fig3/fanout-only"),
        "payload-only": base.with_overrides(adapt_fanout=False, adapt_payload=True, name="fig3/payload-only"),
        "both": base.with_overrides(adapt_fanout=True, adapt_payload=True, name="fig3/both"),
    }
    results = run_configs(list(variants.values()))
    return dict(zip(variants, results))


def test_fig3_expressive_fairness_levers(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    ordered = [results[label] for label in ("classic", "fanout-only", "payload-only", "both")]
    print_results("Figure 3 — expressive selection: fanout and payload as contribution levers", ordered)
    attach_extra_info(benchmark, ordered)
    classic = results["classic"].fairness.report
    both = results["both"].fairness.report
    fanout_only = results["fanout-only"].fairness.report
    assert both.ratio_jain > classic.ratio_jain
    assert fanout_only.ratio_jain > classic.ratio_jain
    # Reliability must not be sacrificed for fairness.
    for result in results.values():
        assert result.reliability.delivery_ratio > 0.9
