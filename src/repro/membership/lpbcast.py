"""Lpbcast-style membership (reference [11] of the paper).

Lightweight probabilistic broadcast piggybacks membership information on the
gossip messages themselves: every gossip message carries a few node
descriptors (recently seen subscribers), and receivers merge them into their
partial view, truncating uniformly at random back to the view capacity.
There is no dedicated shuffle exchange; the dissemination traffic *is* the
membership traffic.

The component exposes :meth:`digest_for_gossip` so the dissemination protocol
can attach a membership digest to outgoing gossip messages and
:meth:`absorb_digest` so it can merge digests found on incoming ones.  A slow
standalone refresh round is also provided for protocols that gossip rarely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..sim.network import Message
from ..sim.node import Process
from .base import MembershipComponent
from .views import NodeDescriptor, PartialView

__all__ = ["LpbcastMembership", "lpbcast_provider", "MembershipDigest"]

DIGEST_MESSAGE = MembershipComponent.MESSAGE_PREFIX + "lpbcast.digest"


@dataclass(frozen=True)
class MembershipDigest:
    """Node descriptors piggybacked on gossip traffic."""

    descriptors: Tuple[NodeDescriptor, ...]


class LpbcastMembership(MembershipComponent):
    """Per-node lpbcast-style membership component."""

    def __init__(
        self,
        owner: Process,
        view_size: int = 25,
        digest_size: int = 4,
        standalone_refresh: bool = True,
    ) -> None:
        super().__init__(owner)
        if view_size <= 0 or digest_size <= 0:
            raise ValueError("view_size and digest_size must be positive")
        self.view = PartialView(owner.node_id, capacity=view_size)
        self.digest_size = digest_size
        self.standalone_refresh = standalone_refresh
        self.digests_sent = 0
        self.digests_absorbed = 0

    def bootstrap(self, seeds: Sequence[str]) -> None:
        for seed in seeds:
            self.view.add(NodeDescriptor(node_id=seed, age=0))

    # -------------------------------------------------- piggybacked digests

    def digest_for_gossip(self) -> MembershipDigest:
        """Descriptors to attach to the next outgoing gossip message."""
        rng = self.owner.simulator.rng.stream(f"lpbcast:{self.owner.node_id}")
        sample = self.view.sample_descriptors(rng, self.digest_size - 1)
        self.digests_sent += 1
        return MembershipDigest(
            descriptors=tuple(sample) + (NodeDescriptor(node_id=self.owner.node_id, age=0),)
        )

    def absorb_digest(self, digest: MembershipDigest) -> None:
        """Merge a digest found on an incoming gossip message."""
        self.digests_absorbed += 1
        rng = self.owner.simulator.rng.stream(f"lpbcast:{self.owner.node_id}")
        for descriptor in digest.descriptors:
            if descriptor.node_id == self.owner.node_id:
                continue
            if len(self.view) >= self.view.capacity and descriptor.node_id not in self.view:
                # Random truncation, as in lpbcast: evict a uniformly chosen
                # entry to make room, keeping the view well mixed.
                victims = self.view.node_ids()
                if victims:
                    self.view.remove(rng.choice(victims))
            self.view.add(descriptor.refreshed())

    # --------------------------------------------------- standalone traffic

    def on_round(self) -> None:
        """Optionally push a digest to one random peer (for quiet systems)."""
        if not self.standalone_refresh:
            return
        self.view.age_all()
        rng = self.owner.simulator.rng.stream(f"lpbcast:{self.owner.node_id}")
        targets = self.view.sample(rng, 1)
        if not targets:
            return
        digest = self.digest_for_gossip()
        self.owner.send(
            targets[0], DIGEST_MESSAGE, payload=digest, size=len(digest.descriptors)
        )

    def handle(self, message: Message) -> bool:
        if message.kind == DIGEST_MESSAGE:
            self.absorb_digest(message.payload)
            return True
        return False

    # -------------------------------------------------------------- queries

    def select_partners(
        self, count: int, rng: random.Random, exclude: Iterable[str] = ()
    ) -> List[str]:
        return self.view.sample(rng, count, exclude=exclude)

    def known_peers(self) -> List[str]:
        return self.view.node_ids()

    def notify_left(self, node_id: str) -> None:
        self.view.remove(node_id)


def lpbcast_provider(view_size: int = 25, digest_size: int = 4, standalone_refresh: bool = True):
    """Return a provider building :class:`LpbcastMembership` components."""

    def provider(owner: Process) -> LpbcastMembership:
        return LpbcastMembership(
            owner,
            view_size=view_size,
            digest_size=digest_size,
            standalone_refresh=standalone_refresh,
        )

    return provider
