"""Deterministic head-based trace sampling.

The sampling decision is made once, at the publisher (the head of the
trace), by hashing the event id against the configured rate — no RNG stream
is consumed, so enabling tracing cannot perturb a seeded run, and the same
events are sampled for the same rate on every engine and every rerun.
Downstream nodes never re-decide: a propagated :class:`~repro.tracing.context.TraceContext`
is always honoured, which keeps every sampled trace complete.
"""

from __future__ import annotations

import hashlib

__all__ = ["TraceSampler"]

#: 2**64, the denominator mapping an 8-byte hash prefix onto [0, 1).
_HASH_SPAN = float(1 << 64)


class TraceSampler:
    """Hash-based sampler: ``sampled(id)`` is a pure function of (id, rate, salt).

    ``rate`` is the expected fraction of traces kept; 0 disables sampling
    entirely (the default everywhere — tracing is opt-in), 1 keeps every
    trace.  ``salt`` lets two tracers over the same workload sample disjoint
    or identical populations on purpose.
    """

    def __init__(self, rate: float = 0.0, salt: str = "") -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be within [0, 1], got {rate!r}")
        self.rate = float(rate)
        self.salt = salt

    def sampled(self, trace_id: str) -> bool:
        """Whether the trace with this id is in the sampled population."""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        digest = hashlib.sha256((self.salt + trace_id).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / _HASH_SPAN < self.rate
