"""Decentralised benefit estimation.

A fair gossip node needs two quantities to choose its contribution level
(§5.2): its *own* recent benefit (interesting events delivered per round) and
an estimate of the *population average* benefit, so it can tell whether it
benefits more or less than its peers.  Neither requires extra messages: the
own rate is observed locally, and the population rate is estimated from the
``sender_benefit_rate`` values piggybacked on the gossip messages the node
receives anyway.

Both signals are smoothed with exponentially weighted moving averages so the
controllers neither oscillate on bursty traffic nor take forever to react to
an interest change (the convergence question of challenge 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Ewma", "BenefitEstimator"]


@dataclass
class Ewma:
    """Exponentially weighted moving average.

    ``alpha`` is the weight of each new observation; 1.0 tracks the latest
    value exactly, values near 0 average over a long horizon.
    """

    alpha: float = 0.3
    value: float = 0.0
    observations: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be within (0, 1]")

    def observe(self, sample: float) -> float:
        """Fold one sample into the average and return the new value."""
        if self.observations == 0:
            self.value = float(sample)
        else:
            self.value = self.alpha * float(sample) + (1.0 - self.alpha) * self.value
        self.observations += 1
        return self.value

    def reset(self) -> None:
        """Forget everything."""
        self.value = 0.0
        self.observations = 0


class BenefitEstimator:
    """Tracks a node's own benefit rate and an estimate of the population rate.

    Parameters
    ----------
    own_alpha:
        Smoothing for the node's own deliveries-per-round signal.
    peer_alpha:
        Smoothing for the population estimate built from piggybacked peer
        rates.  Peers are sampled through gossip, so this is an unbiased
        (if noisy) estimate of the mean benefit rate of the system.
    """

    def __init__(self, own_alpha: float = 0.3, peer_alpha: float = 0.1) -> None:
        self._own = Ewma(alpha=own_alpha)
        self._peers = Ewma(alpha=peer_alpha)

    # ----------------------------------------------------------- observing

    def observe_own_round(self, deliveries: float) -> None:
        """Record the node's own deliveries in the round that just ended."""
        self._own.observe(deliveries)

    def observe_peer_rate(self, rate: float) -> None:
        """Record a peer's advertised benefit rate (from a received message)."""
        self._peers.observe(max(rate, 0.0))

    # ------------------------------------------------------------- reading

    @property
    def own_rate(self) -> float:
        """Smoothed own benefit rate (deliveries per round)."""
        return self._own.value

    @property
    def population_rate(self) -> float:
        """Smoothed estimate of the average peer benefit rate."""
        return self._peers.value

    @property
    def own_observations(self) -> int:
        """How many rounds have been observed locally."""
        return self._own.observations

    @property
    def peer_observations(self) -> int:
        """How many peer advertisements have been folded in."""
        return self._peers.observations

    def relative_benefit(self) -> float:
        """Own rate divided by the population rate.

        Returns 1.0 while there is not enough information to compare, so the
        controllers start from the neutral operating point and only move away
        from it once real measurements exist.
        """
        if self._own.observations == 0 or self._peers.observations == 0:
            return 1.0
        population = self.population_rate
        if population <= 0.0:
            # Nobody seems to benefit; if this node does, it should carry
            # proportionally more of the work.
            return 1.0 if self.own_rate <= 0.0 else 2.0
        return self.own_rate / population
