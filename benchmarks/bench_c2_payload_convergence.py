"""Experiment C2 (§5.2 challenge 2): adaptive gossip message size convergence.

Bursty publication: the rate alternates between quiet and busy phases.  The
benchmark measures how the payload controller of high-benefit nodes follows
the phases (larger payloads while busy, fall back towards the floor when
quiet) and that buffers do not grow without bound (backlog floor working).
"""

from __future__ import annotations

from common import attach_extra_info
from repro.analysis.tables import Table
from repro.core import FairGossipSystem
from repro.pubsub import TopicFilter
from repro.sim import Network, Simulator
from repro.workloads import TopicPopularity, TopicPublicationWorkload


def run_bursty(seed: int = 101):
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    node_ids = [f"node-{index:03d}" for index in range(50)]
    system = FairGossipSystem(
        simulator,
        network,
        node_ids,
        node_kwargs={"fanout": 4, "gossip_size": 6, "round_period": 1.0},
    )
    popularity = TopicPopularity.uniform(1, prefix="burst")
    topic = popularity.topics[0]
    subscribers = node_ids[:30]
    for node_id in subscribers:
        system.subscribe(node_id, TopicFilter(topic))
    publishers = node_ids[40:44]
    # Quiet phase, burst phase, quiet phase, burst phase.
    phases = [(1.0, 20.0), (12.0, 20.0), (1.0, 20.0), (12.0, 20.0)]
    start = 1.0
    payload_samples = {"quiet": [], "busy": []}
    for index, (rate, duration) in enumerate(phases):
        workload = TopicPublicationWorkload(
            system, simulator, popularity, publishers=publishers, rate=rate,
            rng_name=f"burst-{index}",
        )
        workload.start(duration=duration, start_at=start)
        system.run(until=start + duration)
        label = "busy" if rate > 5 else "quiet"
        payload_samples[label].extend(
            system.node(node_id).payload_controller.current_payload for node_id in subscribers
        )
        start += duration
    system.run(until=start + 10.0)
    backlogs = [len(system.node(node_id).buffer) for node_id in node_ids]
    return {
        "mean_payload_quiet": sum(payload_samples["quiet"]) / len(payload_samples["quiet"]),
        "mean_payload_busy": sum(payload_samples["busy"]) / len(payload_samples["busy"]),
        "max_backlog": max(backlogs),
        "deliveries": system.delivery_log.total_deliveries(),
    }


def test_c2_payload_convergence_under_bursts(benchmark):
    row = benchmark.pedantic(run_bursty, rounds=1, iterations=1)
    table = Table(
        ["mean_payload_quiet", "mean_payload_busy", "max_backlog", "deliveries"],
        title="C2 — adaptive gossip message size under bursty publication",
    )
    table.add_row(**row)
    print()
    print(table.render())
    benchmark.extra_info["row"] = row
    # Busy phases drive larger gossip payloads than quiet phases ...
    assert row["mean_payload_busy"] > row["mean_payload_quiet"]
    # ... and the backlog floor keeps buffers bounded (no unbounded growth).
    assert row["max_backlog"] <= 500
    assert row["deliveries"] > 0
