"""Asyncio-backed scheduler with the simulator's scheduling surface.

Protocol code (``Process`` subclasses, membership components, gossip nodes)
interacts with the engine exclusively through ``simulator.now``,
``simulator.rng``, ``simulator.schedule*``, and the returned timer handles.
:class:`AsyncScheduler` implements exactly that surface on top of a running
asyncio event loop, so the simulator-facing protocol classes run live
without modification: a :class:`~repro.runtime.clock.WallClock` supplies
``now``, timer delays are converted from time units to real seconds, and
jitter is drawn from the same ``"periodic-timers"`` RNG stream the
discrete-event engine uses.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional, Set

from ..sim.engine import SimulationError
from ..sim.rng import RngRegistry
from .clock import WallClock

__all__ = ["AsyncScheduler", "AsyncScheduledEvent", "AsyncPeriodicTimer"]


class AsyncScheduledEvent:
    """Handle for a one-shot scheduled callback (mirrors ``ScheduledEvent``)."""

    def __init__(self, timestamp: float, label: str = "") -> None:
        self.timestamp = timestamp
        self.label = label
        self.cancelled = False
        self._handle: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


class AsyncScheduler:
    """Duck-typed stand-in for :class:`~repro.sim.engine.Simulator`.

    Parameters
    ----------
    clock:
        The wall clock mapping time units onto real time.
    rng:
        Named random streams, exactly as in the simulator; protocol draws
        stay seeded and reproducible even though message timing is not.
    """

    def __init__(self, clock: WallClock, rng: Optional[RngRegistry] = None, seed: int = 0) -> None:
        self.clock = clock
        self.rng = rng if rng is not None else RngRegistry(seed)
        self._events: Set[AsyncScheduledEvent] = set()
        self._timers: Set["AsyncPeriodicTimer"] = set()
        self._processed = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current time in time units (wall-clock driven)."""
        return self.clock.now

    @property
    def processed_events(self) -> int:
        """Number of scheduled callbacks executed so far."""
        return self._processed

    # ------------------------------------------------------------ scheduling

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> AsyncScheduledEvent:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        loop = asyncio.get_running_loop()
        event = AsyncScheduledEvent(timestamp=self.now + delay, label=label)

        def fire() -> None:
            self._events.discard(event)
            if event.cancelled:
                return
            self._processed += 1
            action()

        event._handle = loop.call_later(self.clock.units_to_seconds(delay), fire)
        self._events.add(event)
        return event

    def schedule_at(
        self, timestamp: float, action: Callable[[], None], label: str = ""
    ) -> AsyncScheduledEvent:
        """Schedule ``action`` at absolute time ``timestamp`` (units)."""
        delay = timestamp - self.now
        if delay < 0:
            raise SimulationError(
                f"cannot schedule at {timestamp}, current time is {self.now}"
            )
        return self.schedule(delay, action, label)

    def schedule_periodic(
        self,
        period: float,
        action: Callable[[], None],
        label: str = "",
        initial_delay: Optional[float] = None,
        jitter: float = 0.0,
    ) -> "AsyncPeriodicTimer":
        """Schedule ``action`` every ``period`` units until the timer stops."""
        if period <= 0:
            raise SimulationError("period must be positive")
        timer = AsyncPeriodicTimer(self, period, action, label=label, jitter=jitter)
        timer.start(initial_delay if initial_delay is not None else period)
        self._timers.add(timer)
        return timer

    # ------------------------------------------------------------- lifecycle

    def shutdown(self) -> None:
        """Cancel every pending one-shot event and stop every timer."""
        for event in list(self._events):
            event.cancel()
        self._events.clear()
        for timer in list(self._timers):
            timer.stop()
        self._timers.clear()


class AsyncPeriodicTimer:
    """Repeating timer with the :class:`~repro.sim.engine.PeriodicTimer` API."""

    def __init__(
        self,
        scheduler: AsyncScheduler,
        period: float,
        action: Callable[[], None],
        label: str = "",
        jitter: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError("period must be positive")
        if jitter < 0:
            raise SimulationError("jitter must be non-negative")
        self._scheduler = scheduler
        self._period = period
        self._action = action
        self._label = label or "periodic"
        self._jitter = jitter
        self._pending: Optional[AsyncScheduledEvent] = None
        self._stopped = True
        self.fire_count = 0

    @property
    def period(self) -> float:
        """Current period between firings (time units)."""
        return self._period

    @period.setter
    def period(self, value: float) -> None:
        if value <= 0:
            raise SimulationError("period must be positive")
        self._period = value

    @property
    def running(self) -> bool:
        """Whether the timer will keep firing."""
        return not self._stopped

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Arm the timer; the first firing happens after ``initial_delay``."""
        self._stopped = False
        delay = self._period if initial_delay is None else initial_delay
        self._schedule(delay)

    def stop(self) -> None:
        """Cancel any pending firing and stop rescheduling."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._scheduler._timers.discard(self)

    def _schedule(self, delay: float) -> None:
        offset = 0.0
        if self._jitter:
            offset = self._scheduler.rng.stream("periodic-timers").uniform(0.0, self._jitter)
        self._pending = self._scheduler.schedule(delay + offset, self._fire, label=self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._action()
        if not self._stopped:
            self._schedule(self._period)
