"""Tests for the live asyncio runtime: clock, scheduler, hosts, parity.

The runtime runs on real time, so these tests trade the simulator's exact
assertions for structural ones (deliveries happened, accounting recorded
them, fairness is in the simulator's ballpark).  Every run is kept short by
using a large ``time_scale`` — protocol rounds of 1.0 time unit become tens
of milliseconds of real time.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.pubsub import TopicFilter
from repro.runtime import (
    AsyncScheduler,
    LoadGenerator,
    MemoryTransport,
    NodeHost,
    PUBLISH_KIND,
    SUBSCRIBE_KIND,
    TcpTransport,
    UdpTransport,
    WallClock,
    encode_message,
)
from repro.sim.engine import SimulationError
from repro.sim.network import Message
from repro.sim.rng import RngRegistry
from repro.workloads import TopicPopularity, ZipfInterest

#: Documented tolerance of the runtime-vs-simulator parity check: the live
#: run shares the simulator's protocol code, seeds, interest assignment, and
#: publication stream, but message *timing* is wall-clock, so per-node
#: contribution/benefit ratios (and hence their Jain index) drift by the
#: round-count and message-interleaving differences.  Empirically the Jain
#: gap stays well under 0.1 on this workload; 0.25 gives CI headroom
#: without letting a broken accounting path slip through.
PARITY_JAIN_TOLERANCE = 0.25


def run_async(coroutine):
    return asyncio.run(coroutine)


class TestWallClock:
    def test_advances_with_real_time_and_scales(self):
        ticks = [100.0]
        clock = WallClock(time_scale=10.0, time_source=lambda: ticks[0])
        assert clock.now == 0.0
        ticks[0] = 100.5
        assert clock.now == pytest.approx(5.0)
        assert clock.units_to_seconds(5.0) == pytest.approx(0.5)
        assert clock.seconds_to_units(0.5) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WallClock(time_scale=0.0)
        with pytest.raises(ValueError):
            WallClock(start=-1.0)


class TestAsyncScheduler:
    def test_one_shot_and_periodic_timers_fire(self):
        async def scenario():
            scheduler = AsyncScheduler(WallClock(time_scale=100.0), RngRegistry(1))
            fired = []
            scheduler.schedule(1.0, lambda: fired.append("one-shot"))
            timer = scheduler.schedule_periodic(
                2.0, lambda: fired.append("tick"), jitter=0.5
            )
            cancelled = scheduler.schedule(1.0, lambda: fired.append("never"))
            cancelled.cancel()
            await asyncio.sleep(0.09)  # ~9 time units
            timer.stop()
            await asyncio.sleep(0.03)
            return fired, timer.fire_count, scheduler.processed_events

        fired, fire_count, processed = run_async(scenario())
        assert "one-shot" in fired
        assert "never" not in fired
        assert fire_count >= 2
        assert fired.count("tick") == fire_count
        assert processed == len(fired)

    def test_negative_delay_rejected(self):
        async def scenario():
            scheduler = AsyncScheduler(WallClock(time_scale=100.0))
            with pytest.raises(SimulationError):
                scheduler.schedule(-1.0, lambda: None)
            with pytest.raises(SimulationError):
                scheduler.schedule_at(scheduler.now - 5.0, lambda: None)

        run_async(scenario())

    def test_shutdown_cancels_everything(self):
        async def scenario():
            scheduler = AsyncScheduler(WallClock(time_scale=100.0))
            fired = []
            scheduler.schedule(1.0, lambda: fired.append("late"))
            scheduler.schedule_periodic(1.0, lambda: fired.append("tick"))
            scheduler.shutdown()
            await asyncio.sleep(0.05)
            return fired

        assert run_async(scenario()) == []


def build_memory_host(nodes: int = 8, seed: int = 11, time_scale: float = 50.0) -> NodeHost:
    host = NodeHost(
        MemoryTransport(),
        seed=seed,
        time_scale=time_scale,
        node_kwargs={"fanout": 3, "gossip_size": 8, "round_period": 1.0},
    )
    host.add_nodes([f"node-{index:03d}" for index in range(nodes)])
    return host


class TestNodeHostMemory:
    def test_end_to_end_dissemination_and_accounting(self):
        async def scenario():
            host = build_memory_host()
            subscribers = host.node_ids()[:4]
            for node_id in subscribers:
                host.subscribe(node_id, TopicFilter("news"))
            await host.start()
            for index in range(10):
                host.publish(host.node_ids()[-1], topic="news")
            await host.run_for(0.4)  # ~20 rounds at time_scale 50
            await host.stop()
            return host, subscribers

        host, subscribers = run_async(scenario())
        # Every subscriber delivered every event (tiny cluster, many rounds).
        assert host.delivery_log.total_deliveries() == len(subscribers) * 10
        for node_id in subscribers:
            assert host.ledger.account(node_id).events_delivered == 10
        # Gossip sends were charged to the ledger and frames hit the codec.
        totals = host.ledger.totals()
        assert totals.gossip_messages_sent > 0
        assert host.transport.frames_sent > 0
        # Delivery latency landed in the metrics registry.
        latency = host.metrics.histogram_summary("rt.delivery_latency_units")
        assert latency.count == host.delivery_log.total_deliveries()
        assert latency.p50 > 0
        # The live fairness summary is readable and covers every node.
        summary = host.fairness_summary()
        assert len(summary.per_node) == 8

    def test_control_frames_publish_and_subscribe_over_the_wire(self):
        async def scenario():
            host = build_memory_host(nodes=5)
            await host.start()
            client = MemoryTransport(hub=host.transport.hub)
            await client.start()

            subscribe = Message(
                sender="client",
                recipient="node-001",
                kind=SUBSCRIBE_KIND,
                payload=TopicFilter("wire"),
            )
            assert client.send("node-001", encode_message(subscribe))
            await asyncio.sleep(0.02)

            event = host._factories["node-000"].create(topic="wire")
            publish = Message(
                sender="client", recipient="node-000", kind=PUBLISH_KIND, payload=event
            )
            assert client.send("node-000", encode_message(publish))
            await host.run_for(0.3)
            await host.stop()
            await client.stop()
            return host

        host = run_async(scenario())
        assert host.topics_of("node-001") == ["wire"]
        assert host.delivery_log.delivery_count("node-001") == 1
        assert host.ledger.account("node-000").events_published == 1

    def test_loadgen_paces_and_measures(self):
        async def scenario():
            host = build_memory_host(nodes=6)
            for node_id in host.node_ids():
                host.subscribe(node_id, TopicFilter("topic-00"))
            await host.start()
            generator = LoadGenerator(
                host, rate=200.0, popularity=TopicPopularity.uniform(1)
            )
            report = await generator.run(0.5)
            await host.run_for(0.2)
            await host.stop()
            return generator, report

        generator, report = run_async(scenario())
        # Catch-up pacing achieves the offered rate within ~15%.
        assert report.published == pytest.approx(100, rel=0.15)
        assert report.events_per_second == pytest.approx(200, rel=0.2)
        assert generator.schedule.count() == report.published
        latency = generator.latency_summary_seconds()
        assert latency.count > 0
        assert 0 < latency.p50 < 1.0


class TestSocketTransports:
    @pytest.mark.parametrize("transport_class", [UdpTransport, TcpTransport])
    def test_dissemination_over_real_sockets(self, transport_class):
        async def scenario():
            transport = transport_class(bind_host="127.0.0.1", bind_port=0)
            host = NodeHost(
                transport,
                seed=3,
                time_scale=50.0,
                node_kwargs={"fanout": 3, "gossip_size": 8, "round_period": 1.0},
            )
            host.add_nodes([f"node-{index:03d}" for index in range(5)])
            for node_id in host.node_ids():
                host.subscribe(node_id, TopicFilter("news"))
            await host.start()
            for _ in range(5):
                host.publish("node-000", topic="news")
            await host.run_for(0.5)
            await host.stop()
            return host

        host = run_async(scenario())
        # All 5 events reached all 5 subscribers, and the bytes really went
        # through the kernel (frames counted by the socket transport).
        assert host.delivery_log.total_deliveries() == 25
        assert host.transport.frames_sent > 0
        assert host.transport.bytes_sent > 0
        assert host.transport.frames_received > 0


class TestRuntimeSimulatorParity:
    """A live memory-transport run tracks the equivalent simulator run.

    Both runs share: the protocol classes and parameters, the seed, the
    interest assignment (same RNG stream), the publication topic stream,
    and the publisher rotation.  They differ in message timing (wall clock
    vs virtual clock).  Fairness ratios must agree within
    ``PARITY_JAIN_TOLERANCE`` (see its docstring for the rationale).
    """

    SEED = 505
    NODES = 10
    TOPICS = 4
    DURATION_UNITS = 10.0
    DRAIN_UNITS = 6.0
    RATE_PER_UNIT = 4.0
    TIME_SCALE = 25.0

    def simulator_run(self):
        config = ExperimentConfig(
            name="parity-sim",
            system="gossip",
            nodes=self.NODES,
            seed=self.SEED,
            topics=self.TOPICS,
            topic_exponent=1.0,
            interest_model="zipf",
            max_topics_per_node=4,
            publication_rate=self.RATE_PER_UNIT,
            publisher_fraction=0.3,
            duration=self.DURATION_UNITS,
            drain_time=self.DRAIN_UNITS,
            fanout=4,
            gossip_size=8,
            membership="cyclon",
        )
        return config, run_experiment(config)

    def runtime_run(self, config: ExperimentConfig):
        async def scenario():
            host = NodeHost(
                MemoryTransport(),
                seed=self.SEED,
                time_scale=self.TIME_SCALE,
                node_kwargs={
                    "fanout": config.fanout,
                    "gossip_size": config.gossip_size,
                    "round_period": config.round_period,
                },
            )
            host.add_nodes(list(config.node_ids()))
            popularity = TopicPopularity.zipf(self.TOPICS, exponent=1.0)
            interest_model = ZipfInterest(popularity, min_topics=1, max_topics=4)
            # Same stream name and master seed as the simulator runner, so
            # both runs assign identical filters to identical nodes.
            interest = interest_model.assign(
                list(config.node_ids()), RngRegistry(self.SEED).stream("experiment-interest")
            )
            interest.apply(host)
            generator = LoadGenerator(
                host,
                rate=self.RATE_PER_UNIT * self.TIME_SCALE,
                popularity=popularity,
                publishers=list(config.publisher_ids()),
                rng_name="workload-publications",  # the simulator's stream
            )
            await host.start()
            await generator.run(self.DURATION_UNITS / self.TIME_SCALE)
            await host.run_for(self.DRAIN_UNITS / self.TIME_SCALE)
            await host.stop()
            return host, generator

        return run_async(scenario())

    def test_fairness_parity_within_documented_tolerance(self):
        config, sim_result = self.simulator_run()
        host, generator = self.runtime_run(config)

        runtime_summary = host.fairness_summary(system_name="parity-rt")
        sim_report = sim_result.fairness.report
        rt_report = runtime_summary.report

        # Both runs published (almost exactly) the same workload.
        assert generator.schedule.count() == pytest.approx(
            len(sim_result.published_events), abs=3
        )
        # Both disseminated it: a broken runtime would show here first.
        assert sim_result.delivery_ratio > 0.7
        rt_deliveries = host.delivery_log.total_deliveries()
        assert rt_deliveries > 0.5 * sim_result.total_deliveries

        # The headline fairness number agrees within the documented bound,
        # and so does the wasted-contribution share (both runs have the same
        # interested population, so contribution wasted on uninterested
        # nodes must stay comparably small).
        assert abs(rt_report.ratio_jain - sim_report.ratio_jain) <= PARITY_JAIN_TOLERANCE
        assert abs(rt_report.wasted_share - sim_report.wasted_share) <= 0.2
