#!/usr/bin/env python
"""Quickstart: publish/subscribe over gossip in a few lines.

Builds a 64-node gossip system, subscribes half the nodes to a topic,
publishes a handful of events, and prints who delivered what plus the
fairness picture — first with the classic Figure 4 protocol, then with the
fairness-adaptive protocol, so the difference is visible immediately.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import quick_system
from repro.analysis import summarise_fairness
from repro.core import EXPRESSIVE_POLICY
from repro.pubsub import TopicFilter


def run(fair: bool) -> None:
    label = "fair gossip" if fair else "classic push gossip (Figure 4)"
    print(f"\n=== {label} ===")
    system = quick_system(nodes=64, seed=7, fair=fair)

    # Half the nodes are interested in "news"; the rest subscribe to nothing.
    for index in range(0, 64, 2):
        system.subscribe(f"node-{index}", TopicFilter("news"))

    # A few publishers inject events over 30 simulated rounds.
    for round_index in range(30):
        system.publish(f"node-{round_index % 4}", topic="news", sequence=round_index)
        system.run(until=system.simulator.now + 1.0)
    system.run(until=system.simulator.now + 10.0)

    interested = 32
    published = 30
    delivered = system.delivery_log.total_deliveries()
    print(f"delivered {delivered} of {interested * published} interested (node, event) pairs")

    summary = summarise_fairness(system.ledger, EXPRESSIVE_POLICY, system_name=label)
    report = summary.report
    print(
        f"fairness: ratio Jain {report.ratio_jain:.3f}, "
        f"wasted contribution share {report.wasted_share:.3f}, "
        f"load-balance (contribution Jain) {report.contribution_jain:.3f}"
    )
    print("heaviest contributors:")
    for row in summary.top_contributors(3):
        print(
            f"  {row.node_id}: contribution {row.contribution:.0f}, "
            f"benefit {row.benefit:.0f} (delivered {row.delivered})"
        )


def main() -> None:
    run(fair=False)
    run(fair=True)
    print(
        "\nThe classic protocol spreads work evenly regardless of interest, so the"
        "\nuninterested half of the system does ~half the work for zero benefit."
        "\nThe fair protocol shifts work onto the nodes that actually benefit while"
        "\nstill delivering every event."
    )


if __name__ == "__main__":
    main()
