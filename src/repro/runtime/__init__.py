"""Live execution runtime: the protocol stack on real time and real transports.

The simulator expresses every protocol against three narrow interfaces — a
clock (``now``), a scheduler (``schedule*``), and a network (``register`` /
``send``).  This package provides live implementations of all three so the
*same* protocol classes (push and push-pull gossip, CYCLON/lpbcast
membership, the fair-gossip controllers, the accounting ledger) run outside
the simulator without modification:

* :mod:`~repro.runtime.clock` — :class:`WallClock`, real time in protocol
  time units (with a configurable time scale);
* :mod:`~repro.runtime.scheduler` — :class:`AsyncScheduler`, the simulator's
  scheduling surface on an asyncio loop;
* :mod:`~repro.runtime.wire` — length-prefixed JSON codec for every payload
  that travels (events, digests, shuffles, subscription exchanges);
* :mod:`~repro.runtime.transport` — in-process, UDP, and TCP frame carriers;
* :mod:`~repro.runtime.network` — the simulator network's interface over a
  transport;
* :mod:`~repro.runtime.host` — :class:`NodeHost`, a live cluster with the
  ``publish``/``subscribe`` API of §2;
* :mod:`~repro.runtime.loadgen` — :class:`LoadGenerator`, workload-model
  driven publications at a target events/sec with latency capture;
* :mod:`~repro.runtime.cli` — the ``python -m repro serve`` / ``loadgen``
  subcommands.
"""

from .clock import WallClock
from .host import NodeHost
from .loadgen import LoadGenerator, LoadReport
from .network import RuntimeNetwork
from .scheduler import AsyncPeriodicTimer, AsyncScheduler, AsyncScheduledEvent
from .transport import (
    MemoryHub,
    MemoryTransport,
    TcpTransport,
    Transport,
    TransportError,
    UdpTransport,
)
from .wire import (
    MAX_FRAME_SIZE,
    PUBLISH_KIND,
    SUBSCRIBE_KIND,
    UNSUBSCRIBE_KIND,
    WIRE_VERSION,
    FrameDecoder,
    WireError,
    decode_message,
    encode_message,
    frame,
)

__all__ = [
    "WallClock",
    "AsyncScheduler",
    "AsyncScheduledEvent",
    "AsyncPeriodicTimer",
    "RuntimeNetwork",
    "Transport",
    "TransportError",
    "MemoryHub",
    "MemoryTransport",
    "UdpTransport",
    "TcpTransport",
    "NodeHost",
    "LoadGenerator",
    "LoadReport",
    "WIRE_VERSION",
    "MAX_FRAME_SIZE",
    "PUBLISH_KIND",
    "SUBSCRIBE_KIND",
    "UNSUBSCRIBE_KIND",
    "WireError",
    "FrameDecoder",
    "encode_message",
    "decode_message",
    "frame",
]
