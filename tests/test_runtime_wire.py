"""Tests for the runtime wire codec and framing."""

from __future__ import annotations

import json

import pytest

from repro.gossip.push import GossipMessage
from repro.gossip.pushpull import DigestMessage, PullRequest
from repro.membership.cyclon import ShufflePayload
from repro.membership.lpbcast import MembershipDigest
from repro.membership.views import NodeDescriptor
from repro.pubsub.events import Event
from repro.pubsub.filters import AttributeCondition, ContentFilter, TopicFilter
from repro.runtime.wire import (
    MAX_FRAME_SIZE,
    PUBLISH_KIND,
    SUBSCRIBE_KIND,
    UNSUBSCRIBE_KIND,
    WIRE_VERSION,
    FrameDecoder,
    WireError,
    decode_message,
    encode_message,
    frame,
)
from repro.sim.network import Message


def roundtrip(message: Message) -> Message:
    return decode_message(encode_message(message))


def make_event(index: int = 0) -> Event:
    return Event(
        event_id=f"pub#{index}",
        publisher="pub",
        attributes={"topic": "news", "level": index},
        published_at=1.5,
        size=2,
    )


class TestPayloadCodecs:
    def test_gossip_message_roundtrip_with_digest(self):
        digest = MembershipDigest(
            descriptors=(
                NodeDescriptor("n1", age=3, topics=("news", "sport")),
                NodeDescriptor("n2", age=0),
            )
        )
        payload = GossipMessage(
            events=(make_event(0), make_event(1)),
            sender_benefit_rate=0.75,
            membership_digest=digest,
        )
        message = Message(
            sender="a", recipient="b", kind="gossip.push", payload=payload, size=4, sent_at=2.5
        )
        decoded = roundtrip(message)
        assert decoded.sender == "a" and decoded.recipient == "b"
        assert decoded.kind == "gossip.push"
        assert decoded.size == 4 and decoded.sent_at == 2.5
        assert decoded.payload.sender_benefit_rate == 0.75
        assert [event.to_dict() for event in decoded.payload.events] == [
            event.to_dict() for event in payload.events
        ]
        assert decoded.payload.membership_digest == digest

    def test_gossip_message_roundtrip_without_digest(self):
        payload = GossipMessage(events=(make_event(),))
        decoded = roundtrip(Message("a", "b", "gossip.pull-reply", payload=payload))
        assert decoded.payload.membership_digest is None
        assert decoded.payload.events[0] == make_event()

    def test_pushpull_digest_and_pull_request_roundtrip(self):
        digest = DigestMessage(event_ids=("e1", "e2"), sender_benefit_rate=1.25)
        decoded = roundtrip(Message("a", "b", "gossip.digest", payload=digest))
        assert decoded.payload == digest
        request = PullRequest(event_ids=("e2",))
        decoded = roundtrip(Message("b", "a", "gossip.pull-request", payload=request))
        assert decoded.payload == request

    def test_cyclon_shuffle_roundtrip(self):
        payload = ShufflePayload(
            descriptors=(NodeDescriptor("n3", age=1), NodeDescriptor("n4", age=7))
        )
        for kind in ("membership.cyclon.request", "membership.cyclon.reply"):
            decoded = roundtrip(Message("a", "b", kind, payload=payload))
            assert decoded.payload == payload

    def test_lpbcast_digest_roundtrip(self):
        payload = MembershipDigest(descriptors=(NodeDescriptor("n5", age=2),))
        decoded = roundtrip(Message("a", "b", "membership.lpbcast.digest", payload=payload))
        assert decoded.payload == payload

    def test_control_publish_roundtrip(self):
        event = make_event(9)
        decoded = roundtrip(Message("client", "node-0", PUBLISH_KIND, payload=event))
        assert decoded.payload == event
        assert decoded.payload.attributes == event.attributes

    def test_subscription_exchange_roundtrip(self):
        topic_filter = TopicFilter("news")
        decoded = roundtrip(Message("client", "node-0", SUBSCRIBE_KIND, payload=topic_filter))
        assert decoded.payload == topic_filter
        content_filter = ContentFilter(
            conditions=(
                AttributeCondition("category", "==", "metals"),
                AttributeCondition("level", ">=", 6),
            ),
            name="metals-high",
        )
        decoded = roundtrip(Message("client", "node-0", UNSUBSCRIBE_KIND, payload=content_filter))
        assert decoded.payload == content_filter

    def test_plain_payload_passthrough(self):
        decoded = roundtrip(Message("a", "b", "custom.kind", payload={"x": [1, 2]}))
        assert decoded.payload == {"x": [1, 2]}
        decoded = roundtrip(Message("a", "b", "custom.none"))
        assert decoded.payload is None

    def test_codec_kind_requires_payload(self):
        with pytest.raises(WireError):
            encode_message(Message("a", "b", "gossip.push", payload=None))

    def test_non_serializable_payload_raises(self):
        with pytest.raises(WireError):
            encode_message(Message("a", "b", "custom.kind", payload=object()))


class TestEnvelope:
    def test_wire_version_mismatch_rejected(self):
        body = encode_message(Message("a", "b", "custom.kind", payload=1))
        tampered = body.replace(
            f'"v":{WIRE_VERSION}'.encode(), f'"v":{WIRE_VERSION + 1}'.encode()
        )
        with pytest.raises(WireError):
            decode_message(tampered)

    def test_malformed_frame_rejected(self):
        with pytest.raises(WireError):
            decode_message(b"\xff\xfenot json")
        with pytest.raises(WireError):
            decode_message(b'"a bare string"')

    def test_missing_fields_and_misshaped_payloads_raise_wire_error(self):
        # A hostile or buggy peer must never escalate past WireError: the
        # receiving network counts WireError as a dropped frame, anything
        # else would tear down the serving connection.
        def envelope(**overrides):
            body = {"v": WIRE_VERSION, "sender": "a", "recipient": "b", "kind": "custom.kind"}
            body.update(overrides)
            return json.dumps(body).encode("utf-8")

        cases = [
            json.dumps({"v": WIRE_VERSION, "payload": None}).encode(),  # no kind/sender
            envelope(kind="gossip.push", payload=None),  # codec kind, null payload
            envelope(kind="gossip.push", payload={"benefit": 1.0}),  # missing events
            envelope(  # descriptor with missing fields
                kind="membership.cyclon.request", payload={"descriptors": [["only-id"]]}
            ),
            envelope(kind="runtime.subscribe", payload={"kind": "no-such-filter"}),
            envelope(size="not-a-number"),
        ]
        for body in cases:
            with pytest.raises(WireError):
                decode_message(body)


class TestFraming:
    def test_frame_prefixes_length(self):
        body = b"hello"
        framed = frame(body)
        assert framed == b"\x00\x00\x00\x05hello"

    def test_decoder_reassembles_chunked_stream(self):
        bodies = [b"a", b"bb" * 100, b"", b"ccc"]
        stream = b"".join(frame(body) for body in bodies)
        decoder = FrameDecoder()
        received = []
        # Feed one byte at a time: worst-case fragmentation.
        for offset in range(len(stream)):
            received.extend(decoder.feed(stream[offset : offset + 1]))
        assert received == bodies
        assert decoder.pending_bytes == 0

    def test_decoder_handles_multiple_frames_per_chunk(self):
        bodies = [b"one", b"two", b"three"]
        decoder = FrameDecoder()
        assert decoder.feed(b"".join(frame(body) for body in bodies)) == bodies

    def test_oversize_frame_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            decoder.feed((MAX_FRAME_SIZE + 1).to_bytes(4, "big"))
        with pytest.raises(WireError):
            frame(b"x" * (MAX_FRAME_SIZE + 1))
