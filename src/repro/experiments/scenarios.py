"""Scenario builders: turn an :class:`ExperimentConfig` into live objects.

Construction is registry-driven: every builder here decomposes the flat
config into a :class:`~repro.registry.specs.StackSpec` and delegates to the
component registries (:mod:`repro.registry.builtins`), so new systems,
membership views, interest models, and policies plug in by *registering*
rather than by editing dispatch code.  The ``build_*`` functions keep their
historical flat-config signatures because the runner, the benchmarks, and a
few examples call them directly (for example the selfish-node experiment,
which swaps node classes for part of the population).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import FairnessPolicy
from ..registry import (
    SYSTEMS,
    BuildContext,
    StackSpec,
    build_interest_model,
    build_popularity as _build_popularity_for_spec,
    build_stack,
    resolve_policy_kind,
)
from ..registry.builtins import MEMBERSHIP
from ..sim import BernoulliLoss, Network, NoLoss, Simulator
from ..workloads import TopicPopularity
from .config import ExperimentConfig

__all__ = [
    "build_simulation",
    "build_membership_provider",
    "build_popularity",
    "build_interest",
    "build_system",
    "resolve_policy",
    "SYSTEM_NAMES",
    "system_names",
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
]

def system_names() -> Tuple[str, ...]:
    """Names accepted by :func:`build_system` (the system registry's keys)."""
    return tuple(SYSTEMS.names())


#: Snapshot of the built-in system names (kept for back-compat; late
#: registrations appear in :func:`system_names` but not here).
SYSTEM_NAMES = system_names()


def build_simulation(config: ExperimentConfig) -> Tuple[Simulator, Network]:
    """Create the simulator and network described by the config."""
    simulator = Simulator(seed=config.seed)
    loss = BernoulliLoss(config.loss_rate) if config.loss_rate > 0 else NoLoss()
    network = Network(simulator, loss_model=loss)
    return simulator, network


def build_membership_provider(config: ExperimentConfig, network: Network):
    """Pick the membership provider named in the config (registry lookup)."""
    spec = StackSpec.from_config(config)
    context = BuildContext(spec=spec, scheduler=None, network=network, node_ids=spec.node_ids())
    return MEMBERSHIP.get(spec.membership.kind).factory(context)


def build_popularity(config: ExperimentConfig) -> TopicPopularity:
    """Topic popularity for the config (hierarchical for the dam system)."""
    return _build_popularity_for_spec(StackSpec.from_config(config))


def build_interest(config: ExperimentConfig, popularity: TopicPopularity):
    """Interest model for the config (registry lookup)."""
    return build_interest_model(StackSpec.from_config(config), popularity)


def resolve_policy(config: ExperimentConfig) -> FairnessPolicy:
    """The fairness policy named in the config (registry lookup)."""
    return resolve_policy_kind(config.fairness_policy)


def build_system(
    config: ExperimentConfig,
    simulator: Simulator,
    network: Network,
    popularity: Optional[TopicPopularity] = None,
    telemetry=None,
):
    """Build the dissemination system named by ``config.system``.

    Thin flat-config wrapper over :func:`repro.registry.builtins.build_stack`;
    unknown system names raise a :class:`~repro.registry.base.RegistryError`
    (a ``ValueError``) listing the registered systems.  ``telemetry``
    threads the runner's shared store into node-level instruments.
    """
    return build_stack(
        StackSpec.from_config(config),
        simulator,
        network,
        popularity=popularity,
        telemetry=telemetry,
    )


# ---------------------------------------------------------------------------
# Named-scenario registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A named, documented experiment configuration.

    The registry gives the CLI (``python -m repro list-scenarios``) and the
    benchmark suite a shared vocabulary of starting points; every scenario is
    just an :class:`ExperimentConfig` plus a description of what it models.
    """

    name: str
    description: str
    config: ExperimentConfig

    @property
    def spec(self) -> StackSpec:
        """The scenario's config decomposed into nested component specs."""
        return StackSpec.from_config(self.config)


_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(
    name: str, config: ExperimentConfig, description: str = "", replace: bool = False
) -> Scenario:
    """Add a scenario to the registry (``replace`` guards against typos)."""
    if name in _SCENARIOS and not replace:
        raise ValueError(f"scenario {name!r} is already registered")
    scenario = Scenario(name=name, description=description, config=config)
    _SCENARIOS[name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name; raises with the known names on a miss."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known scenarios: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_SCENARIOS)


def iter_scenarios() -> List[Scenario]:
    """Registered scenarios, in registration order."""
    return list(_SCENARIOS.values())


#: Baseline shared by most benchmarks: medium-sized system, Zipf topic
#: popularity, heterogeneous (Zipf) interest, moderate traffic.
_BASE = ExperimentConfig(
    name="base",
    nodes=96,
    topics=16,
    topic_exponent=1.0,
    interest_model="zipf",
    max_topics_per_node=6,
    publication_rate=4.0,
    duration=25.0,
    drain_time=15.0,
    fanout=4,
    gossip_size=8,
    seed=2007,
)

register_scenario(
    "base",
    _BASE,
    "Benchmark baseline: 96 nodes, 16 Zipf topics, skewed interest, moderate traffic",
)
register_scenario(
    "smoke",
    ExperimentConfig(
        name="smoke",
        nodes=24,
        topics=6,
        interest_model="zipf",
        max_topics_per_node=4,
        publication_rate=2.0,
        duration=6.0,
        drain_time=5.0,
        fanout=3,
        gossip_size=8,
        seed=7,
    ),
    "Tiny fast run (24 nodes, ~1s) for CLI smoke tests and quick sanity checks",
)
register_scenario(
    "fig1",
    _BASE.with_overrides(name="fig1", duration=20.0, drain_time=12.0),
    "Figure 1 workload: skewed interest for the cross-system fairness comparison",
)
register_scenario(
    "fig2-topic",
    _BASE.with_overrides(
        name="fig2",
        fairness_policy="topic",
        interest_model="zipf",
        max_topics_per_node=8,
        nodes=80,
        duration=20.0,
        drain_time=12.0,
    ),
    "Figure 2 workload: topic-based policy, subscription counts spread 1..8",
)
register_scenario(
    "fig3-expressive",
    _BASE.with_overrides(
        name="fig3",
        system="fair-gossip",
        interest_model="content",
        topics_per_node=2,
        fairness_policy="expressive",
        nodes=80,
        duration=20.0,
        drain_time=12.0,
    ),
    "Figure 3 workload: content-based filters, fanout/payload fairness levers",
)
register_scenario(
    "fig4-push",
    _BASE.with_overrides(
        name="fig4",
        system="gossip",
        interest_model="uniform",
        topics_per_node=2,
        topics=4,
        nodes=128,
        duration=15.0,
        drain_time=15.0,
        publication_rate=2.0,
    ),
    "Figure 4 workload: plain push gossip for fanout/loss reliability sweeps",
)
register_scenario(
    "churn",
    ExperimentConfig(
        name="churn",
        system="fair-gossip",
        nodes=64,
        topics=8,
        duration=20.0,
        drain_time=15.0,
        publication_rate=2.0,
        loss_rate=0.05,
        churn_down_probability=0.03,
        churn_up_probability=0.5,
        fanout=4,
        seed=13,
    ),
    "Stress run: fair gossip under 5% loss plus node churn (robustness check)",
)
register_scenario(
    "smoke-churn",
    ExperimentConfig(
        name="smoke-churn",
        nodes=24,
        topics=6,
        interest_model="zipf",
        max_topics_per_node=4,
        publication_rate=2.0,
        duration=6.0,
        drain_time=5.0,
        fanout=3,
        gossip_size=8,
        seed=7,
        churn_down_probability=0.05,
        churn_up_probability=0.5,
    ),
    "Smoke run under continuous node churn (fault-injection fast path)",
)
register_scenario(
    "smoke-partition",
    ExperimentConfig(
        name="smoke-partition",
        nodes=24,
        topics=6,
        interest_model="zipf",
        max_topics_per_node=4,
        publication_rate=2.0,
        duration=6.0,
        drain_time=6.0,
        fanout=3,
        gossip_size=8,
        seed=7,
        fault_partition_at=2.0,
        fault_partition_heal_after=3.0,
        fault_partition_fraction=0.5,
    ),
    "Smoke run with a transient half/half partition healing mid-run",
)
register_scenario(
    "smoke-domains",
    ExperimentConfig(
        name="smoke-domains",
        nodes=24,
        topics=6,
        interest_model="zipf",
        max_topics_per_node=4,
        publication_rate=2.0,
        duration=6.0,
        drain_time=6.0,
        fanout=3,
        gossip_size=8,
        seed=7,
        topology_domains=4,
        topology_bridges_per_domain=2,
        topology_cross_latency=0.5,
        topology_cross_loss=0.02,
        fault_plan=(
            (
                ("kind", "partition"),
                ("at", 2.0),
                ("heal_after", 2.0),
                ("domains", ("d1",)),
            ),
        ),
    ),
    "Smoke run on a 4-domain topology with bridge relays, a geo latency/loss "
    "penalty on cross-domain links, and a transient partition isolating "
    "domain d1 that heals mid-run",
)
register_scenario(
    "smoke-lazy",
    ExperimentConfig(
        name="smoke-lazy",
        system="lazy-push",
        nodes=24,
        topics=6,
        interest_model="zipf",
        max_topics_per_node=4,
        publication_rate=2.0,
        duration=6.0,
        drain_time=8.0,
        fanout=3,
        gossip_size=8,
        seed=7,
        loss_rate=0.15,
    ),
    "Smoke run of two-phase lazy-push under 15% loss (pull recovery fast path); "
    "the longer drain covers the slow digest cadence's convergence",
)
register_scenario(
    "subscription-churn",
    ExperimentConfig(
        name="sub-churn",
        system="dks",
        nodes=48,
        topics=8,
        duration=15.0,
        drain_time=10.0,
        publication_rate=1.0,
        subscription_churn_rate=4.0,
        seed=17,
    ),
    "Subscription maintenance workload on the DKS grouping (who pays for churn)",
)
