"""Shared helpers for the benchmark suite.

Every benchmark file regenerates one experiment from the DESIGN.md index
(one per paper figure or §5 challenge).  The pattern is always the same:
build the experiment configs, run them once inside ``benchmark.pedantic``
(the simulation itself is the thing being timed; statistical repetition is
pointless because the runs are deterministic), print the table the paper
would show, and attach the headline numbers to ``benchmark.extra_info`` so
``--benchmark-json`` captures them machine-readably.

Multi-config benchmarks go through the shared
:class:`~repro.experiments.executor.ParallelSweepExecutor` (``run_configs``
/ ``run_sweep`` / ``run_compare`` below), so the whole suite picks up
multiprocess fan-out and result caching from two environment variables:

* ``REPRO_BENCH_WORKERS`` — worker processes per benchmark (default 1).
  Results are bit-identical at any worker count.
* ``REPRO_BENCH_CACHE_DIR`` — enable the on-disk result cache at this path.
  Off by default: cache hits would make pytest-benchmark's timings
  meaningless, so opt in only when iterating on table/assertion code.

Benchmarks use smaller populations than a paper deployment would (hundreds
of nodes, not tens of thousands) so the whole suite finishes in minutes;
the *shape* of the comparisons is what is being reproduced, as explained in
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.analysis.tables import Table  # noqa: E402
from repro.experiments import (  # noqa: E402
    ExperimentConfig,
    ExperimentResult,
    ParallelSweepExecutor,
    ResultCache,
    get_scenario,
)

__all__ = [
    "BASE_CONFIG",
    "EXECUTOR",
    "spec_overrides",
    "run_configs",
    "run_sweep",
    "run_compare",
    "print_results",
    "attach_extra_info",
    "Table",
    "ExperimentConfig",
]

#: Baseline scenario shared by most benchmarks (the registered "base"
#: scenario): medium-sized system, Zipf topic popularity, heterogeneous
#: (Zipf) interest, moderate traffic.
BASE_CONFIG = get_scenario("base").config

_cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR", "")

#: Shared executor: every multi-config benchmark funnels through this, so
#: worker count and caching are controlled in one place.
EXECUTOR = ParallelSweepExecutor(
    workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
    cache=ResultCache(_cache_dir) if _cache_dir else None,
)


def spec_overrides(base: ExperimentConfig, overrides: Dict[str, object]) -> ExperimentConfig:
    """Apply dotted spec-path overrides to a flat config.

    Benchmark variants can use the same vocabulary as the CLI's ``--set``
    (``{"system.fanout": 5, "membership.kind": "lpbcast"}``); the mapping
    round-trips through :class:`repro.registry.StackSpec`, which never
    perturbs the cache key of an untouched field.
    """
    return base.spec().with_values(overrides).to_config()


def run_configs(
    configs: Sequence[ExperimentConfig], keep_system: bool = False
) -> List[ExperimentResult]:
    """Run a list of configs through the shared executor, preserving order."""
    return EXECUTOR.run_many(configs, keep_system=keep_system)


def run_sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence,
    rename: Optional[Callable[[object], str]] = None,
    keep_system: bool = False,
) -> List[ExperimentResult]:
    """Executor-backed replacement for :func:`repro.experiments.sweep`."""
    return EXECUTOR.sweep(base, parameter, values, rename=rename, keep_system=keep_system)


def run_compare(
    base: ExperimentConfig, systems: Sequence[str], keep_system: bool = False
) -> List[ExperimentResult]:
    """Executor-backed replacement for :func:`repro.experiments.compare`."""
    return EXECUTOR.compare(base, systems, keep_system=keep_system)


def print_results(title: str, results: Sequence[ExperimentResult], extra_columns: Dict[str, Dict[str, object]] = None) -> None:
    """Print the standard result table (plus optional per-run extra columns)."""
    extra_columns = extra_columns or {}
    extra_names = sorted({key for values in extra_columns.values() for key in values})
    table = Table(
        ["name", "delivery_ratio", "mean_rounds", "ratio_jain", "ratio_spread", "wasted_share",
         "contribution_jain", "total_messages"] + extra_names,
        title=title,
    )
    for result in results:
        report = result.fairness.report
        row = {
            "name": result.config.name,
            "delivery_ratio": result.reliability.delivery_ratio,
            "mean_rounds": result.reliability.mean_rounds,
            "ratio_jain": report.ratio_jain,
            "ratio_spread": report.ratio_spread,
            "wasted_share": report.wasted_share,
            "contribution_jain": report.contribution_jain,
            "total_messages": result.total_messages,
        }
        row.update(extra_columns.get(result.config.name, {}))
        table.add_row(**row)
    print()
    print(table.render())


def attach_extra_info(benchmark, results: Sequence[ExperimentResult]) -> None:
    """Store the headline numbers of every run in the benchmark record."""
    benchmark.extra_info["rows"] = [
        {
            "name": result.config.name,
            "system": result.config.system,
            "delivery_ratio": round(result.reliability.delivery_ratio, 4),
            "ratio_jain": round(result.fairness.report.ratio_jain, 4),
            "wasted_share": round(result.fairness.report.wasted_share, 4),
            "contribution_jain": round(result.fairness.report.contribution_jain, 4),
            "total_messages": result.total_messages,
        }
        for result in results
    ]
