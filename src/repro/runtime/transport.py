"""Transports: how encoded frames travel between live nodes.

A :class:`Transport` moves opaque frame bodies (produced by
:mod:`repro.runtime.wire`) towards the host responsible for the recipient
node.  Three implementations:

* :class:`MemoryTransport` — in-process delivery through the asyncio loop's
  callback queue.  Frames still pass through the full encode/decode cycle,
  so the memory path exercises exactly the bytes the socket paths put on a
  wire; a shared :class:`MemoryHub` routes between several hosts in one
  process.
* :class:`UdpTransport` — one datagram socket per host; each datagram is one
  frame body (the datagram boundary replaces the length prefix).
* :class:`TcpTransport` — one listening socket per host and cached outbound
  connections; frames are length-prefixed on the stream and reassembled with
  :class:`~repro.runtime.wire.FrameDecoder`.

Socket transports route by a *directory* mapping node ids to ``(host,
port)`` addresses.  Ids registered without an address resolve to the
transport's own bound address at start time, which is how a single-process
cluster gets a working directory before the OS assigns an ephemeral port.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Optional, Set, Tuple

from .wire import FrameDecoder, frame

__all__ = [
    "Receiver",
    "Transport",
    "TransportError",
    "MemoryHub",
    "MemoryTransport",
    "UdpTransport",
    "TcpTransport",
]

#: Callback invoked with every frame body arriving for this host's nodes.
Receiver = Callable[[bytes], None]

Address = Tuple[str, int]


class TransportError(RuntimeError):
    """Raised when a transport is driven in an inconsistent way."""


class Transport:
    """Base class: frame delivery plus local-node bookkeeping."""

    name = "abstract"

    def __init__(self) -> None:
        self._receiver: Optional[Receiver] = None
        self._local_ids: Set[str] = set()
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.send_failures = 0

    # --------------------------------------------------------------- wiring

    def set_receiver(self, receiver: Receiver) -> None:
        """Install the callback receiving every inbound frame body."""
        self._receiver = receiver

    def register_node(self, node_id: str) -> None:
        """Declare that ``node_id`` is hosted behind this transport."""
        self._local_ids.add(node_id)

    def is_local(self, node_id: str) -> bool:
        """Whether ``node_id`` is hosted behind this transport."""
        return node_id in self._local_ids

    def _dispatch(self, data: bytes) -> None:
        self.frames_received += 1
        if self._receiver is not None:
            self._receiver(data)

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bring the transport up (bind sockets, start serving)."""

    async def stop(self) -> None:
        """Tear the transport down and release its resources."""

    def send(self, recipient: str, data: bytes) -> bool:
        """Route one frame body towards ``recipient``; False if unroutable."""
        raise NotImplementedError


# ----------------------------------------------------------------- in-memory


class MemoryHub:
    """Routes frames between the :class:`MemoryTransport` of several hosts."""

    def __init__(self) -> None:
        self._routes: Dict[str, MemoryTransport] = {}

    def attach(self, node_id: str, transport: "MemoryTransport") -> None:
        self._routes[node_id] = transport

    def detach(self, transport: "MemoryTransport") -> None:
        self._routes = {
            node_id: entry for node_id, entry in self._routes.items() if entry is not transport
        }

    def route(self, node_id: str) -> Optional["MemoryTransport"]:
        return self._routes.get(node_id)


class MemoryTransport(Transport):
    """In-process transport: frames hop through the event-loop queue.

    Delivery is asynchronous (``loop.call_soon``) rather than a direct
    function call, so a gossip round's sends complete before any receiver
    runs — the same decoupling a kernel socket buffer provides.
    """

    name = "memory"

    def __init__(self, hub: Optional[MemoryHub] = None) -> None:
        super().__init__()
        self._hub = hub if hub is not None else MemoryHub()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped = False

    @property
    def hub(self) -> MemoryHub:
        """The routing hub (shared across hosts in multi-host setups)."""
        return self._hub

    def register_node(self, node_id: str) -> None:
        super().register_node(node_id)
        self._hub.attach(node_id, self)

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopped = False

    async def stop(self) -> None:
        self._stopped = True
        self._hub.detach(self)

    def send(self, recipient: str, data: bytes) -> bool:
        if self._stopped or self._loop is None:
            return False
        target = self._hub.route(recipient)
        if target is None or target._loop is None:
            self.send_failures += 1
            return False
        self.frames_sent += 1
        self.bytes_sent += len(data)
        target._loop.call_soon(target._dispatch, data)
        return True


# ----------------------------------------------------------------- UDP / TCP


class _DirectoryTransport(Transport):
    """Shared directory handling for the socket transports."""

    def __init__(
        self,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
        directory: Optional[Dict[str, Address]] = None,
    ) -> None:
        super().__init__()
        self._bind_host = bind_host
        self._bind_port = bind_port
        self._directory: Dict[str, Optional[Address]] = dict(directory or {})
        self._local_address: Optional[Address] = None

    @property
    def local_address(self) -> Address:
        """The bound ``(host, port)`` of this host (available after start)."""
        if self._local_address is None:
            raise TransportError("transport is not started")
        return self._local_address

    def register_node(self, node_id: str, address: Optional[Address] = None) -> None:
        """Add a node to the directory; ``None`` means "this host"."""
        super().register_node(node_id)
        self._directory[node_id] = address

    def add_remote(self, node_id: str, address: Address) -> None:
        """Add a directory entry for a node hosted elsewhere."""
        self._directory[node_id] = address

    def _resolve(self, node_id: str) -> Optional[Address]:
        if node_id not in self._directory:
            return None
        address = self._directory[node_id]
        return address if address is not None else self._local_address


#: Largest payload a UDP datagram can carry (IPv4 limit); frames above this
#: would be rejected by the kernel with EMSGSIZE, which asyncio swallows.
UDP_MAX_DATAGRAM = 65507


class UdpTransport(_DirectoryTransport):
    """Datagram transport: one frame body per datagram.

    Frames larger than :data:`UDP_MAX_DATAGRAM` are counted as send
    failures instead of being handed to the kernel (which would reject
    them invisibly); keep ``gossip_size`` × event size under the limit.
    """

    name = "udp"

    def __init__(
        self,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
        directory: Optional[Dict[str, Address]] = None,
    ) -> None:
        super().__init__(bind_host, bind_port, directory)
        self._endpoint: Optional[asyncio.DatagramTransport] = None

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        outer = self

        class _Protocol(asyncio.DatagramProtocol):
            def datagram_received(self, data: bytes, addr: Address) -> None:
                outer._dispatch(data)

            def error_received(self, exc: Exception) -> None:
                outer.send_failures += 1

        endpoint, _ = await loop.create_datagram_endpoint(
            _Protocol, local_addr=(self._bind_host, self._bind_port)
        )
        self._endpoint = endpoint
        self._local_address = endpoint.get_extra_info("sockname")[:2]

    async def stop(self) -> None:
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None

    def send(self, recipient: str, data: bytes) -> bool:
        if self._endpoint is None:
            return False
        address = self._resolve(recipient)
        if address is None or len(data) > UDP_MAX_DATAGRAM:
            self.send_failures += 1
            return False
        self.frames_sent += 1
        self.bytes_sent += len(data)
        self._endpoint.sendto(data, address)
        return True


class TcpTransport(_DirectoryTransport):
    """Stream transport: length-prefixed frames over cached connections."""

    name = "tcp"

    def __init__(
        self,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
        directory: Optional[Dict[str, Address]] = None,
    ) -> None:
        super().__init__(bind_host, bind_port, directory)
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Dict[Address, asyncio.StreamWriter] = {}
        self._queues: Dict[Address, asyncio.Queue] = {}
        self._tasks: Set[asyncio.Task] = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, host=self._bind_host, port=self._bind_port
        )
        self._local_address = self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    break
                for body in decoder.feed(chunk):
                    self._dispatch(body)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    def send(self, recipient: str, data: bytes) -> bool:
        if self._server is None:
            return False
        address = self._resolve(recipient)
        if address is None:
            self.send_failures += 1
            return False
        queue = self._queues.get(address)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[address] = queue
            task = asyncio.get_running_loop().create_task(self._drain(address, queue))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        self.frames_sent += 1
        self.bytes_sent += len(data)
        queue.put_nowait(frame(data))
        return True

    async def _drain(self, address: Address, queue: asyncio.Queue) -> None:
        """Per-peer sender: connect lazily, then forward queued frames."""
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while True:
                payload = await queue.get()
                if writer is None:
                    _, writer = await asyncio.open_connection(*address)
                    self._writers[address] = writer
                writer.write(payload)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            if writer is not None:
                writer.close()
            self._writers.pop(address, None)
            dead = self._queues.pop(address, None)
            # Frames queued behind the failed connection are lost; count
            # them so reliability analysis can see the transport's share.
            if dead is not None:
                self.send_failures += dead.qsize()
