PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-rt serve-smoke serve-scenario-smoke registry-smoke clean-cache

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Fast end-to-end check of the orchestration layer: parallel sweep, then the
# same sweep again served from the cache.
bench-smoke:
	$(PYTHON) -m repro sweep smoke --param fanout --values 2,4 --workers 2
	$(PYTHON) -m repro sweep smoke --param fanout --values 2,4 --workers 2

# Live-runtime throughput benchmark: writes BENCH_rt_throughput.json
# (events/sec + delivery latency p50/p99 on the memory transport).
bench-rt:
	$(PYTHON) -m pytest benchmarks/bench_rt_throughput.py -q -s

# Short live cluster run with the embedded load generator (memory transport).
serve-smoke:
	$(PYTHON) -m repro serve --nodes 25 --transport memory --duration 5

# Registry/StackSpec sanity: list, describe, then run a registered scenario
# live on the memory transport — once as gossip, once as a non-gossip baseline.
registry-smoke:
	$(PYTHON) -m repro list-scenarios
	$(PYTHON) -m repro describe smoke

serve-scenario-smoke: registry-smoke
	$(PYTHON) -m repro serve --scenario smoke --transport memory --duration 3 --rate 200 --drain 0.5
	$(PYTHON) -m repro serve --scenario smoke --set system.kind=brokers --transport memory --duration 2 --rate 100 --drain 0.5

clean-cache:
	rm -rf .repro-cache .ci-cache BENCH_rt_throughput.json
