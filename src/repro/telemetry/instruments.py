"""Typed metric instruments: Counter, Gauge, Histogram, Timer.

The histogram is the instrument that earns this module its existence.  The
pre-telemetry implementation appended every observation to a list and
re-sorted the full list on each ``summary()`` call — O(n) memory and
O(n log n) summaries, which is exactly what a "heavy traffic" runtime cannot
afford.  The streaming :class:`Histogram` here is bounded:

* exact ``count``/``sum``/``min``/``max`` are folded incrementally;
* sample *values* live briefly in a small raw buffer (``fold_threshold``
  entries) and are then folded into fixed geometric buckets (about 9% wide),
  so memory is O(buckets), independent of the observation count;
* quantiles are exact while everything still fits in the raw buffer (the
  common case for end-of-run summaries of small experiments, and the case
  the legacy tests pin), and bucket-interpolated afterwards.

The hot path — :meth:`Histogram.observe` — is one list append plus a length
check; the bucketing work happens once per ``fold_threshold`` observations
on an already-sorted buffer, so the amortised per-record cost stays at the
level of the old ``samples.append(float(value))`` (measured by
``benchmarks/bench_metrics_overhead.py``).
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "HistogramSummary",
    "Timer",
    "percentile",
]


@dataclass
class Counter:
    """Monotonically increasing counter."""

    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only move forward; use a Gauge for decreasing values")
        self.value += amount


@dataclass
class Gauge:
    """Latest-value metric."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class HistogramSummary:
    """Summary statistics of a histogram's observations."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float
    p50: float
    p95: float
    p99: float


def percentile(ordered: Sequence[float], quantile: float) -> float:
    """Linear-interpolation percentile of an already sorted sample list.

    ``quantile`` is validated first, so an out-of-range quantile raises even
    for an empty input; an empty input at a valid quantile returns 0.0, a
    single element is its own percentile at every quantile, and 0.0/1.0 map
    exactly onto the minimum/maximum.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be within [0, 1]")
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = quantile * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def _geometric_bounds(smallest: float, largest: float, factor: float) -> Tuple[float, ...]:
    bounds: List[float] = []
    bound = smallest
    while bound <= largest:
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: Shared bucket boundaries for positive magnitudes: geometric from 1e-9 to
#: beyond 1e12 with a 2**(1/8) growth factor (~9% relative bucket width).
#: One tuple for every histogram in the process keeps per-instrument memory
#: at the bucket-count dictionaries alone.
_BOUNDS: Tuple[float, ...] = _geometric_bounds(1e-9, 1e12, 2.0 ** 0.125)

#: How many raw samples accumulate before they are folded into buckets.
_FOLD_THRESHOLD = 2048


@dataclass(frozen=True)
class HistogramState:
    """Immutable, JSON-round-trippable state of a streaming histogram.

    ``positive``/``negative`` are ``(bucket_index, count)`` pairs over the
    shared geometric bounds (negative magnitudes are mirrored); ``zeros``
    counts exact zero observations.  The state is what snapshots carry, so
    it is bounded regardless of how many samples were observed.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    zeros: int = 0
    positive: Tuple[Tuple[int, int], ...] = ()
    negative: Tuple[Tuple[int, int], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "count": self.count,
            "total": self.total,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "zeros": self.zeros,
            "positive": [[index, count] for index, count in self.positive],
            "negative": [[index, count] for index, count in self.negative],
        }

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "HistogramState":
        """Rebuild a state from :meth:`to_dict` output."""
        return HistogramState(
            count=int(payload["count"]),
            total=float(payload["total"]),
            minimum=float(payload["minimum"]),
            maximum=float(payload["maximum"]),
            zeros=int(payload.get("zeros", 0)),
            positive=tuple((int(i), int(c)) for i, c in payload.get("positive", ())),
            negative=tuple((int(i), int(c)) for i, c in payload.get("negative", ())),
        )

    # ------------------------------------------------------------- summaries

    def _segments(self) -> List[Tuple[float, float, int]]:
        """Ordered ``(low, high, count)`` spans covering every observation."""
        segments: List[Tuple[float, float, int]] = []
        for index, count in sorted(self.negative, reverse=True):
            low, high = _bucket_span(index)
            segments.append((-high, -low, count))
        if self.zeros:
            segments.append((0.0, 0.0, self.zeros))
        for index, count in sorted(self.positive):
            low, high = _bucket_span(index)
            segments.append((low, high, count))
        return segments

    def quantile(self, quantile: float) -> float:
        """Bucket-interpolated quantile, clamped to the exact min/max."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        if quantile == 0.0:
            return self.minimum
        if quantile == 1.0:
            return self.maximum
        rank = quantile * (self.count - 1)
        cumulative = 0
        for low, high, count in self._segments():
            if rank < cumulative + count:
                fraction = (rank - cumulative + 0.5) / count
                value = low + (high - low) * fraction
                return min(self.maximum, max(self.minimum, value))
            cumulative += count
        return self.maximum

    def summary(self) -> HistogramSummary:
        """Summary statistics (quantiles and stddev are bucket estimates)."""
        if self.count == 0:
            return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        mean = self.total / self.count
        sumsq = 0.0
        for low, high, count in self._segments():
            midpoint = (low + high) / 2.0
            sumsq += midpoint * midpoint * count
        variance = max(sumsq / self.count - mean * mean, 0.0)
        return HistogramSummary(
            count=self.count,
            mean=mean,
            minimum=self.minimum,
            maximum=self.maximum,
            stddev=math.sqrt(variance),
            p50=self.quantile(0.50),
            p95=self.quantile(0.95),
            p99=self.quantile(0.99),
        )


def _bucket_span(index: int) -> Tuple[float, float]:
    """Magnitude interval covered by bucket ``index`` (see :func:`_bucket_index`)."""
    if index <= 0:
        return (0.0, _BOUNDS[0])
    if index >= len(_BOUNDS):
        return (_BOUNDS[-1], _BOUNDS[-1] * 2.0 ** 0.125)
    return (_BOUNDS[index - 1], _BOUNDS[index])


class Histogram:
    """Bounded streaming histogram with an O(1)-memory hot path.

    ``observe`` writes into a raw buffer (starting at 64 slots, doubling in
    place up to ``fold_threshold``) through a pre-bound closure — one
    C-level ``list`` store plus an integer bump, with the buffer-full branch
    handled by Python 3.11's zero-cost ``try``/``except`` — so the
    per-record cost matches a bare ``list.append``.  When the full-size
    buffer fills, the span is folded: sorted once (C timsort), exact
    count/sum/min/max updated, and values counted into the shared geometric
    buckets with one bisect per *bucket boundary*, not per sample
    (≈10 ns/record amortised).  ``summary()`` is exact while nothing has
    been folded (the legacy behaviour for small samples) and a
    bucket-interpolated estimate afterwards; ``state()`` merges any pending
    samples *non-destructively* into copied bucket counts, so snapshots are
    bounded yet never change what later summaries report.

    The closure-bound hot path means instances are not picklable; snapshots
    carry the picklable :class:`HistogramState` instead.
    """

    __slots__ = (
        "observe",
        "_peek",
        "_pending_len",
        "_reset_pending",
        "_fold_threshold",
        "_count",
        "_total",
        "_minimum",
        "_maximum",
        "_zeros",
        "_positive",
        "_negative",
    )

    def __init__(self, fold_threshold: int = _FOLD_THRESHOLD) -> None:
        if fold_threshold <= 0:
            raise ValueError("fold_threshold must be positive")
        self._fold_threshold = fold_threshold
        self._count = 0
        self._total = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf
        self._zeros = 0
        self._positive: Dict[int, int] = {}
        self._negative: Dict[int, int] = {}

        # The raw buffer starts small and doubles (in place, preserving the
        # closures' reference) up to the fold threshold, so a mostly-idle
        # tagged instrument costs tens of floats, not thousands.
        buffer: List[float] = [0.0] * min(64, fold_threshold)
        cursor = 0
        fold_span = self._fold_span

        def observe(value: float, _buffer=buffer) -> None:
            """Record one sample (amortised O(1) time, O(buckets) memory)."""
            nonlocal cursor
            try:
                _buffer[cursor] = value
            except IndexError:
                if len(_buffer) >= fold_threshold:
                    fold_span(_buffer, 0, len(_buffer))
                    _buffer[0] = value
                    cursor = 1
                    return
                _buffer.extend(
                    [0.0] * min(len(_buffer), fold_threshold - len(_buffer))
                )
                _buffer[cursor] = value
            cursor += 1

        self.observe = observe
        self._peek = lambda: buffer[:cursor]
        self._pending_len = lambda: cursor

        def reset_pending() -> None:
            nonlocal cursor
            cursor = 0

        self._reset_pending = reset_pending

    # -------------------------------------------------------------- folding

    def _fold_span(self, buffer: List[float], start: int, stop: int) -> None:
        """Fold ``buffer[start:stop]`` into the stats and bucket counts."""
        if stop <= start:
            return
        if start == 0 and stop == len(buffer):
            ordered = buffer  # full buffer: sort in place, no copy
            ordered.sort()
        else:
            ordered = sorted(buffer[start:stop])
        size = len(ordered)
        self._count += size
        self._total += sum(ordered)
        if ordered[0] < self._minimum:
            self._minimum = float(ordered[0])
        if ordered[size - 1] > self._maximum:
            self._maximum = float(ordered[size - 1])
        self._zeros += _count_span(ordered, size, self._positive, self._negative)

    # -------------------------------------------------------------- reading

    @property
    def count(self) -> int:
        """Number of observations recorded so far."""
        return self._count + self._pending_len()

    @property
    def pending_count(self) -> int:
        """Raw samples currently buffered (bounded by the fold threshold)."""
        return self._pending_len()

    @property
    def bucket_count(self) -> int:
        """Non-empty buckets currently held (the O(buckets) memory bound)."""
        return len(self._positive) + len(self._negative) + (1 if self._zeros else 0)

    def state(self) -> HistogramState:
        """The bounded, immutable state covering every observation.

        Non-destructive: pending raw samples are merged into a *copy* of
        the bucket counts, so taking a snapshot never degrades later
        ``summary()`` calls from exact to bucket-estimated — observability
        must not alter what a run reports.
        """
        pending = self._peek()
        if self._count == 0 and not pending:
            return HistogramState()
        count, total = self._count, self._total
        minimum, maximum = self._minimum, self._maximum
        zeros = self._zeros
        positive, negative = self._positive, self._negative
        if pending:
            ordered = sorted(pending)
            count += len(ordered)
            total += sum(ordered)
            minimum = min(minimum, ordered[0])
            maximum = max(maximum, ordered[-1])
            positive = dict(positive)
            negative = dict(negative)
            zeros += _count_span(ordered, len(ordered), positive, negative)
        return HistogramState(
            count=count,
            total=total,
            minimum=float(minimum),
            maximum=float(maximum),
            zeros=zeros,
            positive=tuple(sorted(positive.items())),
            negative=tuple(sorted(negative.items())),
        )

    def summary(self) -> HistogramSummary:
        """Summary statistics; exact until the first fold, estimated after."""
        if self._count == 0:
            # Nothing folded yet: compute the exact summary the legacy
            # list-backed histogram produced, including exact percentiles.
            ordered = sorted(self._peek())
            if not ordered:
                return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
            count = len(ordered)
            mean = sum(ordered) / count
            variance = sum((sample - mean) ** 2 for sample in ordered) / count
            return HistogramSummary(
                count=count,
                mean=mean,
                minimum=ordered[0],
                maximum=ordered[-1],
                stddev=math.sqrt(variance),
                p50=percentile(ordered, 0.50),
                p95=percentile(ordered, 0.95),
                p99=percentile(ordered, 0.99),
            )
        return self.state().summary()

    def reset(self) -> None:
        """Forget every observation."""
        self._reset_pending()
        self._count = 0
        self._total = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf
        self._zeros = 0
        self._positive = {}
        self._negative = {}


def _count_span(
    ordered: Sequence[float], size: int, positive: Dict[int, int], negative: Dict[int, int]
) -> int:
    """Count a sorted span into sign-separated buckets; returns the zero count."""
    first_nonneg = bisect_left(ordered, 0.0, 0, size)
    if first_nonneg > 0:
        # Negative values: mirror magnitudes into the negative buckets.
        magnitudes = sorted(-value for value in ordered[:first_nonneg])
        _count_sorted_magnitudes(magnitudes, 0, len(magnitudes), negative)
    first_pos = bisect_right(ordered, 0.0, first_nonneg, size)
    if first_pos < size:
        _count_sorted_magnitudes(ordered, first_pos, size, positive)
    return first_pos - first_nonneg


def _count_sorted_magnitudes(
    ordered: Sequence[float], position: int, stop: int, buckets: Dict[int, int]
) -> None:
    """Count sorted positive magnitudes in ``ordered[position:stop]`` into
    ``buckets``, one bisect per *boundary*.

    Walking bucket boundaries over the sorted span costs O(spanned buckets ×
    log n) instead of one bisect per sample, and taking ``position``/``stop``
    avoids slicing a copy of the fold buffer — together that keeps the
    amortised fold cost near the sort itself.
    """
    while position < stop:
        index = bisect_right(_BOUNDS, ordered[position])
        if index >= len(_BOUNDS):
            # Overflow bucket: everything from here up belongs to it.
            buckets[index] = buckets.get(index, 0) + (stop - position)
            return
        upper = _BOUNDS[index]
        next_position = bisect_right(ordered, upper, position, stop)
        if next_position == position:  # pragma: no cover - defensive
            next_position = position + 1
        buckets[index] = buckets.get(index, 0) + (next_position - position)
        position = next_position


class Timer:
    """Context manager recording elapsed seconds into a histogram.

    >>> telemetry = Telemetry()
    >>> with telemetry.timer("stage.duration", stage="build"):
    ...     do_work()

    The time source defaults to ``time.perf_counter``; the simulator-facing
    callers pass a virtual-clock source so timed spans stay deterministic.
    """

    __slots__ = ("_histogram", "_time_source", "_started")

    def __init__(
        self,
        histogram: Histogram,
        time_source: Optional[Callable[[], float]] = None,
    ) -> None:
        self._histogram = histogram
        self._time_source = time_source if time_source is not None else time.perf_counter
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = self._time_source()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started is not None:
            self._histogram.observe(self._time_source() - self._started)
            self._started = None

    def observe(self, elapsed: float) -> None:
        """Record an externally measured duration."""
        self._histogram.observe(elapsed)
