"""Metrics hot-path overhead: legacy list-backed metrics vs telemetry.

Seeds the perf trajectory for the telemetry redesign with an
apples-to-apples accounting of the two histogram designs:

* **legacy** (pre-telemetry ``sim.metrics``): ``observe`` appends every
  sample to a list — the cheapest possible record — but the design hoards
  O(n) memory and defers its real work to ``summary()``, which sorts the
  full list (O(n log n)) *every time it is called*;
* **streaming** (``repro.telemetry``): ``observe`` writes into a bounded
  preallocated buffer and amortises a sort-and-bucket fold every
  ``fold_threshold`` records, so memory is O(buckets) and ``summary()`` is
  O(buckets) no matter how many records were observed.

The headline metric is therefore **ns per record all-in** — record N
samples and produce one summary, divided by N — because a histogram nobody
summarises is dead weight, and any periodic consumer (the snapshot
scheduler, a live report loop) pays the legacy sort repeatedly.  The raw
``observe``-only figures are reported alongside so the hot-path cost is
visible in isolation, as are the old facade path (``MetricsRegistry``
keyed by ``(name, node)``) vs the new pre-bound instrument path.

Writes ``BENCH_metrics_overhead.json`` (override with
``REPRO_BENCH_METRICS_JSON``) and asserts the acceptance criteria:
streaming ``observe`` is O(1) memory, and per record (all-in) it is no
slower than the list-append baseline.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Callable, Dict, List

from repro.telemetry import Histogram, Telemetry, percentile

ARTIFACT = os.environ.get("REPRO_BENCH_METRICS_JSON", "BENCH_metrics_overhead.json")
RECORDS = int(os.environ.get("REPRO_BENCH_METRICS_RECORDS", "1000000"))


class LegacyHistogram:
    """The pre-telemetry histogram: unbounded sample list, sort-on-summary."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self.samples)
        count = len(ordered)
        mean = sum(ordered) / count
        variance = sum((sample - mean) ** 2 for sample in ordered) / count
        return {
            "count": count,
            "mean": mean,
            "stddev": math.sqrt(variance),
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
        }


class LegacyRegistry:
    """The pre-telemetry facade hot path: a dict keyed by ``(name, node)``."""

    def __init__(self) -> None:
        self._histograms: Dict[tuple, LegacyHistogram] = {}
        self._counters: Dict[tuple, List[float]] = {}

    def observe(self, name: str, value: float, node: str = "") -> None:
        key = (name, node)
        metric = self._histograms.get(key)
        if metric is None:
            metric = LegacyHistogram()
            self._histograms[key] = metric
        metric.observe(value)


def _values(count: int) -> List[float]:
    # Latency-shaped positives, deterministic; a 10k block re-fed in a loop
    # so the value stream itself stays out of cache-size effects.
    return [0.001 + (index % 9973) * 0.0007 for index in range(count)]


def _time_per_record(record: Callable[[float], None], values: List[float], total: int) -> float:
    started = time.perf_counter()
    fed = 0
    block = len(values)
    while fed < total:
        for value in values:
            record(value)
        fed += block
    return (time.perf_counter() - started) / fed * 1e9


def run_benchmark() -> Dict[str, object]:
    values = _values(10_000)

    # -- raw observe hot paths ------------------------------------------------
    legacy_hist = LegacyHistogram()
    legacy_append_ns = _time_per_record(legacy_hist.observe, values, RECORDS)

    streaming_hist = Histogram()
    streaming_observe_ns = _time_per_record(streaming_hist.observe, values, RECORDS)

    legacy_registry = LegacyRegistry()
    legacy_facade_ns = _time_per_record(
        lambda value: legacy_registry.observe("latency", value, "node-001"), values, RECORDS
    )

    telemetry = Telemetry()
    bound_instrument = telemetry.histogram("latency", node="node-001")
    new_instrument_ns = _time_per_record(bound_instrument.observe, values, RECORDS)

    counter = telemetry.counter("events", node="node-001")
    counter_increment_ns = _time_per_record(lambda _v: counter.increment(), values, RECORDS)

    # -- all-in cost: record everything, then produce one summary -------------
    started = time.perf_counter()
    legacy_summary = legacy_hist.summary()
    legacy_summary_seconds = time.perf_counter() - started
    legacy_all_in_ns = legacy_append_ns + legacy_summary_seconds / RECORDS * 1e9

    started = time.perf_counter()
    streaming_summary = streaming_hist.summary()
    streaming_summary_seconds = time.perf_counter() - started
    streaming_all_in_ns = streaming_observe_ns + streaming_summary_seconds / RECORDS * 1e9

    # -- memory bound ----------------------------------------------------------
    legacy_retained = len(legacy_hist.samples)
    streaming_retained = streaming_hist.pending_count + streaming_hist.bucket_count

    return {
        "schema": "bench-metrics-overhead/v1",
        "records": RECORDS,
        "histogram_observe_ns": {
            "legacy_list_append": legacy_append_ns,
            "streaming": streaming_observe_ns,
        },
        "histogram_per_record_all_in_ns": {
            "legacy_list_append": legacy_all_in_ns,
            "streaming": streaming_all_in_ns,
        },
        "summary_seconds": {
            "legacy_sort_everything": legacy_summary_seconds,
            "streaming_bounded": streaming_summary_seconds,
        },
        "facade_observe_ns": {
            "legacy_registry_by_name_node": legacy_facade_ns,
            "telemetry_prebound_instrument": new_instrument_ns,
        },
        "counter_increment_ns": counter_increment_ns,
        "retained_objects": {
            "legacy_samples": legacy_retained,
            "streaming_buffer_plus_buckets": streaming_retained,
        },
        "quantile_agreement": {
            "p50": {"legacy": legacy_summary["p50"], "streaming": streaming_summary.p50},
            "p99": {"legacy": legacy_summary["p99"], "streaming": streaming_summary.p99},
        },
    }


def test_metrics_overhead(benchmark):
    row = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [row]
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(row, handle, sort_keys=True, indent=2)
        handle.write("\n")

    observe = row["histogram_observe_ns"]
    all_in = row["histogram_per_record_all_in_ns"]
    facade = row["facade_observe_ns"]
    retained = row["retained_objects"]
    print()
    print(
        f"histogram observe: legacy {observe['legacy_list_append']:.0f} ns/record, "
        f"streaming {observe['streaming']:.0f} ns/record | "
        f"all-in (record + summary): legacy {all_in['legacy_list_append']:.0f}, "
        f"streaming {all_in['streaming']:.0f} | "
        f"retained: legacy {retained['legacy_samples']} samples, "
        f"streaming {retained['streaming_buffer_plus_buckets']} buffer+buckets "
        f"-> {ARTIFACT}"
    )

    # O(1) memory: the streaming histogram retains a bounded buffer plus
    # bounded buckets after RECORDS observations; the legacy one keeps all.
    assert retained["legacy_samples"] == RECORDS
    assert retained["streaming_buffer_plus_buckets"] < 8192

    # Per record all-in, streaming must not lose to the list-append baseline
    # (the baseline's deferred sort is part of its per-record price).
    assert all_in["streaming"] <= all_in["legacy_list_append"]

    # The migrated facade hot path (pre-bound instrument) must beat the old
    # (name, node)-keyed registry lookup it replaces.
    assert facade["telemetry_prebound_instrument"] <= facade["legacy_registry_by_name_node"]

    # The raw streaming observe stays within a small constant factor of a
    # bare list append (it does strictly more work per record yet must not
    # regress the hot path meaningfully).
    assert observe["streaming"] <= observe["legacy_list_append"] * 2.5

    # Bounded quantiles stay close to the exact ones on latency-shaped data.
    p99 = row["quantile_agreement"]["p99"]
    assert p99["streaming"] == __import__("pytest").approx(p99["legacy"], rel=0.15)
