"""Experiment S4 (§4.2): data-aware multicast — fair members, broker-like delegates.

Runs the topic-hierarchy gossip-group system on a hierarchical workload and
splits the population into ordinary members and supertopic delegates.
Expected shape: ordinary members have contribution/benefit ratios clustered
tightly (fair dissemination, the property the paper credits dam with), while
delegates carry a several-fold higher ratio — the "similar to a broker"
effect the paper warns about — and the effect grows with the number of
delegates per root.
"""

from __future__ import annotations

from common import BASE_CONFIG, EXECUTOR, attach_extra_info, print_results
from repro.core import EXPRESSIVE_POLICY


def run_dam(delegates_per_root: int):
    config = BASE_CONFIG.with_overrides(
        name=f"s4/delegates={delegates_per_root}",
        system="dam",
        nodes=80,
        topics=12,
        interest_model="zipf",
        max_topics_per_node=3,
        duration=20.0,
        drain_time=12.0,
        delegates_per_root=delegates_per_root,
    )
    result = EXECUTOR.run(config, keep_system=True)
    system = result.system
    delegate_ids = {node for nodes in system.delegates().values() for node in nodes}
    contributions = EXPRESSIVE_POLICY.contributions(system.ledger)
    benefits = EXPRESSIVE_POLICY.benefits(system.ledger)

    def mean_ratio(node_ids):
        ratios = [
            contributions[node] / max(benefits.get(node, 0.0), 1.0)
            for node in node_ids
            if node in contributions
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    members = [node for node in system.node_ids() if node not in delegate_ids]
    return result, {
        "delegate_count": float(len(delegate_ids)),
        "delegate_mean_ratio": mean_ratio(delegate_ids),
        "member_mean_ratio": mean_ratio(members),
    }


def test_s4_data_aware_multicast_delegate_effect(benchmark):
    outputs = benchmark.pedantic(
        lambda: [run_dam(delegates) for delegates in (2, 4)], rounds=1, iterations=1
    )
    results = [result for result, _ in outputs]
    extras = {result.config.name: stats for result, stats in outputs}
    print_results("S4 — data-aware multicast: members vs supertopic delegates", results, extras)
    attach_extra_info(benchmark, results)
    benchmark.extra_info["delegates"] = extras
    for result, stats in outputs:
        # Dissemination stays interest-local and reliable ...
        assert result.reliability.delivery_ratio > 0.85
        # ... and delegates carry a clearly higher work-per-benefit ratio
        # than ordinary members (the broker-like duty the paper describes).
        assert stats["delegate_mean_ratio"] > 1.5 * stats["member_mean_ratio"]
