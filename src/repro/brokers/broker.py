"""Broker-based baseline (Siena/JEDI style, references [6, 9] of §3).

A small, fixed set of broker nodes carries all the matching and forwarding
work; ordinary participants are pure clients.  Clients send subscriptions
and publications to their home broker; brokers keep a content-based matching
index, flood subscription summaries to the other brokers, and forward each
publication to every broker that hosts a matching subscriber, which then
delivers to its local clients.

The paper uses brokers as the contrast case: the dissemination rate is
coupled to broker capacity, brokers are a reliability bottleneck, and — in
fairness terms — a handful of nodes carries essentially *all* the
contribution while the clients only benefit.  The ledger records make that
concentration measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..core.accounting import WorkLedger
from ..pubsub.events import Event, EventFactory
from ..pubsub.filters import Filter, filter_from_dict
from ..pubsub.interfaces import DeliveryCallback, DeliveryLog, DisseminationSystem
from ..pubsub.matching import MatchingEngine
from ..pubsub.subscriptions import SubscriptionTable
from ..sim.engine import Simulator
from ..sim.network import Message, Network
from ..sim.node import Process, ProcessRegistry

__all__ = ["BrokerNode", "ClientNode", "BrokerSystem"]

SUBSCRIBE_KIND = "broker.subscribe"
UNSUBSCRIBE_KIND = "broker.unsubscribe"
PUBLISH_KIND = "broker.publish"
INTERBROKER_KIND = "broker.forward"
DELIVER_KIND = "broker.deliver"
SUBSCRIPTION_SYNC_KIND = "broker.sync"


@dataclass(frozen=True)
class _SubscriptionPayload:
    client_id: str
    subscription_filter: Filter
    add: bool


@dataclass(frozen=True)
class _EventPayload:
    event: Event


def _encode_subscription(payload: _SubscriptionPayload) -> Dict[str, object]:
    return {
        "client": payload.client_id,
        "filter": payload.subscription_filter.to_dict(),
        "add": payload.add,
    }


def _decode_subscription(encoded: Dict[str, object]) -> _SubscriptionPayload:
    return _SubscriptionPayload(
        client_id=str(encoded["client"]),
        subscription_filter=filter_from_dict(encoded["filter"]),
        add=bool(encoded["add"]),
    )


def _encode_event_payload(payload: _EventPayload) -> Dict[str, object]:
    return {"event": payload.event.to_dict()}


def _decode_event_payload(encoded: Dict[str, object]) -> _EventPayload:
    return _EventPayload(event=Event.from_dict(encoded["event"]))


#: ``kind -> (encoder, decoder)`` consumed by the runtime wire codec
#: (:mod:`repro.runtime.wire`), so broker overlays run on live transports.
WIRE_CODECS = {
    SUBSCRIBE_KIND: (_encode_subscription, _decode_subscription),
    UNSUBSCRIBE_KIND: (_encode_subscription, _decode_subscription),
    SUBSCRIPTION_SYNC_KIND: (_encode_subscription, _decode_subscription),
    PUBLISH_KIND: (_encode_event_payload, _decode_event_payload),
    INTERBROKER_KIND: (_encode_event_payload, _decode_event_payload),
    DELIVER_KIND: (_encode_event_payload, _decode_event_payload),
}


class BrokerNode(Process):
    """A broker: matches events against subscriptions and forwards them."""

    def __init__(
        self,
        node_id: str,
        simulator: Simulator,
        network: Network,
        ledger: WorkLedger,
        delivery_log: DeliveryLog,
    ) -> None:
        super().__init__(node_id, simulator, network)
        self.ledger = ledger
        self.delivery_log = delivery_log
        self.matching = MatchingEngine()
        #: Which broker hosts each remotely subscribed client.
        self.peers: List[str] = []
        #: Clients attached locally and remotely known (client -> broker).
        self.client_home: Dict[str, str] = {}
        self.local_clients: Set[str] = set()
        self.seen_event_ids: Set[str] = set()
        self.ledger.ensure_node(node_id)

    def set_peers(self, peers: Sequence[str]) -> None:
        """Tell this broker about the other brokers."""
        self.peers = [peer for peer in peers if peer != self.node_id]

    def attach_client(self, client_id: str) -> None:
        """Register a client whose home broker is this one."""
        self.local_clients.add(client_id)
        self.client_home[client_id] = self.node_id

    # ------------------------------------------------------------- messages

    def on_message(self, message: Message) -> None:
        if message.kind in (SUBSCRIBE_KIND, UNSUBSCRIBE_KIND):
            self._handle_subscription(message.payload, propagate=True)
        elif message.kind == SUBSCRIPTION_SYNC_KIND:
            self._handle_subscription(message.payload, propagate=False)
        elif message.kind == PUBLISH_KIND:
            self._handle_publish(message.payload.event, from_broker=False)
        elif message.kind == INTERBROKER_KIND:
            self._handle_publish(message.payload.event, from_broker=True)

    def _handle_subscription(self, payload: _SubscriptionPayload, propagate: bool) -> None:
        if payload.add:
            self.matching.add(payload.client_id, payload.subscription_filter)
        else:
            self.matching.remove(payload.client_id, payload.subscription_filter)
        if propagate:
            # Share the subscription with the other brokers so any broker can
            # route matching publications towards the client's home broker.
            for peer in self.peers:
                self.send(peer, SUBSCRIPTION_SYNC_KIND, payload=payload, size=1)
                self.ledger.record_subscription_forward(self.node_id)

    def _handle_publish(self, event: Event, from_broker: bool) -> None:
        if event.event_id in self.seen_event_ids:
            return
        self.seen_event_ids.add(event.event_id)
        interested = self.matching.match(event)
        local_targets = sorted(interested & self.local_clients)
        for client in local_targets:
            self.send(client, DELIVER_KIND, payload=_EventPayload(event=event), size=event.size)
        if local_targets:
            self.ledger.record_gossip_send(
                self.node_id,
                messages=len(local_targets),
                events=len(local_targets),
                size=event.size * len(local_targets),
            )
        if not from_broker:
            remote_brokers = sorted(
                {
                    self.client_home.get(client, "")
                    for client in interested
                    if client not in self.local_clients and self.client_home.get(client)
                }
                or set(self.peers)
            )
            for peer in remote_brokers:
                if not peer or peer == self.node_id:
                    continue
                self.send(peer, INTERBROKER_KIND, payload=_EventPayload(event=event), size=event.size)
                self.ledger.record_gossip_send(self.node_id, messages=1, events=1, size=event.size)

    def register_remote_client(self, client_id: str, home_broker: str) -> None:
        """Record which broker hosts a remote client (filled in by the system)."""
        self.client_home[client_id] = home_broker

    def on_crash(self) -> None:
        self.ledger.record_crash(self.node_id)


class ClientNode(Process):
    """A pure client: publishes to and receives deliveries from its broker."""

    def __init__(
        self,
        node_id: str,
        simulator: Simulator,
        network: Network,
        home_broker: str,
        ledger: WorkLedger,
        delivery_log: DeliveryLog,
    ) -> None:
        super().__init__(node_id, simulator, network)
        self.home_broker = home_broker
        self.ledger = ledger
        self.delivery_log = delivery_log
        self.delivered_event_ids: Set[str] = set()
        self._callbacks: List[DeliveryCallback] = []
        self.ledger.ensure_node(node_id)

    def add_delivery_callback(self, callback: DeliveryCallback) -> None:
        """Register an application callback invoked on every delivery."""
        self._callbacks.append(callback)

    def subscribe(self, subscription_filter: Filter) -> None:
        """Send the subscription to the home broker."""
        self.ledger.record_subscribe(self.node_id)
        payload = _SubscriptionPayload(
            client_id=self.node_id, subscription_filter=subscription_filter, add=True
        )
        self.send(self.home_broker, SUBSCRIBE_KIND, payload=payload, size=1)

    def unsubscribe(self, subscription_filter: Filter) -> None:
        """Withdraw the subscription at the home broker."""
        self.ledger.record_unsubscribe(self.node_id)
        payload = _SubscriptionPayload(
            client_id=self.node_id, subscription_filter=subscription_filter, add=False
        )
        self.send(self.home_broker, UNSUBSCRIBE_KIND, payload=payload, size=1)

    def publish(self, event: Event) -> None:
        """Hand the event to the home broker for dissemination."""
        if not self.alive:
            return
        self.ledger.record_publish(self.node_id)
        self.send(self.home_broker, PUBLISH_KIND, payload=_EventPayload(event=event), size=event.size)

    def on_message(self, message: Message) -> None:
        if message.kind != DELIVER_KIND:
            return
        event: Event = message.payload.event
        if event.event_id in self.delivered_event_ids:
            return
        self.delivered_event_ids.add(event.event_id)
        self.ledger.record_delivery(self.node_id)
        self.delivery_log.record(self.node_id, event, delivered_at=self.simulator.now)
        for callback in self._callbacks:
            callback(self.node_id, event)

    def on_crash(self) -> None:
        self.ledger.record_crash(self.node_id)


class BrokerSystem(DisseminationSystem):
    """Client/broker selective dissemination (the centralised contrast case)."""

    name = "brokers"

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        client_ids: Sequence[str],
        broker_count: int = 1,
        ledger: Optional[WorkLedger] = None,
        delivery_log: Optional[DeliveryLog] = None,
    ) -> None:
        if not client_ids:
            raise ValueError("a broker system needs at least one client")
        if broker_count <= 0:
            raise ValueError("broker_count must be positive")
        self.simulator = simulator
        self.network = network
        self.ledger = ledger if ledger is not None else WorkLedger()
        self._delivery_log = delivery_log if delivery_log is not None else DeliveryLog()
        self.subscriptions = SubscriptionTable()
        self.registry = ProcessRegistry()
        self.brokers: Dict[str, BrokerNode] = {}
        self.clients: Dict[str, ClientNode] = {}
        self._factories: Dict[str, EventFactory] = {}

        broker_ids = [f"broker-{index}" for index in range(broker_count)]
        for broker_id in broker_ids:
            broker = BrokerNode(broker_id, simulator, network, self.ledger, self._delivery_log)
            broker.start()
            self.brokers[broker_id] = broker
            self.registry.add(broker)
        for broker in self.brokers.values():
            broker.set_peers(broker_ids)

        for index, client_id in enumerate(client_ids):
            home = broker_ids[index % broker_count]
            client = ClientNode(
                client_id, simulator, network, home, self.ledger, self._delivery_log
            )
            client.start()
            self.clients[client_id] = client
            self.registry.add(client)
            self._factories[client_id] = EventFactory(client_id)
            self.brokers[home].attach_client(client_id)
            for broker in self.brokers.values():
                broker.register_remote_client(client_id, home)

    # ------------------------------------------------------------- §2 API

    def publish(self, publisher_id: str, event: Optional[Event] = None, **attributes) -> Event:
        if event is None:
            factory = self._factories[publisher_id]
            topic = attributes.pop("topic", None)
            size = attributes.pop("size", 1)
            event = factory.create(attributes=attributes, topic=topic, size=size)
        event = event.with_time(self.simulator.now)
        self.clients[publisher_id].publish(event)
        return event

    def subscribe(
        self,
        node_id: str,
        subscription_filter: Filter,
        callbacks: Sequence[DeliveryCallback] = (),
    ) -> None:
        client = self.clients[node_id]
        client.subscribe(subscription_filter)
        self.subscriptions.subscribe(node_id, subscription_filter, timestamp=self.simulator.now)
        for callback in callbacks:
            client.add_delivery_callback(callback)

    def unsubscribe(self, node_id: str, subscription_filter: Filter) -> None:
        self.clients[node_id].unsubscribe(subscription_filter)
        self.subscriptions.unsubscribe(node_id, subscription_filter, timestamp=self.simulator.now)

    # -------------------------------------------------------------- queries

    @property
    def delivery_log(self) -> DeliveryLog:
        return self._delivery_log

    def node_ids(self) -> List[str]:
        """Client ids (the participants in the paper's sense)."""
        return sorted(self.clients)

    def client_nodes(self) -> Dict[str, "ClientNode"]:
        """Application-facing nodes: the clients (brokers are infrastructure)."""
        return self.clients

    def broker_ids(self) -> List[str]:
        """Ids of the broker nodes."""
        return sorted(self.brokers)

    def run(self, until: float) -> None:
        """Advance the simulation to time ``until``."""
        self.simulator.run(until=until)
