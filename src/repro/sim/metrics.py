"""Legacy metric surface — a thin shim over :mod:`repro.telemetry`.

Historically this module owned the metric primitives; they now live in
:mod:`repro.telemetry.instruments` (with the histogram upgraded from an
unbounded sample list to a bounded streaming estimator).  The names are
re-exported unchanged, and :class:`MetricsRegistry` keeps its exact API —
``(name, node)`` keys, per-node queries, one-call shortcuts — while
delegating storage to a shared :class:`~repro.telemetry.Telemetry`
instance, with the positional ``node`` parameter mapped onto the ``node``
tag.  New code should use :class:`~repro.telemetry.Telemetry` directly.
"""

from __future__ import annotations

from typing import Dict, List

from ..telemetry import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    Telemetry,
    percentile,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "percentile",
]


class MetricsRegistry:
    """Store of named, optionally per-node metrics (telemetry-backed).

    ``node=""`` (the historical "system slot") maps to an untagged
    instrument; any other node id becomes the ``node`` tag.  A registry can
    wrap an existing :class:`Telemetry` so old and new call sites observe
    the same store — that is how :class:`~repro.runtime.host.NodeHost`
    keeps its ``host.metrics`` view alive on top of ``host.telemetry``.
    """

    _SYSTEM = ""

    def __init__(self, telemetry: Telemetry = None) -> None:
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    @staticmethod
    def _tags(node: str) -> Dict[str, str]:
        return {"node": node} if node else {}

    # --------------------------------------------------------------- access

    def counter(self, name: str, node: str = _SYSTEM) -> Counter:
        """Return (creating if needed) the counter ``name`` for ``node``."""
        return self.telemetry.counter(name, **self._tags(node))

    def gauge(self, name: str, node: str = _SYSTEM) -> Gauge:
        """Return (creating if needed) the gauge ``name`` for ``node``."""
        return self.telemetry.gauge(name, **self._tags(node))

    def histogram(self, name: str, node: str = _SYSTEM) -> Histogram:
        """Return (creating if needed) the histogram ``name`` for ``node``."""
        return self.telemetry.histogram(name, **self._tags(node))

    # ------------------------------------------------------------ shortcuts

    def increment(self, name: str, node: str = _SYSTEM, amount: float = 1.0) -> None:
        """Increment a counter in one call."""
        self.counter(name, node).increment(amount)

    def observe(self, name: str, value: float, node: str = _SYSTEM) -> None:
        """Record one histogram sample in one call."""
        self.histogram(name, node).observe(value)

    # -------------------------------------------------------------- queries

    def counter_value(self, name: str, node: str = _SYSTEM) -> float:
        """Current value of a counter (0 if it was never touched)."""
        return self.telemetry.counter_value(name, **self._tags(node))

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every node (including the system slot)."""
        return self.telemetry.counter_total(name)

    def per_node_counter(self, name: str) -> Dict[str, float]:
        """Mapping ``node -> value`` for a counter, excluding the system slot."""
        return self.telemetry.counters_by_tag(name, "node")

    def per_node_gauge(self, name: str) -> Dict[str, float]:
        """Mapping ``node -> value`` for a gauge, excluding the system slot."""
        return self.telemetry.gauges_by_tag(name, "node")

    def histogram_summary(self, name: str, node: str = _SYSTEM) -> HistogramSummary:
        """Summary of a histogram (empty summary if never observed)."""
        return self.telemetry.histogram_summary(name, **self._tags(node))

    def names(self) -> Dict[str, List[str]]:
        """All metric names grouped by primitive type."""
        return self.telemetry.names()

    def reset(self) -> None:
        """Zero every metric in place (between independent runs).

        Instrument objects survive — see :meth:`Telemetry.reset` — so code
        holding a counter/histogram keeps writing to the same store.
        """
        self.telemetry.reset()
