"""End-to-end fairness reporting: from a ledger to printable tables.

Combines the accounting ledger, a fairness policy, and (optionally) the
delivery log into the quantities the paper's figures talk about: per-node
contribution, benefit, and their ratio (Figure 1), with the topic-based or
expressive weighting of Figures 2 and 3, plus the aggregate indices and the
load-balance comparison of §3.1 vs §3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.accounting import WorkLedger
from ..core.fairness import FairnessReport, evaluate_fairness
from ..core.policy import EXPRESSIVE_POLICY, FairnessPolicy
from .tables import Table, format_table

__all__ = [
    "NodeFairnessRow",
    "SystemFairnessSummary",
    "summarise_fairness",
    "fairness_table_from_snapshot",
    "compare_systems",
]


@dataclass(frozen=True)
class NodeFairnessRow:
    """Per-node view: the row behind Figure 1's per-peer ratio."""

    node_id: str
    contribution: float
    benefit: float
    ratio: float
    filters: int
    delivered: int
    forwarded_messages: int
    crashes: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "node_id": self.node_id,
            "contribution": self.contribution,
            "benefit": self.benefit,
            "ratio": self.ratio,
            "filters": self.filters,
            "delivered": self.delivered,
            "forwarded_messages": self.forwarded_messages,
            "crashes": self.crashes,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "NodeFairnessRow":
        """Rebuild a row from :meth:`to_dict` output."""
        return NodeFairnessRow(
            node_id=payload["node_id"],
            contribution=payload["contribution"],
            benefit=payload["benefit"],
            ratio=payload["ratio"],
            filters=int(payload["filters"]),
            delivered=int(payload["delivered"]),
            forwarded_messages=int(payload["forwarded_messages"]),
            crashes=int(payload["crashes"]),
        )


@dataclass(frozen=True)
class SystemFairnessSummary:
    """Everything a benchmark needs to report about one run of one system."""

    system_name: str
    policy_name: str
    report: FairnessReport
    per_node: List[NodeFairnessRow]

    def top_contributors(self, count: int = 5) -> List[NodeFairnessRow]:
        """Nodes with the highest contribution (the candidates for unfairness)."""
        return sorted(self.per_node, key=lambda row: -row.contribution)[:count]

    def zero_benefit_contributors(self) -> List[NodeFairnessRow]:
        """Nodes that contribute without benefiting (Scribe's interior nodes)."""
        return [row for row in self.per_node if row.benefit <= 0 and row.contribution > 0]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "system_name": self.system_name,
            "policy_name": self.policy_name,
            "report": self.report.to_dict(),
            "per_node": [row.to_dict() for row in self.per_node],
        }

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "SystemFairnessSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        return SystemFairnessSummary(
            system_name=payload["system_name"],
            policy_name=payload["policy_name"],
            report=FairnessReport.from_dict(payload["report"]),
            per_node=[NodeFairnessRow.from_dict(row) for row in payload.get("per_node", [])],
        )

    def render(self, max_rows: int = 10) -> str:
        """Printable summary: aggregate indices plus the heaviest contributors."""
        table = Table(
            ["node", "contribution", "benefit", "ratio", "filters", "delivered"],
            title=(
                f"{self.system_name} under {self.policy_name} policy — "
                f"ratio Jain {self.report.ratio_jain:.3f}, wasted share {self.report.wasted_share:.3f}"
            ),
        )
        for row in self.top_contributors(max_rows):
            table.add_row(
                node=row.node_id,
                contribution=row.contribution,
                benefit=row.benefit,
                ratio=row.ratio,
                filters=row.filters,
                delivered=row.delivered,
            )
        return table.render()


def summarise_fairness(
    ledger: WorkLedger,
    policy: FairnessPolicy = EXPRESSIVE_POLICY,
    system_name: str = "system",
) -> SystemFairnessSummary:
    """Build the full fairness summary of one run."""
    contributions = policy.contributions(ledger)
    benefits = policy.benefits(ledger)
    report = evaluate_fairness(contributions, benefits)
    per_node: List[NodeFairnessRow] = []
    for node_id in ledger.node_ids():
        account = ledger.account(node_id)
        contribution = contributions.get(node_id, 0.0)
        benefit = benefits.get(node_id, 0.0)
        per_node.append(
            NodeFairnessRow(
                node_id=node_id,
                contribution=contribution,
                benefit=benefit,
                ratio=report.ratios.get(node_id, 0.0),
                filters=account.filters_placed,
                delivered=account.events_delivered,
                forwarded_messages=account.gossip_messages_sent,
                crashes=account.crashes,
            )
        )
    return SystemFairnessSummary(
        system_name=system_name,
        policy_name=policy.name,
        report=report,
        per_node=per_node,
    )


def fairness_table_from_snapshot(snapshot, max_rows: int = 10) -> Optional[Table]:
    """Per-node fairness table built from a telemetry snapshot.

    Reads the per-node ``node.contribution`` / ``node.benefit`` gauges (and
    the aggregate ``fairness.ratio_jain`` / ``fairness.wasted_share``) that
    the experiment runner's telemetry collector publishes, so mid-run
    snapshots carry the same fairness view the end-of-run summary computes
    from the ledger.  Returns ``None`` when the snapshot carries no per-node
    fairness gauges (for example a runtime snapshot with aggregates only).
    """
    from ..core.fairness import contribution_benefit_ratios

    contributions = snapshot.gauges_by_tag("node.contribution", "node")
    benefits = snapshot.gauges_by_tag("node.benefit", "node")
    if not contributions and not benefits:
        return None
    table = Table(
        ["node", "contribution", "benefit", "ratio"],
        title=(
            f"fairness at t={snapshot.at:g} — "
            f"ratio Jain {snapshot.gauge_value('fairness.ratio_jain'):.3f}, "
            f"wasted share {snapshot.gauge_value('fairness.wasted_share'):.3f}"
        ),
    )
    # Same ratio semantics as the end-of-run summary: zero-benefit
    # contributors get the finite cap (they are the exploited nodes the
    # fairness analysis is about), not a ratio of 0.
    ratios = contribution_benefit_ratios(contributions, benefits)
    nodes = sorted(ratios, key=lambda node: -contributions.get(node, 0.0))
    for node in nodes[:max_rows]:
        table.add_row(
            node=node,
            contribution=contributions.get(node, 0.0),
            benefit=benefits.get(node, 0.0),
            ratio=ratios[node],
        )
    return table


def compare_systems(
    summaries: Sequence[SystemFairnessSummary], precision: int = 3
) -> str:
    """Side-by-side comparison table across systems (the Figure 1 experiment)."""
    table = Table(
        [
            "system",
            "ratio_jain",
            "ratio_gini",
            "ratio_spread",
            "wasted_share",
            "contribution_jain",
            "mean_contribution",
            "mean_benefit",
            "exploited",
        ],
        title="Fairness comparison (higher ratio_jain and lower wasted_share is fairer; "
        "contribution_jain alone only measures load balancing)",
    )
    for summary in summaries:
        report = summary.report
        table.add_row(
            system=summary.system_name,
            ratio_jain=report.ratio_jain,
            ratio_gini=report.ratio_gini,
            ratio_spread=report.ratio_spread,
            wasted_share=report.wasted_share,
            contribution_jain=report.contribution_jain,
            mean_contribution=report.mean_contribution,
            mean_benefit=report.mean_benefit,
            exploited=report.exploited,
        )
    return table.render(precision=precision)
