"""Full-membership oracle.

Classic gossip analyses (and the basic algorithm of Figure 4) assume that a
process can contact communication partners chosen *uniformly at random among
all processes*.  Maintaining that global knowledge is exactly what the
peer-sampling literature replaces; the oracle here keeps the assumption
available so experiments can separate dissemination effects from membership
effects.  The oracle consults the network's alive set at selection time, so
churn is still visible to it.
"""

from __future__ import annotations

import random
from typing import Iterable, List

from ..sim.network import Message, Network
from ..sim.node import Process
from .base import MembershipComponent

__all__ = ["FullMembership", "full_membership_provider"]


class FullMembership(MembershipComponent):
    """Oracle component backed by the network's registry of alive nodes."""

    def __init__(self, owner: Process, network: Network) -> None:
        super().__init__(owner)
        self._network = network

    def select_partners(
        self, count: int, rng: random.Random, exclude: Iterable[str] = ()
    ) -> List[str]:
        excluded = set(exclude) | {self.owner.node_id}
        candidates = sorted(self._network.alive_nodes() - excluded)
        if count >= len(candidates):
            return candidates
        return rng.sample(candidates, count)

    def known_peers(self) -> List[str]:
        return sorted(self._network.alive_nodes() - {self.owner.node_id})

    def handle(self, message: Message) -> bool:
        return False


def full_membership_provider(network: Network):
    """Return a provider building :class:`FullMembership` components."""

    def provider(owner: Process) -> FullMembership:
        return FullMembership(owner, network)

    return provider
