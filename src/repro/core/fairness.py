"""Fairness metrics.

Figure 1 of the paper states the fairness criterion: the ratio
``contribution / benefit`` of each peer must be *equivalent* across the
system.  This module turns that statement into measurable quantities:

* per-node contribution/benefit ratios;
* dispersion indices over those ratios — Jain's fairness index, the Gini
  coefficient, the coefficient of variation, and the max/min spread;
* the same indices over raw contributions, which measure *load balancing*
  (§3.1) rather than fairness, so experiments can show the two notions
  diverging (experiment S2 in DESIGN.md).

All functions accept plain ``{node_id: value}`` mappings so they are usable
on ledger outputs, on windowed differences, and on synthetic data in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "FairnessReport",
    "contribution_benefit_ratios",
    "smoothed_ratios",
    "jain_index",
    "gini_coefficient",
    "coefficient_of_variation",
    "max_min_spread",
    "normalised_ratio_deviation",
    "wasted_contribution_share",
    "evaluate_fairness",
]

#: Value used for the ratio of a node with zero benefit but non-zero
#: contribution; such a node works for the system and gets nothing back,
#: which is the extreme unfairness case the paper describes for Scribe's
#: interior nodes.  Keeping it finite keeps the indices well defined.
_ZERO_BENEFIT_RATIO_CAP = 1e6


def contribution_benefit_ratios(
    contributions: Mapping[str, float],
    benefits: Mapping[str, float],
    zero_benefit_cap: float = _ZERO_BENEFIT_RATIO_CAP,
) -> Dict[str, float]:
    """Per-node ``contribution / benefit`` ratio (Figure 1).

    Nodes that neither contribute nor benefit are reported with ratio 0 (they
    are simply absent from the system's economy); nodes that contribute with
    zero benefit get the finite cap so aggregate indices remain defined.
    """
    # Sorted iteration keeps float-summation order (and hence results) stable
    # across processes, where set order would follow the per-process hash seed.
    ratios: Dict[str, float] = {}
    for node_id in sorted(set(contributions) | set(benefits)):
        contribution = contributions.get(node_id, 0.0)
        benefit = benefits.get(node_id, 0.0)
        if benefit > 0:
            ratios[node_id] = contribution / benefit
        elif contribution > 0:
            ratios[node_id] = zero_benefit_cap
        else:
            ratios[node_id] = 0.0
    return ratios


def smoothed_ratios(
    contributions: Mapping[str, float],
    benefits: Mapping[str, float],
    smoothing: float = 1.0,
) -> Dict[str, float]:
    """Per-node ``contribution / (benefit + smoothing)`` ratio.

    The additive smoothing keeps zero-benefit contributors comparable with
    everyone else instead of saturating at a cap, so dispersion indices over
    these ratios actually move when a protocol reduces the work handed to
    uninterested nodes.  This is the headline fairness signal used by the
    benchmark tables; the raw (capped) ratios of
    :func:`contribution_benefit_ratios` are reported alongside it.
    """
    if smoothing <= 0:
        raise ValueError("smoothing must be positive")
    ratios: Dict[str, float] = {}
    for node_id in sorted(set(contributions) | set(benefits)):
        contribution = contributions.get(node_id, 0.0)
        benefit = benefits.get(node_id, 0.0)
        ratios[node_id] = contribution / (benefit + smoothing)
    return ratios


def wasted_contribution_share(
    contributions: Mapping[str, float], benefits: Mapping[str, float]
) -> float:
    """Fraction of the total contribution performed by zero-benefit nodes.

    This captures the paper's core complaint about Scribe's interior nodes
    and about classic gossip with selective interest: participants that get
    nothing from the system still carry a large share of its work.  A fair
    system drives this towards the minimum needed for connectivity.
    """
    total = sum(max(value, 0.0) for value in contributions.values())
    if total <= 0:
        return 0.0
    wasted = sum(
        max(contribution, 0.0)
        for node_id, contribution in contributions.items()
        if benefits.get(node_id, 0.0) <= 0
    )
    return wasted / total


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: 1 when all values are equal, 1/n when one hogs all.

    Defined as ``(sum x)^2 / (n * sum x^2)``.  An empty or all-zero input is
    perfectly fair by convention (index 1).
    """
    data = [max(value, 0.0) for value in values]
    if not data:
        return 1.0
    total = sum(data)
    squares = sum(value * value for value in data)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(data) * squares)


def gini_coefficient(values: Iterable[float]) -> float:
    """Gini coefficient: 0 for perfect equality, approaching 1 for concentration."""
    data = sorted(max(value, 0.0) for value in values)
    count = len(data)
    if count == 0:
        return 0.0
    total = sum(data)
    if total == 0.0:
        return 0.0
    cumulative = 0.0
    for rank, value in enumerate(data, start=1):
        cumulative += rank * value
    return (2.0 * cumulative) / (count * total) - (count + 1.0) / count


def coefficient_of_variation(values: Iterable[float]) -> float:
    """Standard deviation divided by the mean (0 when all values are equal)."""
    data = list(values)
    if not data:
        return 0.0
    mean = sum(data) / len(data)
    if mean == 0.0:
        return 0.0
    variance = sum((value - mean) ** 2 for value in data) / len(data)
    return math.sqrt(variance) / mean


def max_min_spread(values: Iterable[float]) -> float:
    """``max / min`` over strictly positive values (1 when equal, inf-free).

    Values of zero are ignored; if fewer than two positive values remain the
    spread is 1 (nothing to compare).
    """
    positive = [value for value in values if value > 0]
    if len(positive) < 2:
        return 1.0
    return max(positive) / min(positive)


def normalised_ratio_deviation(ratios: Mapping[str, float]) -> float:
    """Mean absolute deviation of ratios from their mean, normalised by the mean.

    This is the most direct reading of Figure 1 ("the ratio of each peer must
    be equivalent"): 0 means every peer has exactly the same
    contribution/benefit ratio.
    """
    data = [value for value in ratios.values()]
    if not data:
        return 0.0
    mean = sum(data) / len(data)
    if mean == 0.0:
        return 0.0
    return sum(abs(value - mean) for value in data) / (len(data) * mean)


@dataclass(frozen=True)
class FairnessReport:
    """Aggregate fairness and load-balance view of one run.

    ``ratio_*`` fields describe the distribution of contribution/benefit
    ratios (fairness, Figure 1); ``contribution_*`` fields describe the
    distribution of raw contributions (load balancing, §3.1).  The paper's
    central observation is that the second can look good while the first is
    terrible.
    """

    node_count: int
    ratios: Dict[str, float] = field(default_factory=dict)
    smoothed: Dict[str, float] = field(default_factory=dict)
    ratio_jain: float = 1.0
    ratio_gini: float = 0.0
    ratio_cv: float = 0.0
    ratio_spread: float = 1.0
    ratio_deviation: float = 0.0
    benefiting_ratio_jain: float = 1.0
    benefiting_ratio_spread: float = 1.0
    wasted_share: float = 0.0
    contribution_jain: float = 1.0
    contribution_gini: float = 0.0
    contribution_cv: float = 0.0
    mean_contribution: float = 0.0
    mean_benefit: float = 0.0
    freeriders: int = 0
    exploited: int = 0

    def summary_row(self) -> Dict[str, float]:
        """Compact dictionary used by benchmark tables."""
        return {
            "nodes": float(self.node_count),
            "ratio_jain": self.ratio_jain,
            "ratio_gini": self.ratio_gini,
            "ratio_spread": self.ratio_spread,
            "benefiting_ratio_jain": self.benefiting_ratio_jain,
            "wasted_share": self.wasted_share,
            "contribution_jain": self.contribution_jain,
            "mean_contribution": self.mean_contribution,
            "mean_benefit": self.mean_benefit,
            "freeriders": float(self.freeriders),
            "exploited": float(self.exploited),
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "node_count": self.node_count,
            "ratios": dict(self.ratios),
            "smoothed": dict(self.smoothed),
            "ratio_jain": self.ratio_jain,
            "ratio_gini": self.ratio_gini,
            "ratio_cv": self.ratio_cv,
            "ratio_spread": self.ratio_spread,
            "ratio_deviation": self.ratio_deviation,
            "benefiting_ratio_jain": self.benefiting_ratio_jain,
            "benefiting_ratio_spread": self.benefiting_ratio_spread,
            "wasted_share": self.wasted_share,
            "contribution_jain": self.contribution_jain,
            "contribution_gini": self.contribution_gini,
            "contribution_cv": self.contribution_cv,
            "mean_contribution": self.mean_contribution,
            "mean_benefit": self.mean_benefit,
            "freeriders": self.freeriders,
            "exploited": self.exploited,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "FairnessReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return FairnessReport(
            node_count=int(payload["node_count"]),
            ratios=dict(payload.get("ratios", {})),
            smoothed=dict(payload.get("smoothed", {})),
            ratio_jain=payload["ratio_jain"],
            ratio_gini=payload["ratio_gini"],
            ratio_cv=payload["ratio_cv"],
            ratio_spread=payload["ratio_spread"],
            ratio_deviation=payload["ratio_deviation"],
            benefiting_ratio_jain=payload["benefiting_ratio_jain"],
            benefiting_ratio_spread=payload["benefiting_ratio_spread"],
            wasted_share=payload["wasted_share"],
            contribution_jain=payload["contribution_jain"],
            contribution_gini=payload["contribution_gini"],
            contribution_cv=payload["contribution_cv"],
            mean_contribution=payload["mean_contribution"],
            mean_benefit=payload["mean_benefit"],
            freeriders=int(payload["freeriders"]),
            exploited=int(payload["exploited"]),
        )


def evaluate_fairness(
    contributions: Mapping[str, float],
    benefits: Mapping[str, float],
    exploited_factor: float = 4.0,
    freerider_factor: float = 0.25,
) -> FairnessReport:
    """Build a :class:`FairnessReport` from per-node contributions and benefits.

    ``exploited`` counts nodes whose ratio exceeds ``exploited_factor`` times
    the median ratio (they work much more than they benefit — the paper's
    unlucky Scribe forwarders); ``freeriders`` counts nodes below
    ``freerider_factor`` times the median (they benefit while barely
    contributing).  The headline dispersion indices (``ratio_*``) are
    computed over the *smoothed* ratios so zero-benefit contributors move
    them instead of saturating them; ``benefiting_ratio_*`` restrict the view
    to nodes with positive benefit, and ``wasted_share`` reports how much of
    the total work is carried by nodes that benefit nothing.
    """
    ratios = contribution_benefit_ratios(contributions, benefits)
    smoothed = smoothed_ratios(contributions, benefits)
    smoothed_values = list(smoothed.values())
    contribution_values = [contributions.get(node, 0.0) for node in ratios]
    benefit_values = [benefits.get(node, 0.0) for node in ratios]
    benefiting_values = [
        value for node, value in ratios.items() if benefits.get(node, 0.0) > 0
    ]

    positive_ratios = sorted(value for value in ratios.values() if value > 0)
    median_ratio = positive_ratios[len(positive_ratios) // 2] if positive_ratios else 0.0
    exploited = sum(
        1
        for value in ratios.values()
        if median_ratio > 0 and value > exploited_factor * median_ratio
    )
    freeriders = sum(
        1
        for node, value in ratios.items()
        if median_ratio > 0
        and value < freerider_factor * median_ratio
        and benefits.get(node, 0.0) > 0
    )

    node_count = len(ratios)
    return FairnessReport(
        node_count=node_count,
        ratios=ratios,
        smoothed=smoothed,
        ratio_jain=jain_index(smoothed_values),
        ratio_gini=gini_coefficient(smoothed_values),
        ratio_cv=coefficient_of_variation(smoothed_values),
        ratio_spread=max_min_spread(smoothed_values),
        ratio_deviation=normalised_ratio_deviation(smoothed),
        benefiting_ratio_jain=jain_index(benefiting_values),
        benefiting_ratio_spread=max_min_spread(benefiting_values),
        wasted_share=wasted_contribution_share(contributions, benefits),
        contribution_jain=jain_index(contribution_values),
        contribution_gini=gini_coefficient(contribution_values),
        contribution_cv=coefficient_of_variation(contribution_values),
        mean_contribution=(sum(contribution_values) / node_count) if node_count else 0.0,
        mean_benefit=(sum(benefit_values) / node_count) if node_count else 0.0,
        freeriders=freeriders,
        exploited=exploited,
    )
