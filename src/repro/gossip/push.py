"""The basic push gossip dissemination algorithm (Figure 4 of the paper).

Every ``round_period`` time units each process:

1. selects ``F`` communication partners from its membership component
   (``SELECTPARTICIPANTS(F)``),
2. selects at most ``N`` events from its buffer (``SELECTEVENTS(N)``),
3. sends each partner a gossip message carrying those events.

On receiving a gossip message, events not seen before are added to the
buffer and — if the local interest function matches (``ISINTERESTED(e)``) —
delivered.  The protocol is *interest-oblivious in forwarding* and
*interest-aware only in delivery*, which is exactly why the paper calls
classic gossip unfair: a node with no interest in anything still forwards as
much as everyone else.

Accounting: every gossip message sent adds to the sender's contribution,
every membership message adds to its infrastructure contribution, and every
delivery adds to the receiver's benefit (see
:class:`~repro.core.accounting.WorkLedger`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.accounting import WorkLedger
from ..membership.base import MembershipComponent, MembershipProvider
from ..membership.lpbcast import LpbcastMembership, MembershipDigest
from ..pubsub.events import Event
from ..pubsub.filters import Filter, InterestFunction
from ..pubsub.interfaces import DeliveryCallback, DeliveryLog
from ..sim.engine import Simulator
from ..sim.network import Message, Network
from ..sim.node import Process
from ..telemetry import Telemetry
from ..tracing.context import TraceContext
from ..tracing.spans import DELIVER, DUPLICATE, PUBLISH, PULL_RECOVER, RECEIVE, RELAY
from .buffers import EventBuffer

__all__ = ["GossipMessage", "PushGossipNode", "GOSSIP_MESSAGE_KIND"]

GOSSIP_MESSAGE_KIND = "gossip.push"


@dataclass(frozen=True)
class GossipMessage:
    """Payload of one push gossip message.

    Attributes
    ----------
    events:
        The events selected by ``SELECTEVENTS(N)``.
    sender_benefit_rate:
        The sender's recent deliveries-per-round estimate, piggybacked so
        receivers can estimate the system-wide benefit distribution without
        extra messages (used by the adaptive fair protocol; the classic
        protocol simply ignores it).
    membership_digest:
        Optional lpbcast-style digest when that membership flavour is used.
    """

    events: Tuple[Event, ...]
    sender_benefit_rate: float = 0.0
    membership_digest: Optional[MembershipDigest] = None

    @property
    def size(self) -> int:
        """Abstract size: total payload size of the carried events."""
        return sum(event.size for event in self.events) or 1


class PushGossipNode(Process):
    """One participant running the Figure 4 push gossip algorithm.

    Parameters
    ----------
    node_id, simulator, network:
        Standard process wiring.
    membership_provider:
        Factory building this node's membership component.
    ledger:
        Shared work/benefit ledger (contribution and benefit recording).
    delivery_log:
        Shared log of deliveries (reliability and latency measurements).
    fanout:
        The static fanout ``F`` of Figure 4.
    gossip_size:
        The static gossip message size ``N`` of Figure 4 (events per message).
    round_period:
        Gossip round length in simulated time units.
    selection_strategy:
        ``SELECTEVENTS`` strategy (see :class:`~repro.gossip.buffers.EventBuffer`).
    buffer_capacity / buffer_max_rounds:
        Buffer sizing.
    round_jitter:
        Uniform jitter added to each round to avoid lock-step rounds.
    telemetry:
        Optional shared :class:`~repro.telemetry.Telemetry` store; when set
        the node records node-tagged round/message/delivery counters and a
        payload-size histogram (the live host injects its own store here).
    """

    def __init__(
        self,
        node_id: str,
        simulator: Simulator,
        network: Network,
        membership_provider: MembershipProvider,
        ledger: WorkLedger,
        delivery_log: DeliveryLog,
        fanout: int = 3,
        gossip_size: int = 8,
        round_period: float = 1.0,
        selection_strategy: str = "newest",
        buffer_capacity: int = 500,
        buffer_max_rounds: int = 20,
        round_jitter: float = 0.05,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        super().__init__(node_id, simulator, network)
        if fanout < 0:
            raise ValueError("fanout must be non-negative")
        if gossip_size <= 0:
            raise ValueError("gossip_size must be positive")
        if round_period <= 0:
            raise ValueError("round_period must be positive")
        self.membership: MembershipComponent = membership_provider(self)
        self.ledger = ledger
        self.delivery_log = delivery_log
        self.fanout = fanout
        self.gossip_size = gossip_size
        self.round_period = round_period
        self.selection_strategy = selection_strategy
        self.round_jitter = round_jitter
        self.interest = InterestFunction()
        self.buffer = EventBuffer(capacity=buffer_capacity, max_rounds=buffer_max_rounds)
        self.seen_event_ids: set = set()
        self.delivered_event_ids: set = set()
        self.rounds_executed = 0
        self.deliveries_this_window = 0
        self._callbacks: List[DeliveryCallback] = []
        #: Optional audit sink (see :mod:`repro.core.bias`); receivers report
        #: how useful each sender's forwards were, which the bias detector
        #: uses to spot peers inflating their contribution with stale events.
        self.forward_audit = None
        #: Optional shared :class:`~repro.tracing.Tracer` (attached by the
        #: runner/host on opted-in runs, like the telemetry store).  The hot
        #: paths pay a single ``is not None`` check when tracing is off.
        self.tracer = None
        #: event id → (local span id, hops) for events this node traces; the
        #: span is the node's own publish/receive span, which its relays and
        #: deliveries parent on.
        self._trace_state: Dict[str, Tuple[int, int]] = {}
        #: Optional shared telemetry store (node-tagged instruments).  The
        #: instruments are pre-bound here so the per-round/per-delivery hot
        #: paths pay one None check, not a facade lookup.
        self.telemetry = telemetry
        if telemetry is not None:
            self._rounds_counter = telemetry.counter("gossip.rounds", node=node_id)
            self._messages_counter = telemetry.counter("gossip.messages_sent", node=node_id)
            self._deliveries_counter = telemetry.counter("gossip.deliveries", node=node_id)
            self._payload_histogram = telemetry.histogram("gossip.payload_events", node=node_id)
        else:
            self._rounds_counter = None
            self._messages_counter = None
            self._deliveries_counter = None
            self._payload_histogram = None
        self.ledger.ensure_node(node_id)

    # -------------------------------------------------------------- wiring

    def add_delivery_callback(self, callback: DeliveryCallback) -> None:
        """Register an application callback invoked on every delivery."""
        self._callbacks.append(callback)

    def bootstrap(self, seeds: Sequence[str]) -> None:
        """Seed the membership component with initial contacts."""
        self.membership.bootstrap(seeds)

    # ----------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        self.add_timer(
            "gossip-round",
            self.round_period,
            initial_delay=self.round_period,
            jitter=self.round_jitter,
        )

    def on_crash(self) -> None:
        self.ledger.record_crash(self.node_id)

    # -------------------------------------------------------- subscription

    def subscribe(self, subscription_filter: Filter) -> bool:
        """Add a filter to the local interest function."""
        added = self.interest.add(subscription_filter)
        if added:
            self.ledger.record_subscribe(self.node_id)
        return added

    def unsubscribe(self, subscription_filter: Filter) -> bool:
        """Remove a filter from the local interest function."""
        removed = self.interest.remove(subscription_filter)
        if removed:
            self.ledger.record_unsubscribe(self.node_id)
        return removed

    def is_interested(self, event: Event) -> bool:
        """The paper's ``ISINTERESTED(e)``."""
        return self.interest.is_interested(event)

    # ----------------------------------------------------------- publishing

    def publish(self, event: Event) -> None:
        """Insert a locally published event; it spreads on subsequent rounds."""
        if not self.alive:
            return
        self.ledger.record_publish(self.node_id)
        self._absorb_event(event)

    # ----------------------------------------------------------- the round

    def on_timer(self, name: str) -> None:
        if name != "gossip-round":
            return
        self.rounds_executed += 1
        if self._rounds_counter is not None:
            self._rounds_counter.increment()
        self.buffer.start_round()
        self.membership.on_round()
        self.execute_gossip_round()
        self.after_round()

    def current_fanout(self) -> int:
        """Fanout to use this round; the fair protocol overrides this."""
        return self.fanout

    def current_gossip_size(self) -> int:
        """Gossip message size to use this round; the fair protocol overrides this."""
        return self.gossip_size

    def benefit_rate(self) -> float:
        """Recent deliveries per round, piggybacked on outgoing messages."""
        if self.rounds_executed == 0:
            return 0.0
        return self.deliveries_this_window / max(self.rounds_executed, 1)

    def execute_gossip_round(self) -> None:
        """Lines 4–10 of Figure 4."""
        fanout = self.current_fanout()
        gossip_size = self.current_gossip_size()
        if fanout <= 0:
            return
        rng = self.simulator.rng.stream(f"gossip:{self.node_id}")
        neighbors = self.select_participants(fanout, rng)
        if not neighbors:
            return
        events = self.select_events(gossip_size, rng)
        if not events:
            return
        digest = None
        if isinstance(self.membership, LpbcastMembership):
            digest = self.membership.digest_for_gossip()
        message = GossipMessage(
            events=tuple(events),
            sender_benefit_rate=self.benefit_rate(),
            membership_digest=digest,
        )
        self.buffer.mark_forwarded([event.event_id for event in events])
        trace = self._trace_contexts(events, RELAY, fanout=len(neighbors))
        for neighbor in neighbors:
            self.send(
                neighbor, GOSSIP_MESSAGE_KIND, payload=message, size=message.size, trace=trace
            )
        self.ledger.record_gossip_send(
            self.node_id,
            messages=len(neighbors),
            events=len(events) * len(neighbors),
            size=message.size * len(neighbors),
        )
        if self._messages_counter is not None:
            self._messages_counter.increment(len(neighbors))
            self._payload_histogram.observe(len(events))

    def select_participants(self, fanout: int, rng) -> List[str]:
        """``SELECTPARTICIPANTS(F)`` — uniform selection from the membership view."""
        return self.membership.select_partners(fanout, rng)

    def select_events(self, count: int, rng) -> List[Event]:
        """``SELECTEVENTS(N in events)``."""
        return self.buffer.select(count, rng, strategy=self.selection_strategy)

    def after_round(self) -> None:
        """Hook for subclasses (adaptive controllers run here)."""

    # ------------------------------------------------------------ receiving

    def on_message(self, message: Message) -> None:
        if self.membership.handle(message):
            return
        if message.kind == GOSSIP_MESSAGE_KIND:
            self._handle_gossip(message)

    def _handle_gossip(self, message: Message) -> None:
        payload: GossipMessage = message.payload
        if payload.membership_digest is not None and isinstance(
            self.membership, LpbcastMembership
        ):
            self.membership.absorb_digest(payload.membership_digest)
        self.observe_peer_benefit(message.sender, payload.sender_benefit_rate)
        contexts = self._contexts_by_event(message) if message.trace else None
        new_events = 0
        for event in payload.events:
            if self._absorb_event(
                event,
                from_peer=message.sender,
                trace_ctx=None if contexts is None else contexts.get(event.event_id),
            ):
                new_events += 1
        if self.forward_audit is not None and payload.events:
            self.forward_audit.observe(message.sender, new_events, len(payload.events))

    def observe_peer_benefit(self, peer_id: str, benefit_rate: float) -> None:
        """Hook used by the adaptive fair protocol to track peer benefits."""

    def _absorb_event(
        self,
        event: Event,
        from_peer: Optional[str] = None,
        trace_ctx: Optional[TraceContext] = None,
        recovered: bool = False,
    ) -> bool:
        """Lines 12–20 of Figure 4; returns True if the event was new.

        ``trace_ctx`` is the sender's propagated trace context (if the event
        is part of a sampled trace) and ``recovered`` marks first sights that
        arrived via a pull reply rather than an eager push; both only feed
        span emission, never protocol decisions.
        """
        if event.event_id in self.seen_event_ids:
            if trace_ctx is not None and self.tracer is not None:
                self.tracer.emit(
                    DUPLICATE,
                    event.event_id,
                    self.node_id,
                    parent_id=trace_ctx.parent_span,
                    hops=trace_ctx.hops,
                    peer=from_peer,
                )
            return False
        self.seen_event_ids.add(event.event_id)
        self._trace_first_sight(event, from_peer, trace_ctx, recovered)
        self.buffer.add(event, received_at=self.simulator.now)
        if self.is_interested(event):
            self.deliver(event)
        return True

    def deliver(self, event: Event) -> None:
        """``DELIVER(e)``: record the delivery and notify application callbacks."""
        if event.event_id in self.delivered_event_ids:
            return
        self.delivered_event_ids.add(event.event_id)
        self.deliveries_this_window += 1
        if self._deliveries_counter is not None:
            self._deliveries_counter.increment()
        if self.tracer is not None:
            state = self._trace_state.get(event.event_id)
            if state is not None:
                self.tracer.emit(
                    DELIVER, event.event_id, self.node_id, parent_id=state[0], hops=state[1]
                )
        self.ledger.record_delivery(self.node_id)
        self.delivery_log.record(self.node_id, event, delivered_at=self.simulator.now)
        for callback in self._callbacks:
            callback(self.node_id, event)

    # -------------------------------------------------------------- tracing

    def _trace_first_sight(
        self,
        event: Event,
        from_peer: Optional[str],
        trace_ctx: Optional[TraceContext],
        recovered: bool,
    ) -> None:
        """Emit the publish/receive/pull-recover span for a newly seen event.

        Sampling is head-based: only the publisher consults the sampler
        (``from_peer is None``); receivers trace exactly the events whose
        context was propagated to them, so a sampled trace is always
        complete and an unsampled one is free everywhere.
        """
        if self.tracer is None:
            return
        if from_peer is None:
            if self.tracer.sampled(event.event_id):
                span = self.tracer.emit(PUBLISH, event.event_id, self.node_id)
                self._trace_state[event.event_id] = (span, 0)
        elif trace_ctx is not None:
            span = self.tracer.emit(
                PULL_RECOVER if recovered else RECEIVE,
                event.event_id,
                self.node_id,
                parent_id=trace_ctx.parent_span,
                hops=trace_ctx.hops,
                peer=from_peer,
            )
            self._trace_state[event.event_id] = (span, trace_ctx.hops)

    def _trace_contexts(
        self, events: Sequence[Event], span_kind: str, **details
    ) -> Optional[Tuple[TraceContext, ...]]:
        """Relay-side spans + contexts for the traced subset of ``events``.

        One span per (event, round batch) — every recipient of the batch
        shares it as parent — which bounds span volume by rounds, not by
        ``rounds × fanout``.  Returns ``None`` when nothing is traced so
        untraced messages carry no trace field at all.
        """
        if self.tracer is None or not self._trace_state:
            return None
        return self._trace_contexts_for_ids(
            [event.event_id for event in events], span_kind, **details
        )

    def _trace_contexts_for_ids(
        self, event_ids: Sequence[str], span_kind: str, **details
    ) -> Optional[Tuple[TraceContext, ...]]:
        """Id-keyed core of :meth:`_trace_contexts` (digests carry ids only)."""
        contexts: List[TraceContext] = []
        for event_id in event_ids:
            state = self._trace_state.get(event_id)
            if state is None:
                continue
            span = self.tracer.emit(
                span_kind,
                event_id,
                self.node_id,
                parent_id=state[0],
                hops=state[1],
                **details,
            )
            contexts.append(TraceContext(event_id, span, state[1] + 1))
        return tuple(contexts) if contexts else None

    @staticmethod
    def _contexts_by_event(message: Message) -> Dict[str, TraceContext]:
        """The message's trace contexts keyed by event id (empty when untraced)."""
        if not message.trace:
            return {}
        return {ctx.trace_id: ctx for ctx in message.trace}

    # ----------------------------------------------------------- accounting

    def send(
        self,
        recipient: str,
        kind: str,
        payload: object = None,
        size: int = 1,
        trace: object = None,
    ):
        """Send a message, charging infrastructure messages to the ledger."""
        message = super().send(recipient, kind, payload=payload, size=size, trace=trace)
        if message is not None and kind.startswith(MembershipComponent.MESSAGE_PREFIX):
            self.ledger.record_infrastructure(self.node_id)
        return message
