"""Process (node) abstraction.

A :class:`Process` is the unit the paper calls a *participant*: it can send
and receive messages, run periodic timers (gossip rounds), crash, and
recover.  Protocol implementations subclass :class:`Process` and override the
``on_*`` hooks; everything else (registration with the network, timer
bookkeeping, liveness) is handled here so protocol code stays focused on the
dissemination logic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .engine import PeriodicTimer, Simulator
from .network import Message, Network

__all__ = ["Process", "ProcessRegistry"]


class Process:
    """Base class for simulated processes.

    Parameters
    ----------
    node_id:
        Unique identifier (the paper's :math:`p_i`).
    simulator / network:
        The shared engine and message fabric.
    """

    def __init__(self, node_id: str, simulator: Simulator, network: Network) -> None:
        self.node_id = node_id
        self.simulator = simulator
        self.network = network
        self._timers: Dict[str, PeriodicTimer] = {}
        self._started = False
        self._crashed = False
        network.register(node_id, self._receive)

    # ------------------------------------------------------------ lifecycle

    @property
    def alive(self) -> bool:
        """Whether the process is up (started and not crashed)."""
        return self._started and not self._crashed

    def start(self) -> None:
        """Bring the process up; idempotent."""
        if self._started and not self._crashed:
            return
        self._started = True
        self._crashed = False
        self.network.set_alive(self.node_id, True)
        self.on_start()

    def crash(self) -> None:
        """Fail-stop the process: timers stop, messages are no longer received."""
        if self._crashed:
            return
        self._crashed = True
        self.network.set_alive(self.node_id, False)
        for timer in self._timers.values():
            timer.stop()
        self.on_crash()

    def recover(self) -> None:
        """Bring a crashed process back; protocol state is preserved.

        Protocols that need amnesia-on-recovery override :meth:`on_recover`
        and reset their own state there.
        """
        if not self._crashed:
            return
        self._crashed = False
        self.network.set_alive(self.node_id, True)
        self.on_recover()

    def leave(self) -> None:
        """Gracefully leave the system (announces nothing by default)."""
        self.on_leave()
        self.crash()
        self.network.unregister(self.node_id)

    # --------------------------------------------------------------- timers

    def add_timer(
        self,
        name: str,
        period: float,
        initial_delay: Optional[float] = None,
        jitter: float = 0.0,
    ) -> PeriodicTimer:
        """Install a named periodic timer calling :meth:`on_timer`.

        Re-adding an existing name replaces (stops) the previous timer.
        """
        existing = self._timers.get(name)
        if existing is not None:
            existing.stop()
        timer = self.simulator.schedule_periodic(
            period,
            lambda: self._fire_timer(name),
            label=f"{self.node_id}:{name}",
            initial_delay=initial_delay,
            jitter=jitter,
        )
        self._timers[name] = timer
        return timer

    def get_timer(self, name: str) -> Optional[PeriodicTimer]:
        """Return the named timer if installed."""
        return self._timers.get(name)

    def stop_timer(self, name: str) -> None:
        """Stop and forget the named timer (no-op if absent)."""
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.stop()

    def _fire_timer(self, name: str) -> None:
        if not self.alive:
            return
        self.on_timer(name)

    # ------------------------------------------------------------ messaging

    def send(
        self,
        recipient: str,
        kind: str,
        payload: object = None,
        size: int = 1,
        trace: object = None,
    ) -> Optional[Message]:
        """Send a message if this process is alive; returns the message or None."""
        if not self.alive:
            return None
        return self.network.send(
            self.node_id, recipient, kind, payload=payload, size=size, trace=trace
        )

    def _receive(self, message: Message) -> None:
        if not self.alive:
            return
        self.on_message(message)

    # ----------------------------------------------------------------- hooks

    def on_start(self) -> None:
        """Called when the process starts; override to install timers."""

    def on_timer(self, name: str) -> None:
        """Called on every firing of a timer installed via :meth:`add_timer`."""

    def on_message(self, message: Message) -> None:
        """Called for every message delivered to this process."""

    def on_crash(self) -> None:
        """Called when the process crashes."""

    def on_recover(self) -> None:
        """Called when a crashed process recovers."""

    def on_leave(self) -> None:
        """Called before a graceful leave."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "down"
        return f"<{type(self).__name__} {self.node_id} {state}>"


class ProcessRegistry:
    """Keeps track of all processes in a simulation run.

    Workload generators and failure injectors operate on the registry rather
    than holding their own node lists, so late joins and leaves are visible to
    everyone.
    """

    def __init__(self) -> None:
        self._processes: Dict[str, Process] = {}

    def add(self, process: Process) -> None:
        """Register a process under its node id."""
        if process.node_id in self._processes:
            raise ValueError(f"duplicate node id {process.node_id!r}")
        self._processes[process.node_id] = process

    def remove(self, node_id: str) -> None:
        """Forget a process (after it has left)."""
        self._processes.pop(node_id, None)

    def get(self, node_id: str) -> Process:
        """Return the process with the given id (KeyError if unknown)."""
        return self._processes[node_id]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._processes

    def __len__(self) -> int:
        return len(self._processes)

    def ids(self) -> List[str]:
        """All registered node ids, in insertion order."""
        return list(self._processes)

    def all(self) -> List[Process]:
        """All registered processes, in insertion order."""
        return list(self._processes.values())

    def alive(self) -> List[Process]:
        """Processes that are currently up."""
        return [process for process in self._processes.values() if process.alive]

    def alive_ids(self) -> List[str]:
        """Ids of processes that are currently up."""
        return [process.node_id for process in self._processes.values() if process.alive]
