"""Tests for the unified fault-injection layer (``repro.faults``).

Covers the contract the multi-layer refactor promises:

* the :class:`FaultPlan` codec (JSON, entry pairs, flat-config embedding)
  and its fail-fast validation with registry-style messages;
* partition-heal reliability: events published *during* a partition are
  eventually delivered after the heal — in the simulator and on the live
  memory transport;
* churn determinism: two serial runs of a churn plan produce byte-identical
  result artifacts and telemetry snapshot streams;
* spec↔flat-config round trips including the fault section, with the PR-3
  cache keys of fault-free configs pinned;
* the skip-is-loud satellite: faults aimed at unknown nodes record
  ``fault.skipped`` telemetry/trace events instead of vanishing;
* an active-but-idle controller leaves the physics bit-identical.
"""

from __future__ import annotations

import asyncio
import hashlib
import json

import pytest

from repro.experiments import (
    ExperimentConfig,
    StackSpec,
    config_hash,
    get_scenario,
    run_experiment,
)
from repro.experiments.cli import main as cli_main
from repro.faults import (
    ChurnInjector,
    CrashSchedule,
    FaultController,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)
from repro.gossip import GossipSystem
from repro.pubsub import TopicFilter
from repro.registry import parse_spec_overrides
from repro.runtime.host import NodeHost
from repro.runtime.transport import MemoryTransport
from repro.sim import Network, ProcessRegistry, Simulator, TraceRecorder
from repro.telemetry import Telemetry

# Pinned on the PR-2 tree (see tests/test_registry_specs.py): fault-free
# configs must keep hashing to their historical cache keys.
SMOKE_CONFIG_HASH = "1cf8fcce9dce9547b8ba7d369156e39045a0194e020f154fe35dce71c1866442"


def _result_sha(result) -> str:
    blob = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _physics(result) -> dict:
    """A result's measured payload, without the config that produced it."""
    payload = result.to_dict()
    payload.pop("config")
    return payload


# ---------------------------------------------------------------------------
# Plan codec + validation
# ---------------------------------------------------------------------------


class TestFaultPlanCodec:
    def test_json_round_trip(self):
        plan = FaultPlan(
            (
                FaultSpec(kind="crash", at=2.0, nodes=("n1", "n2")),
                FaultSpec(kind="churn", at=1.0, until=9.0, down_probability=0.1),
                FaultSpec(kind="partition", at=3.0, heal_after=2.0, fraction=0.25),
                FaultSpec(kind="perturb", at=4.0, until=6.0, loss_rate=0.5),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_entry_pairs(plan.entry_pairs()) == plan

    def test_from_dict_accepts_bare_list_and_schema_wrapper(self):
        entries = [{"kind": "crash", "at": 1.0, "nodes": ["n0"]}]
        assert FaultPlan.from_dict(entries) == FaultPlan.from_dict(
            {"schema": "fault-plan/v1", "faults": entries}
        )

    def test_json_integers_canonicalise_to_floats(self):
        plan = FaultPlan.from_dict([{"kind": "partition", "at": 2, "heal_after": 3}])
        assert plan.entries[0].at == 2.0
        assert isinstance(plan.entries[0].at, float)

    def test_unknown_entry_field_rejected_with_suggestion(self):
        with pytest.raises(FaultPlanError, match="heal_after"):
            FaultPlan.from_dict([{"kind": "partition", "heal_aftr": 3.0}])

    def test_mistyped_entry_values_rejected_at_load(self):
        with pytest.raises(FaultPlanError, match="'at' must be a number"):
            FaultPlan.from_dict([{"kind": "crash", "at": "2", "nodes": ["n0"]}])
        with pytest.raises(FaultPlanError, match="'nodes' must be a list"):
            FaultPlan.from_dict([{"kind": "crash", "at": 2.0, "nodes": "node-001"}])
        with pytest.raises(FaultPlanError, match="'kind' must be a string"):
            FaultPlan.from_dict([{"kind": 3}])
        with pytest.raises(FaultPlanError, match="'loss_rate' must be a number"):
            FaultPlan.from_dict([{"kind": "perturb", "loss_rate": True}])
        with pytest.raises(FaultPlanError, match="list of node ids"):
            FaultPlan.from_dict([{"kind": "crash", "at": 1.0, "nodes": [1, 2]}])
        with pytest.raises(FaultPlanError, match=r"\[node_id, group\] pairs"):
            FaultPlan.from_dict(
                [
                    {
                        "kind": "partition",
                        "at": 1.0,
                        "heal_after": 2.0,
                        "groups": [["node-001", 0], ["node-002"]],
                    }
                ]
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.from_dict([{"kind": "meltdown"}]).validate()

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan((FaultSpec(kind="leave", at=1.0, nodes=("n3",)),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_file(str(path)) == plan

    def test_missing_file_is_a_plan_error(self):
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.from_file("/nonexistent/plan.json")


class TestFaultPlanValidation:
    def test_unknown_node_fails_fast_with_suggestion(self):
        plan = FaultPlan((FaultSpec(kind="crash", at=1.0, nodes=("node-099",)),))
        with pytest.raises(FaultPlanError, match="unknown node ids"):
            plan.validate(node_ids=[f"node-{i:03d}" for i in range(10)])

    def test_entry_beyond_run_end_rejected(self):
        plan = FaultPlan((FaultSpec(kind="partition", at=50.0, heal_after=1.0),))
        with pytest.raises(FaultPlanError, match="can never fire"):
            plan.validate(total_time=10.0)

    def test_bad_probability_rejected(self):
        plan = FaultPlan((FaultSpec(kind="churn", down_probability=1.5),))
        with pytest.raises(FaultPlanError, match="down_probability"):
            plan.validate()

    def test_partition_needs_positive_heal(self):
        plan = FaultPlan((FaultSpec(kind="partition", heal_after=0.0),))
        with pytest.raises(FaultPlanError, match="heal_after"):
            plan.validate()

    def test_inverted_window_rejected(self):
        plan = FaultPlan((FaultSpec(kind="perturb", at=5.0, until=2.0, loss_rate=0.1),))
        with pytest.raises(FaultPlanError, match="until"):
            plan.validate()

    def test_crash_without_targets_rejected(self):
        plan = FaultPlan((FaultSpec(kind="crash", at=1.0),))
        with pytest.raises(FaultPlanError, match="at least one node"):
            plan.validate()

    def test_overlapping_perturb_windows_rejected(self):
        plan = FaultPlan(
            (
                FaultSpec(kind="perturb", at=0.0, until=10.0, loss_rate=0.1),
                FaultSpec(kind="perturb", at=5.0, until=20.0, loss_rate=0.2),
            )
        )
        with pytest.raises(FaultPlanError, match="overlapping perturb"):
            plan.validate()

    def test_open_ended_perturb_overlaps_any_later_window(self):
        plan = FaultPlan(
            (
                FaultSpec(kind="perturb", at=0.0, loss_rate=0.1),  # until run end
                FaultSpec(kind="perturb", at=5.0, until=6.0, loss_rate=0.2),
            )
        )
        with pytest.raises(FaultPlanError, match="overlapping perturb"):
            plan.validate()

    def test_overlapping_partitions_rejected_but_staggered_allowed(self):
        overlapping = FaultPlan(
            (
                FaultSpec(kind="partition", at=1.0, heal_after=5.0),
                FaultSpec(kind="partition", at=3.0, heal_after=1.0),
            )
        )
        with pytest.raises(FaultPlanError, match="overlapping partition"):
            overlapping.validate()
        staggered = FaultPlan(
            (
                FaultSpec(kind="partition", at=1.0, heal_after=2.0),
                FaultSpec(kind="partition", at=3.0, heal_after=1.0),
            )
        )
        staggered.validate()  # back-to-back (heal == next install) is fine

    def test_fields_not_read_by_the_kind_are_rejected(self):
        # A perturb entry naming nodes would silently degrade the WHOLE
        # network while its author believes it is per-node — reject it.
        plan = FaultPlan(
            (FaultSpec(kind="perturb", at=1.0, loss_rate=0.5, nodes=("node-001",)),)
        )
        with pytest.raises(FaultPlanError, match="not read by kind 'perturb'"):
            plan.validate()
        with pytest.raises(FaultPlanError, match="not read by kind 'churn'"):
            FaultPlan((FaultSpec(kind="churn", nodes=("node-003",)),)).validate()
        with pytest.raises(FaultPlanError, match="not read by kind 'crash'"):
            FaultPlan(
                (FaultSpec(kind="crash", at=1.0, nodes=("n0",), loss_rate=0.5),)
            ).validate()

    def test_controller_without_registry_rejects_node_faults(self):
        simulator = Simulator(seed=1)
        plan = FaultPlan((FaultSpec(kind="crash", at=1.0, nodes=("n0",)),))
        with pytest.raises(FaultPlanError, match="registry"):
            FaultController(simulator, Network(simulator), None, plan)

    def test_controller_without_network_rejects_network_faults(self):
        simulator = Simulator(seed=1)
        plan = FaultPlan((FaultSpec(kind="perturb", at=1.0, loss_rate=0.5),))
        with pytest.raises(FaultPlanError, match="network"):
            FaultController(simulator, None, None, plan)


# ---------------------------------------------------------------------------
# Simulator-side behaviour
# ---------------------------------------------------------------------------


def _gossip_fixture(seed: int = 11, nodes: int = 12):
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    system = GossipSystem(
        simulator, network, [f"n{i}" for i in range(nodes)], bootstrap_degree=5
    )
    for node_id in system.node_ids():
        system.subscribe(node_id, TopicFilter("news"))
    return simulator, network, system


class TestSimulatorFaults:
    def test_crash_recover_leave_schedule_applies(self):
        simulator, network, system = _gossip_fixture()
        plan = FaultPlan(
            (
                FaultSpec(kind="crash", at=1.0, nodes=("n1",)),
                FaultSpec(kind="recover", at=3.0, nodes=("n1",)),
                FaultSpec(kind="leave", at=4.0, nodes=("n2",)),
            )
        ).validate(node_ids=system.node_ids())
        controller = FaultController(
            simulator, network, system.registry, plan, telemetry=Telemetry()
        )
        controller.start()
        simulator.run(until=2.0)
        assert not system.registry.get("n1").alive
        simulator.run(until=3.5)
        assert system.registry.get("n1").alive
        simulator.run(until=5.0)
        assert "n2" not in system.registry
        assert controller.counts == {"crash": 1, "recover": 1, "leave": 1}

    def test_partition_heal_reliability(self):
        """Events published during a partition flow after the heal."""
        simulator, network, system = _gossip_fixture()
        plan = FaultPlan(
            (FaultSpec(kind="partition", at=1.0, heal_after=4.0, fraction=0.5),)
        ).validate(node_ids=system.node_ids())
        controller = FaultController(simulator, network, system.registry, plan)
        controller.start()
        simulator.run(until=2.0)  # partition is up
        event = system.publish("n0", topic="news")
        simulator.run(until=4.0)  # still partitioned: the far side is dark
        partitioned_deliveries = len(system.delivery_log.deliveries_of_event(event.event_id))
        assert partitioned_deliveries < len(system.node_ids())
        assert network.stats.dropped_partition > 0
        simulator.run(until=30.0)  # healed at t=5; gossip finishes the job
        delivered_to = {
            record.node_id
            for record in system.delivery_log.deliveries_of_event(event.event_id)
        }
        assert delivered_to == set(system.node_ids())

    def test_back_to_back_partitions_listed_out_of_order_both_apply(self):
        """An earlier window's heal must not erase the next window's install.

        Windows [5, 10] and [0, 5] touch at t=5; listing them out of
        chronological order makes the second window's heal fire *after* the
        first window's install at the shared timestamp, and only the
        generation guard keeps the network split for the full [0, 10).
        """
        simulator, network, system = _gossip_fixture(nodes=4)
        plan = FaultPlan(
            (
                FaultSpec(kind="partition", at=5.0, heal_after=5.0),
                FaultSpec(kind="partition", at=0.0, heal_after=5.0),
            )
        ).validate()
        controller = FaultController(simulator, network, system.registry, plan)
        controller.start()
        simulator.run(until=7.0)  # inside the second window
        assert not network._same_partition("n0", "n3")
        simulator.run(until=11.0)  # past the final heal at t=10
        assert network._same_partition("n0", "n3")

    def test_final_snapshot_reports_a_partition_the_run_ended_under(self):
        config = get_scenario("smoke").config.with_overrides(
            name="smoke-endsplit",
            fault_partition_at=5.0,
            fault_partition_heal_after=100.0,  # never heals within the run
        )
        result = run_experiment(config)
        assert result.final_snapshot.gauge_value("fault.partition_active") == 1.0

    def test_stop_mid_partition_heals_the_network(self):
        """Cancelling the pending heal must not leak a permanent split."""
        simulator, network, system = _gossip_fixture(nodes=4)
        plan = FaultPlan(
            (FaultSpec(kind="partition", at=1.0, heal_after=10.0, fraction=0.5),)
        )
        controller = FaultController(simulator, network, system.registry, plan)
        controller.start()
        simulator.run(until=2.0)  # installed, heal still pending at t=11
        assert not network._same_partition("n0", "n3")
        controller.stop()
        assert network._same_partition("n0", "n3")

    @pytest.mark.parametrize("up_probability", [0.5, 0.0])
    def test_churn_draw_sequence_is_unconditional(self, up_probability):
        """Probability-0 branches still draw, exactly like ChurnInjector.

        Guarding the draws behind ``probability > 0`` would shift every
        subsequent draw in the 'churn' stream for configs with one
        probability at zero — same cache key, different physics.
        """

        def run(use_plan: bool):
            simulator, network, system = _gossip_fixture(seed=8, nodes=10)
            kwargs = dict(
                period=1.0, down_probability=0.4, up_probability=up_probability
            )
            if use_plan:
                plan = FaultPlan(
                    (FaultSpec(kind="churn", rng_stream="churn", **kwargs),)
                )
                FaultController(simulator, network, system.registry, plan).start()
            else:
                ChurnInjector(simulator, system.registry, **kwargs).start()
            simulator.run(until=10.0)
            down = sorted(p.node_id for p in system.registry.all() if not p.alive)
            return down, simulator.processed_events, network.stats.sent

        assert run(True) == run(False)

    def test_perturb_loss_window_suppresses_dissemination(self):
        base = get_scenario("smoke").config
        lossy = base.with_overrides(
            name="smoke-lossy",
            fault_perturb_loss=1.0,  # whole-run blackout
        )
        baseline = run_experiment(base)
        blackout = run_experiment(lossy)
        assert blackout.delivery_ratio < baseline.delivery_ratio
        assert blackout.total_deliveries < baseline.total_deliveries

    def test_perturb_extra_latency_shifts_delivery_latency(self):
        base = get_scenario("smoke").config
        slow = base.with_overrides(name="smoke-slow", fault_perturb_latency=0.5)
        baseline = run_experiment(base)
        slowed = run_experiment(slow)
        assert slowed.reliability.mean_latency > baseline.reliability.mean_latency

    def test_idle_controller_leaves_physics_bit_identical(self):
        """An active-but-idle plan must not perturb a single byte."""
        base = get_scenario("smoke").config
        idle = base.with_overrides(
            name="smoke",  # same name: physics comparison below strips config anyway
            fault_plan=(
                (("kind", "churn"), ("down_probability", 0.0), ("up_probability", 0.0)),
            ),
        )
        assert _physics(run_experiment(idle)) == _physics(run_experiment(base))

    def test_churn_plan_matches_legacy_churn_injector_byte_for_byte(self):
        """Plan-driven churn reproduces the ChurnInjector draw sequence."""

        def run(use_plan: bool):
            simulator, network, system = _gossip_fixture(seed=5, nodes=10)
            if use_plan:
                plan = FaultPlan(
                    (
                        FaultSpec(
                            kind="churn",
                            period=1.0,
                            down_probability=0.3,
                            up_probability=0.5,
                            protected=("n0",),
                            rng_stream="churn",
                        ),
                    )
                )
                FaultController(simulator, network, system.registry, plan).start()
            else:
                ChurnInjector(
                    simulator,
                    system.registry,
                    period=1.0,
                    down_probability=0.3,
                    up_probability=0.5,
                    protected=["n0"],
                ).start()
            simulator.run(until=12.0)
            down = sorted(p.node_id for p in system.registry.all() if not p.alive)
            return down, simulator.processed_events, network.stats.sent

        assert run(True) == run(False)

    def test_churn_runs_are_deterministic_including_snapshots(self, tmp_path):
        config = get_scenario("smoke-churn").config
        shas = []
        streams = []
        for run in ("a", "b"):
            path = tmp_path / f"stream-{run}.jsonl"
            result = run_experiment(
                config, snapshot_sinks=[f"jsonl:{path}"], snapshot_period=2.0
            )
            shas.append(_result_sha(result))
            streams.append(path.read_bytes())
        assert shas[0] == shas[1]
        assert streams[0] == streams[1]
        # The stream actually carries fault telemetry (churn happened).
        assert b"fault.events" in streams[0]


class TestSkipIsLoud:
    def test_crash_schedule_records_skip_for_unknown_node(self):
        simulator = Simulator(seed=3)
        network = Network(simulator)
        registry = ProcessRegistry()
        trace = TraceRecorder()
        telemetry = Telemetry()
        schedule = CrashSchedule(simulator, registry, trace=trace, telemetry=telemetry)
        schedule.add(1.0, "ghost", "crash")
        simulator.run(until=2.0)
        assert schedule.skipped == 1
        assert telemetry.counter_value("fault.skipped", action="crash") == 1
        records = trace.by_category("fault")
        assert len(records) == 1
        assert records[0].node == "ghost"
        assert records[0].details["action"] == "skipped"

    def test_controller_records_skip_when_target_left(self):
        simulator, network, system = _gossip_fixture(nodes=4)
        telemetry = Telemetry()
        plan = FaultPlan(
            (
                FaultSpec(kind="leave", at=1.0, nodes=("n1",)),
                FaultSpec(kind="crash", at=2.0, nodes=("n1",)),  # already gone
            )
        )
        controller = FaultController(
            simulator, network, system.registry, plan, telemetry=telemetry
        )
        controller.start()
        simulator.run(until=3.0)
        assert controller.counts.get("skipped") == 1
        assert telemetry.counter_value("fault.skipped", action="crash") == 1


# ---------------------------------------------------------------------------
# Spec / flat-config integration
# ---------------------------------------------------------------------------


class TestSpecFaultIntegration:
    def test_fault_free_configs_keep_pinned_cache_keys(self):
        smoke = get_scenario("smoke").config
        assert config_hash(smoke) == SMOKE_CONFIG_HASH
        # A spec round trip through the faults-aware StackSpec is free.
        assert config_hash(StackSpec.from_config(smoke).to_config()) == SMOKE_CONFIG_HASH
        assert not any(key.startswith("fault_") for key in smoke.to_dict())

    def test_fault_fields_round_trip_flat_and_nested(self):
        config = ExperimentConfig(
            churn_down_probability=0.07,
            fault_churn_start=2.0,
            fault_partition_at=3.0,
            fault_partition_heal_after=4.0,
            fault_perturb_loss=0.1,
            fault_plan=((("kind", "crash"), ("at", 1.0), ("nodes", ("node-001",))),),
        )
        spec = StackSpec.from_config(config)
        assert spec.faults.churn.down_probability == 0.07
        assert spec.faults.partition.heal_after == 4.0
        assert spec.get("faults.perturb.loss_rate") == 0.1
        assert spec.to_config() == config
        assert StackSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentConfig.from_dict(config.to_dict()) == config
        json.dumps(spec.to_dict())  # nested encoding must be JSON-clean
        json.dumps(config.to_dict())

    def test_dotted_fault_overrides_parse(self):
        overrides = parse_spec_overrides(
            ["faults.churn.down_probability=0.05", "faults.partition.heal_after=3"]
        )
        assert overrides == {
            "faults.churn.down_probability": 0.05,
            "faults.partition.heal_after": 3,
        }
        spec = StackSpec().with_values(overrides)
        assert spec.faults.churn.down_probability == 0.05
        # int → float widening applies on deep paths too
        assert spec.faults.partition.heal_after == 3.0
        assert isinstance(spec.faults.partition.heal_after, float)
        # legacy flat aliases keep working
        assert (
            StackSpec().with_value("churn_down_probability", 0.2).faults.churn.down_probability
            == 0.2
        )

    def test_fault_plan_is_structured_and_not_settable(self):
        from repro.registry import RegistryError

        with pytest.raises(RegistryError, match="--fault"):
            parse_spec_overrides(["faults.plan=x"])

    def test_unknown_faults_spec_field_rejected(self):
        from repro.registry import RegistryError

        with pytest.raises(RegistryError, match="faults"):
            StackSpec.from_dict({"faults": {"chrn": {"down_probability": 0.1}}})

    def test_non_numeric_fault_spec_value_is_a_registry_error(self):
        from repro.registry import RegistryError

        with pytest.raises(RegistryError, match="must be a number"):
            StackSpec.from_dict({"faults": {"churn": {"down_probability": "oops"}}})
        # A bool is a misplaced flag, not a 0/1 probability.
        with pytest.raises(RegistryError, match="must be a number"):
            StackSpec.from_dict({"faults": {"churn": {"down_probability": True}}})

    def test_nested_plan_entries_are_validated_and_canonicalised(self):
        from repro.registry import RegistryError

        # Unknown entry fields fail at spec load, not at run time.
        with pytest.raises(RegistryError, match="invalid faults.plan entry"):
            StackSpec.from_dict(
                {"faults": {"plan": [[["kind", "crash"], ["nodez", ["a"]]]]}}
            )
        # JSON integers canonicalise exactly as the --fault file codec does,
        # so the same logical plan hashes to one cache key via either route.
        spec = StackSpec.from_dict(
            {"faults": {"plan": [[["kind", "crash"], ["at", 2], ["nodes", ["node-001"]]]]}}
        )
        via_plan = FaultPlan.from_dict(
            [{"kind": "crash", "at": 2, "nodes": ["node-001"]}]
        ).entry_pairs()
        assert spec.faults.plan == via_plan
        assert config_hash(spec.to_config()) == config_hash(
            StackSpec().with_value("faults.plan", via_plan).to_config()
        )
        # Mapping-form entries — the shape a --fault plan file uses — are
        # accepted too and resolve identically.
        as_mapping = StackSpec.from_dict(
            {"faults": {"plan": [{"kind": "crash", "at": 2, "nodes": ["node-001"]}]}}
        )
        assert as_mapping == spec
        # Malformed entries (neither mapping nor pair list) are clean errors.
        with pytest.raises(RegistryError, match="faults.plan entries"):
            StackSpec.from_dict({"faults": {"plan": [["at"]]}})

    def test_pre_fault_nested_dicts_with_workload_churn_still_load(self):
        # Exactly what StackSpec.to_dict() emitted before the fault layer:
        # churn probabilities inside the workload section.
        spec = StackSpec.from_dict(
            {
                "workload": {
                    "topics": 6,
                    "churn_down_probability": 0.05,
                    "churn_up_probability": 0.4,
                }
            }
        )
        assert spec.workload.topics == 6
        assert spec.faults.churn.down_probability == 0.05
        assert spec.faults.churn.up_probability == 0.4
        # An explicit faults.churn value wins over the legacy spelling.
        merged = StackSpec.from_dict(
            {
                "workload": {"churn_down_probability": 0.05},
                "faults": {"churn": {"down_probability": 0.2}},
            }
        )
        assert merged.faults.churn.down_probability == 0.2

    def test_from_flat_compiles_expected_entries(self):
        config = ExperimentConfig(
            nodes=8,
            churn_down_probability=0.05,
            fault_partition_heal_after=2.0,
            fault_perturb_loss=0.5,
        )
        plan = FaultPlan.from_flat(config)
        kinds = [entry.kind for entry in plan.entries]
        assert kinds == ["churn", "partition", "perturb"]
        churn = plan.entries[0]
        assert churn.rng_stream == "churn"  # ChurnInjector parity
        assert churn.period == config.round_period
        assert churn.protected == config.publisher_ids()
        assert plan.needs_registry()

    def test_tuned_but_disabled_fault_fields_fail_loudly(self):
        # Setting the partition's timing without enabling it would silently
        # measure a fault-free run under a different cache key.
        with pytest.raises(FaultPlanError, match="heal_after"):
            FaultPlan.from_flat(ExperimentConfig(fault_partition_at=2.0))
        with pytest.raises(FaultPlanError, match="down_probability"):
            FaultPlan.from_flat(ExperimentConfig(fault_churn_start=2.0))
        with pytest.raises(FaultPlanError, match="extra_latency"):
            FaultPlan.from_flat(ExperimentConfig(fault_perturb_start=2.0))

    def test_plan_can_target_infra_nodes(self):
        # The validation universe is the built system's registry, so plans
        # may kill infrastructure participants (the docstring's "kill the
        # rendezvous node" use case), not just client nodes.
        config = get_scenario("smoke").config.with_overrides(
            name="smoke-broker-kill",
            system="brokers",
            fault_plan=((("kind", "crash"), ("at", 2.0), ("nodes", ("broker-0",))),),
        )
        result = run_experiment(config)
        assert result is not None

    def test_garbage_entry_pairs_are_a_plan_error(self):
        with pytest.raises(FaultPlanError, match="pairs"):
            FaultPlan.from_flat(ExperimentConfig(fault_plan=("x",)))

    def test_smoke_scenarios_registered(self):
        assert get_scenario("smoke-churn").config.churn_down_probability > 0
        assert get_scenario("smoke-partition").config.fault_partition_heal_after > 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestFaultCli:
    def test_run_with_fault_plan_file(self, tmp_path, capsys):
        plan = FaultPlan(
            (FaultSpec(kind="crash", at=2.0, nodes=("node-001",)),)
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        code = cli_main(["run", "smoke", "--no-cache", "--fault", str(path)])
        assert code == 0
        assert "smoke" in capsys.readouterr().out

    def test_run_with_invalid_fault_plan_is_clean_error(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            FaultPlan((FaultSpec(kind="crash", at=2.0, nodes=("node-999",)),)).to_json()
        )
        with pytest.raises(SystemExit, match="unknown node ids"):
            cli_main(["run", "smoke", "--no-cache", "--fault", str(path)])

    def test_sweeping_the_structured_plan_field_is_blocked(self):
        with pytest.raises(SystemExit, match="structured"):
            cli_main(
                [
                    "sweep",
                    "smoke",
                    "--no-cache",
                    "--param",
                    "faults.plan",
                    "--values",
                    "x",
                ]
            )

    def test_dangling_partition_timing_is_a_clean_cli_error(self):
        with pytest.raises(SystemExit, match="heal_after"):
            cli_main(
                ["run", "smoke", "--no-cache", "--set", "faults.partition.at=2"]
            )

    def test_bad_fault_override_is_a_clean_cli_error(self):
        with pytest.raises(SystemExit, match="down_probability"):
            cli_main(
                [
                    "run",
                    "smoke",
                    "--no-cache",
                    "--set",
                    "faults.churn.down_probability=1.5",
                ]
            )

    def test_bad_swept_fault_value_is_a_clean_cli_error(self):
        with pytest.raises(SystemExit, match="down_probability"):
            cli_main(
                [
                    "sweep",
                    "smoke",
                    "--no-cache",
                    "--param",
                    "faults.churn.down_probability",
                    "--values",
                    "0.1,1.5",
                ]
            )

    def test_sweep_over_fault_path(self, capsys):
        code = cli_main(
            [
                "sweep",
                "smoke",
                "--no-cache",
                "--param",
                "faults.churn.down_probability",
                "--values",
                "0,0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "churn_down_probability=0" in out

    def test_describe_shows_fault_paths(self, capsys):
        code = cli_main(["describe", "smoke-partition"])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults.partition.heal_after = 3.0" in out


# ---------------------------------------------------------------------------
# Live runtime
# ---------------------------------------------------------------------------


class TestLiveFaults:
    NODES = 8

    def _run_partition_cluster(self):
        """Live partition-heal: publish during the split, deliver after."""

        async def scenario():
            plan = FaultPlan(
                # Units at time_scale 20: install immediately, heal after 4
                # units (0.2s).  The window is kept shorter than the CYCLON
                # view depth on purpose: every shuffle initiated across the
                # split optimistically drops its target, so a partition that
                # outlives the cross-group view entries splits the overlay
                # for good (exactly the §3.2 maintenance cost the fault
                # layer exists to exercise).
                (FaultSpec(kind="partition", at=0.0, heal_after=4.0, fraction=0.5),)
            )
            host = NodeHost(
                MemoryTransport(), seed=42, time_scale=20.0, fault_plan=plan
            )
            node_ids = [f"node-{i:03d}" for i in range(self.NODES)]
            host.add_nodes(node_ids)
            await host.start()
            for node_id in node_ids:
                host.subscribe(node_id, TopicFilter("news"))
            await asyncio.sleep(0.05)  # partition is installed and active
            event = host.publish("node-000", topic="news")
            await asyncio.sleep(0.1)  # still split: far group stays dark
            mid_run = {
                record.node_id
                for record in host.delivery_log.deliveries_of_event(event.event_id)
            }
            await asyncio.sleep(2.0)  # healed at 0.2s; gossip catches up
            await host.stop()
            delivered_to = {
                record.node_id
                for record in host.delivery_log.deliveries_of_event(event.event_id)
            }
            return host, mid_run, delivered_to, set(node_ids)

        return asyncio.run(scenario())

    def test_partition_heal_reliability_on_memory_transport(self):
        host, mid_run, delivered_to, universe = self._run_partition_cluster()
        # sorted node-000..003 form group 1; the publisher is in it, so the
        # other half must have been dark while the partition held...
        assert mid_run < universe
        assert host.network.stats.dropped_partition > 0
        # ...and lit up after the heal.
        assert delivered_to == universe

    def test_stop_and_restart_node(self):
        async def scenario():
            host = NodeHost(MemoryTransport(), seed=7, time_scale=50.0)
            host.add_nodes([f"node-{i:03d}" for i in range(4)])
            await host.start()
            host.stop_node("node-002")
            assert not host.registry.get("node-002").alive
            assert not host.network.is_alive("node-002")
            host.restart_node("node-002")
            assert host.registry.get("node-002").alive
            assert host.network.is_alive("node-002")
            await host.stop()

        asyncio.run(scenario())

    def test_spec_mode_host_compiles_faults_from_scenario(self):
        async def scenario():
            spec = get_scenario("smoke-churn").spec.with_values({"nodes": 6})
            host = NodeHost(MemoryTransport(), seed=spec.seed, time_scale=50.0, spec=spec)
            await host.start()
            assert host.fault_controller is not None
            assert host.fault_controller.plan.needs_registry()
            await host.stop()
            assert host.fault_controller is None

        asyncio.run(scenario())

    def test_unsatisfiable_plan_fails_host_start_and_tears_down(self):
        async def scenario():
            plan = FaultPlan((FaultSpec(kind="crash", at=1.0, nodes=("ghost",)),))
            host = NodeHost(MemoryTransport(), seed=7, fault_plan=plan)
            host.add_nodes(["node-000"])
            with pytest.raises(FaultPlanError, match="unknown node ids"):
                await host.start()
            # start() tore the half-started cluster down itself: nothing is
            # left running and a second stop() is a clean no-op.
            assert not host._started
            assert host.fault_controller is None
            await host.stop()

        asyncio.run(scenario())

    def test_live_perturb_loss_drops_frames(self):
        async def scenario():
            plan = FaultPlan(
                (FaultSpec(kind="perturb", at=0.0, loss_rate=1.0),)
            )
            host = NodeHost(MemoryTransport(), seed=9, time_scale=50.0, fault_plan=plan)
            host.add_nodes([f"node-{i:03d}" for i in range(4)])
            await host.start()
            for node_id in host.node_ids():
                host.subscribe(node_id, TopicFilter("news"))
            event = host.publish("node-000", topic="news")
            await asyncio.sleep(0.3)
            await host.stop()
            delivered_to = {
                record.node_id
                for record in host.delivery_log.deliveries_of_event(event.event_id)
            }
            # Total blackout: nothing crosses the wire, only the publisher's
            # local delivery can exist.
            assert delivered_to <= {"node-000"}
            assert host.network.stats.lost > 0

        asyncio.run(scenario())
