"""Tests for the workload generators."""

from __future__ import annotations

import random

import pytest

from tests.conftest import build_gossip_system
from repro.pubsub import TopicFilter
from repro.workloads import (
    AttributeInterest,
    CommunityInterest,
    ContentPublicationWorkload,
    SubscriptionChurnWorkload,
    TopicPopularity,
    TopicPublicationWorkload,
    UniformInterest,
    ZipfInterest,
)


class TestTopicPopularity:
    def test_uniform_and_zipf_construction(self):
        uniform = TopicPopularity.uniform(4)
        zipf = TopicPopularity.zipf(4, exponent=1.0)
        assert len(uniform.topics) == 4
        assert uniform.normalised_weights == [0.25] * 4
        assert zipf.normalised_weights[0] > zipf.normalised_weights[-1]

    def test_hierarchy_names_contain_separator(self):
        hierarchy = TopicPopularity.hierarchy(2, 3)
        assert len(hierarchy.topics) == 6
        assert all("/" in name for name in hierarchy.topics)

    def test_sample_respects_weights(self):
        popularity = TopicPopularity(topics=["hot", "cold"], weights=[0.95, 0.05])
        rng = random.Random(1)
        draws = [popularity.sample(rng) for _ in range(400)]
        assert draws.count("hot") > 300

    def test_sample_many_distinct(self):
        popularity = TopicPopularity.zipf(6)
        rng = random.Random(2)
        sample = popularity.sample_many(rng, 4, distinct=True)
        assert len(sample) == len(set(sample)) == 4
        assert set(popularity.sample_many(rng, 10, distinct=True)) == set(popularity.topics)

    def test_subscriber_quota_gives_everyone_at_least_one(self):
        popularity = TopicPopularity.zipf(5, exponent=1.5)
        quota = popularity.subscriber_quota(100)
        assert all(count >= 1 for count in quota.values())
        assert quota[popularity.topics[0]] > quota[popularity.topics[-1]]

    def test_probability_of(self):
        popularity = TopicPopularity.uniform(4)
        assert popularity.probability_of(popularity.topics[0]) == pytest.approx(0.25)
        assert popularity.probability_of("unknown") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TopicPopularity(topics=[], weights=[])
        with pytest.raises(ValueError):
            TopicPopularity(topics=["a"], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            TopicPopularity(topics=["a"], weights=[0.0])


class TestInterestModels:
    def node_ids(self, count=40):
        return [f"node-{index}" for index in range(count)]

    def test_uniform_interest_counts(self):
        popularity = TopicPopularity.uniform(8)
        assignment = UniformInterest(popularity, topics_per_node=3).assign(
            self.node_ids(), random.Random(1)
        )
        assert all(assignment.subscription_count(node) == 3 for node in self.node_ids())
        assert set(assignment.all_topics()).issubset(set(popularity.topics))

    def test_zipf_interest_has_variation(self):
        popularity = TopicPopularity.zipf(16)
        assignment = ZipfInterest(popularity, min_topics=1, max_topics=8).assign(
            self.node_ids(100), random.Random(2)
        )
        counts = [assignment.subscription_count(node) for node in self.node_ids(100)]
        assert min(counts) >= 1 and max(counts) <= 8
        assert len(set(counts)) > 2  # genuinely heterogeneous

    def test_community_interest_clusters(self):
        popularity = TopicPopularity.uniform(8)
        model = CommunityInterest(popularity, communities=4, topics_per_node=2, crossover_probability=0.0)
        assignment = model.assign(self.node_ids(40), random.Random(3))
        # Nodes 0 and 4 are in the same community and share the topic pool.
        assert set(assignment.topics_of("node-0")).issubset(set(assignment.topics_of("node-0")))
        community_topics = set(assignment.topics_of("node-0")) | set(assignment.topics_of("node-4"))
        other_community = set(assignment.topics_of("node-1")) | set(assignment.topics_of("node-5"))
        assert community_topics != other_community

    def test_attribute_interest_filters_and_events(self):
        model = AttributeInterest(filters_per_node=2)
        assignment = model.assign(self.node_ids(10), random.Random(4))
        assert all(assignment.subscription_count(node) == 2 for node in self.node_ids(10))
        attributes = model.random_event_attributes(random.Random(5))
        assert set(attributes) == {"category", "level"}

    def test_apply_subscribes_on_system(self):
        system = build_gossip_system(nodes=10, seed=50)
        popularity = TopicPopularity.uniform(4)
        assignment = UniformInterest(popularity, topics_per_node=2).assign(
            system.node_ids(), random.Random(1)
        )
        assignment.apply(system)
        assert all(
            system.ledger.account(node_id).filters_placed == 2 for node_id in system.node_ids()
        )

    def test_validation(self):
        popularity = TopicPopularity.uniform(4)
        with pytest.raises(ValueError):
            UniformInterest(popularity, topics_per_node=0)
        with pytest.raises(ValueError):
            ZipfInterest(popularity, min_topics=3, max_topics=2)
        with pytest.raises(ValueError):
            CommunityInterest(popularity, crossover_probability=1.5)
        with pytest.raises(ValueError):
            AttributeInterest(categories=[])


class TestPublicationWorkloads:
    def test_topic_workload_publishes_at_rate(self):
        system = build_gossip_system(nodes=20, seed=51)
        for node_id in system.node_ids():
            system.subscribe(node_id, TopicFilter("topic-00"))
        popularity = TopicPopularity.uniform(2)
        workload = TopicPublicationWorkload(
            system, system.simulator, popularity, publishers=system.node_ids()[:4], rate=3.0
        )
        scheduled = workload.start(duration=10.0, start_at=1.0)
        system.run(until=30.0)
        assert scheduled == 30
        assert workload.schedule.count() == 30
        assert sum(workload.schedule.by_topic().values()) == 30
        assert system.delivery_log.total_deliveries() > 0

    def test_content_workload_uses_attribute_space(self):
        system = build_gossip_system(nodes=10, seed=52)
        model = AttributeInterest()
        workload = ContentPublicationWorkload(
            system, system.simulator, model, publishers=system.node_ids()[:2], rate=2.0
        )
        workload.start(duration=5.0)
        system.run(until=10.0)
        assert workload.schedule.count() == 10
        assert all("category" in event.attributes for event in workload.schedule.events)

    def test_invalid_workload_parameters(self):
        system = build_gossip_system(nodes=4, seed=53)
        popularity = TopicPopularity.uniform(2)
        with pytest.raises(ValueError):
            TopicPublicationWorkload(system, system.simulator, popularity, publishers=[], rate=1.0)
        with pytest.raises(ValueError):
            TopicPublicationWorkload(
                system, system.simulator, popularity, publishers=["node-0"], rate=0.0
            )


class TestSubscriptionChurn:
    def test_churn_flips_subscriptions(self):
        system = build_gossip_system(nodes=20, seed=54)
        popularity = TopicPopularity.zipf(6)
        churn = SubscriptionChurnWorkload(
            system,
            system.simulator,
            popularity,
            churners=system.node_ids(),
            operations_per_unit=4.0,
        )
        scheduled = churn.start(duration=20.0)
        system.run(until=25.0)
        assert scheduled == 80
        assert churn.stats.total == 80
        assert churn.stats.subscribes >= churn.stats.unsubscribes
        # The subscription table must agree with the workload's view.
        active = churn.active_subscriptions()
        for node_id, topic in active:
            assert topic in system.subscriptions.topics_of_node(node_id)

    def test_popular_topics_attract_more_churn(self):
        system = build_gossip_system(nodes=20, seed=55)
        popularity = TopicPopularity(topics=["hot", "cold"], weights=[0.9, 0.1])
        churn = SubscriptionChurnWorkload(
            system, system.simulator, popularity, churners=system.node_ids(), operations_per_unit=5.0
        )
        churn.start(duration=40.0)
        system.run(until=45.0)
        assert churn.stats.by_topic.get("hot", 0) > churn.stats.by_topic.get("cold", 0)

    def test_validation(self):
        system = build_gossip_system(nodes=4, seed=56)
        popularity = TopicPopularity.uniform(2)
        with pytest.raises(ValueError):
            SubscriptionChurnWorkload(
                system, system.simulator, popularity, churners=[], operations_per_unit=1.0
            )
        with pytest.raises(ValueError):
            SubscriptionChurnWorkload(
                system,
                system.simulator,
                popularity,
                churners=["node-0"],
                operations_per_unit=0.0,
            )
