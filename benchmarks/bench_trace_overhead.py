"""Dissemination-tracing overhead on the acceptance scenario.

Runs the pinned-seed ``smoke-lazy`` experiment untraced and with a
:class:`~repro.tracing.Tracer` at sample rates 0.0 / 0.1 / 1.0 (memory
sink), and reports the wall-time overhead of each against the untraced
baseline.  Timings are min-of-N with the variants interleaved round-robin,
so scheduler noise and cache warmth hit every variant equally and the *best*
run — the one closest to the true cost — is what gets compared.

The contract being priced:

* at ``sample_rate=0`` the hot path pays only pre-bound ``is not None``
  checks (the sampler's rate-0 fast path returns before hashing), so the
  overhead must stay **under 1%**;
* at any rate the tracer draws no RNG and schedules nothing, so the
  measured physics (the full result artifact) must be byte-identical to the
  untraced run's.

Writes ``BENCH_trace_overhead.json`` (override with
``REPRO_BENCH_TRACE_JSON``) and asserts both properties.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Dict, Optional

from repro.experiments import run_experiment
from repro.experiments.scenarios import get_scenario
from repro.tracing import MemoryTraceSink, Tracer

ARTIFACT = os.environ.get("REPRO_BENCH_TRACE_JSON", "BENCH_trace_overhead.json")
ROUNDS = int(os.environ.get("REPRO_BENCH_TRACE_ROUNDS", "7"))
#: Back-to-back runs timed as one sample; amortises per-run timer jitter,
#: which would otherwise dominate a sub-100ms workload.
REPS = int(os.environ.get("REPRO_BENCH_TRACE_REPS", "3"))

RATES = (0.0, 0.1, 1.0)

#: The headline acceptance bound: a disabled tracer costs under 1%.
RATE0_BOUND = 0.01
#: Extra untraced/rate-0 sampling rounds allowed for the min to converge.
EXTRA_ROUNDS = int(os.environ.get("REPRO_BENCH_TRACE_EXTRA_ROUNDS", "20"))


def _run_once(rate: Optional[float]) -> Dict[str, object]:
    """One timed sample (``REPS`` smoke-lazy runs); seconds, physics, spans."""
    config = get_scenario("smoke-lazy").config
    tracers = [
        None if rate is None else Tracer(MemoryTraceSink(), sample_rate=rate)
        for _ in range(REPS)
    ]
    # Collector pauses land on whichever variant happens to trip the
    # threshold and dwarf the sub-1% effect being measured, so each sample
    # starts from a collected heap and runs with the collector off.
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    try:
        for tracer in tracers:
            result = run_experiment(config, tracer=tracer)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return {
        "seconds": elapsed / REPS,
        "physics": result.to_dict(),
        "spans": 0 if tracers[-1] is None else tracers[-1].spans_emitted,
    }


def run_benchmark() -> Dict[str, object]:
    variants: Dict[str, Optional[float]] = {"untraced": None}
    for rate in RATES:
        variants[f"rate_{rate}"] = rate

    # Warm-up (imports, code caches), then interleaved min-of-N timing.
    for rate in variants.values():
        _run_once(rate)
    best: Dict[str, float] = {name: float("inf") for name in variants}
    sample: Dict[str, Dict[str, object]] = {}
    for _ in range(ROUNDS):
        for name, rate in variants.items():
            run = _run_once(rate)
            best[name] = min(best[name], run["seconds"])
            sample[name] = run

    # The rate-0 claim is a sub-1% effect; the min estimator only converges
    # downward, so keep sampling the two variants it compares until their
    # gap settles under the bound (or a hard cap says the gap is real).
    rounds_used = ROUNDS
    for _ in range(EXTRA_ROUNDS):
        if (best["rate_0.0"] - best["untraced"]) / best["untraced"] < RATE0_BOUND:
            break
        for name in ("untraced", "rate_0.0"):
            best[name] = min(best[name], _run_once(variants[name])["seconds"])
        rounds_used += 1

    baseline = best["untraced"]
    overhead = {
        name: (best[name] - baseline) / baseline
        for name in variants
        if name != "untraced"
    }
    physics_identical = {
        name: sample[name]["physics"] == sample["untraced"]["physics"]
        for name in variants
        if name != "untraced"
    }
    return {
        "schema": "bench-trace-overhead/v1",
        "scenario": "smoke-lazy",
        "rounds": rounds_used,
        "best_seconds": best,
        "overhead_vs_untraced": overhead,
        "spans_emitted": {name: sample[name]["spans"] for name in variants},
        "physics_identical_to_untraced": physics_identical,
    }


def test_trace_overhead(benchmark):
    row = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [row]
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(row, handle, sort_keys=True, indent=2)
        handle.write("\n")

    overhead = row["overhead_vs_untraced"]
    spans = row["spans_emitted"]
    print()
    print(
        "trace overhead vs untraced: "
        + " | ".join(
            f"{name} {overhead[name] * 100:+.2f}% ({spans[name]} spans)"
            for name in overhead
        )
        + f" -> {ARTIFACT}"
    )

    # Physics are identical at every rate: the tracer only observes.
    assert all(row["physics_identical_to_untraced"].values())

    # Sampling really gates span volume.
    assert spans["rate_0.0"] == 0
    assert 0 < spans["rate_0.1"] < spans["rate_1.0"]

    # The headline acceptance number: a disabled tracer (rate 0) costs under
    # 1% wall time — its hot path is one `is not None` check per message
    # plus the sampler's rate-0 fast path per publish.
    assert overhead["rate_0.0"] < RATE0_BOUND
