"""Experiment F4 (Figure 4): the basic push gossip algorithm.

Sweeps the fanout F and the message loss rate, measuring delivery ratio and
rounds-to-delivery — the classic epidemic behaviour the fair protocol must
preserve.  Expected shape: reliability rises steeply with F and saturates
near F≈log(n); higher loss shifts the curve but does not break dissemination
once the fanout is comfortably above the threshold; rounds-to-delivery
shrinks as F grows.
"""

from __future__ import annotations

from common import BASE_CONFIG, attach_extra_info, print_results, run_sweep


def run_sweeps():
    base = BASE_CONFIG.with_overrides(
        name="fig4",
        system="gossip",
        interest_model="uniform",
        topics_per_node=2,
        topics=4,
        nodes=128,
        duration=15.0,
        drain_time=15.0,
        publication_rate=2.0,
    )
    fanout_results = run_sweep(base, "fanout", [1, 2, 3, 5, 8])
    loss_results = run_sweep(
        base.with_overrides(fanout=4, name="fig4-loss"), "loss_rate", [0.0, 0.05, 0.1, 0.2]
    )
    return fanout_results, loss_results


def test_fig4_push_gossip_reliability(benchmark):
    fanout_results, loss_results = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    print_results("Figure 4 — push gossip: delivery ratio and rounds vs fanout", fanout_results)
    print_results("Figure 4 — push gossip: delivery ratio vs message loss (F=4)", loss_results)
    attach_extra_info(benchmark, list(fanout_results) + list(loss_results))

    ratios = [result.reliability.delivery_ratio for result in fanout_results]
    # Reliability is monotone (within noise) in the fanout and saturates high.
    assert ratios[-1] > 0.99
    assert ratios[-1] >= ratios[0]
    assert ratios[0] < 1.0 or ratios[0] <= ratios[-1]
    # Latency (in rounds) shrinks as the fanout grows.
    assert (
        fanout_results[-1].reliability.mean_rounds <= fanout_results[0].reliability.mean_rounds
    )
    # Moderate loss degrades reliability only mildly at F=4.
    assert loss_results[-1].reliability.delivery_ratio > 0.9
