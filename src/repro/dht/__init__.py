"""Structured (DHT-based) dissemination baselines discussed in §3.1 and §4.1."""

from .dks import DksNode, DksSystem
from .idspace import IdSpace
from .pastry import PastryRouter, RouteResult
from .scribe import ScribeNode, ScribeSystem
from .splitstream import SplitStreamSystem

__all__ = [
    "IdSpace",
    "PastryRouter",
    "RouteResult",
    "ScribeNode",
    "ScribeSystem",
    "SplitStreamSystem",
    "DksNode",
    "DksSystem",
]
