"""Run manifests: per-target provenance of one campaign execution.

The executor writes ``manifest.json`` into the campaign's output directory
after every run.  The manifest is split into a *canonical* part and a
*timing* part:

* the canonical part (campaign name, package version, per-service point
  hashes with cached/computed flags and cache-entry provenance, per-target
  inputs/outputs, cache totals) is a deterministic function of the spec and
  the cache state — two warm runs of the same campaign produce
  byte-identical canonical JSON, which the incremental-re-run tests pin;
* the timing part (wall-clock seconds, per-service elapsed time, planning
  waves) is measured and therefore excluded from :meth:`RunManifest.canonical_json`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["MANIFEST_SCHEMA", "PointRecord", "ServiceRecord", "TargetRecord", "RunManifest"]

#: Schema tag of the manifest layout; ``repro report`` sniffs on it.
MANIFEST_SCHEMA = "campaign-manifest/v1"


@dataclass(frozen=True)
class PointRecord:
    """One grid point of one service: identity plus cache provenance."""

    name: str
    config_hash: str
    cached: bool
    #: ``version``/``created_at`` of the cache entry serving this point
    #: (read back from the entry's provenance block; absent for entries
    #: written before provenance recording existed).
    provenance: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "config_hash": self.config_hash,
            "cached": self.cached,
        }
        if self.provenance:
            payload["provenance"] = dict(self.provenance)
        return payload


@dataclass
class ServiceRecord:
    """What happened to one service: status plus per-point outcomes."""

    name: str
    status: str  # "done" | "failed" | "skipped" | "pending"
    points: List[PointRecord] = field(default_factory=list)
    error: str = ""
    elapsed_seconds: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for point in self.points if point.cached)

    @property
    def computed(self) -> int:
        return sum(1 for point in self.points if not point.cached)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "status": self.status,
            "points": [point.to_dict() for point in self.points],
            "cache_hits": self.cache_hits,
            "computed": self.computed,
        }
        if self.error:
            payload["error"] = self.error
        return payload


@dataclass
class TargetRecord:
    """What happened to one target: the inputs used and artifacts written."""

    name: str
    status: str  # "done" | "failed" | "skipped" | "pending"
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    config_hashes: List[str] = field(default_factory=list)
    error: str = ""

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "status": self.status,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "config_hashes": list(self.config_hashes),
        }
        if self.error:
            payload["error"] = self.error
        return payload


@dataclass
class RunManifest:
    """Everything one campaign execution did, JSON-round-trippable."""

    campaign: str
    version: str
    services: Dict[str, ServiceRecord] = field(default_factory=dict)
    targets: Dict[str, TargetRecord] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    waves: int = 0

    def totals(self) -> Dict[str, int]:
        done = [record for record in self.services.values() if record.status == "done"]
        return {
            "services": len(self.services),
            "targets": len(self.targets),
            "points": sum(len(record.points) for record in done),
            "cache_hits": sum(record.cache_hits for record in done),
            "computed": sum(record.computed for record in done),
        }

    def canonical_dict(self) -> Dict[str, object]:
        """The deterministic part (no timing): what the pinned tests hash."""
        return {
            "schema": MANIFEST_SCHEMA,
            "campaign": self.campaign,
            "version": self.version,
            "totals": self.totals(),
            "cache": dict(self.cache_stats),
            "services": {
                name: record.to_dict() for name, record in self.services.items()
            },
            "targets": {
                name: record.to_dict() for name, record in self.targets.items()
            },
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical_dict(), sort_keys=True, indent=2)

    def to_dict(self) -> Dict[str, object]:
        payload = self.canonical_dict()
        payload["timing"] = {
            "wall_seconds": self.wall_seconds,
            "waves": self.waves,
            "services": {
                name: record.elapsed_seconds
                for name, record in self.services.items()
                if record.status == "done"
            },
        }
        return payload

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True, indent=2)
            handle.write("\n")

    def describe(self) -> str:
        """The one-line summary the CLI prints after a run."""
        totals = self.totals()
        corrupt = self.cache_stats.get("corrupt", 0)
        line = (
            f"campaign {self.campaign}: {totals['targets']} target(s), "
            f"{totals['points']} point(s) | cache hits: {totals['cache_hits']} | "
            f"computed: {totals['computed']} | waves: {self.waves} | "
            f"elapsed: {self.wall_seconds:.2f}s"
        )
        if corrupt:
            line += f" | corrupt cache entries: {corrupt}"
        return line
