"""Gossip-based event dissemination (Figure 4 of the paper and variants)."""

from .buffers import BufferedEvent, EventBuffer, SELECTION_STRATEGIES
from .lazy import (
    LAZY_DIGEST_KIND,
    LAZY_PUSH_KIND,
    LAZY_REPLY_KIND,
    LAZY_REQUEST_KIND,
    LazyPushGossipNode,
    eager_push_rounds,
    lazy_store_ids,
)
from .push import GOSSIP_MESSAGE_KIND, GossipMessage, PushGossipNode
from .pushpull import DigestMessage, PullRequest, PushPullGossipNode
from .system import GossipSystem

__all__ = [
    "EventBuffer",
    "BufferedEvent",
    "SELECTION_STRATEGIES",
    "GossipMessage",
    "PushGossipNode",
    "GOSSIP_MESSAGE_KIND",
    "PushPullGossipNode",
    "DigestMessage",
    "PullRequest",
    "LazyPushGossipNode",
    "lazy_store_ids",
    "eager_push_rounds",
    "LAZY_PUSH_KIND",
    "LAZY_DIGEST_KIND",
    "LAZY_REQUEST_KIND",
    "LAZY_REPLY_KIND",
    "GossipSystem",
]
