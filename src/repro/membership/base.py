"""Membership service interfaces.

A membership service answers one question for a dissemination protocol:
*which peers may I gossip with right now?*  The paper's Figure 4 calls this
``SELECTPARTICIPANTS(F)``.  Two flavours exist in this repository:

* an **oracle** (:mod:`repro.membership.full`) with global knowledge of the
  alive nodes — convenient for experiments that want to isolate the
  dissemination layer from membership noise;
* **gossip-based peer sampling** (:mod:`repro.membership.cyclon`,
  :mod:`repro.membership.lpbcast`) where each node maintains a partial view
  refreshed by exchanging descriptors over the simulated network, as in the
  protocols referenced by §4.2.

Both are exposed through the same :class:`MembershipComponent` interface so
protocols can swap one for the other without code changes, and the
:class:`MembershipProvider` factory builds one component per node.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Protocol, Sequence

from ..sim.network import Message
from ..sim.node import Process

__all__ = ["MembershipComponent", "MembershipProvider"]


class MembershipComponent:
    """Per-node membership state and behaviour.

    The owning process must:

    * call :meth:`on_round` once per gossip round (before selecting targets);
    * offer every incoming message to :meth:`handle` and skip its own
      processing when the component consumes it;
    * use :meth:`select_partners` to pick gossip targets.
    """

    #: Prefix of message kinds owned by membership components.
    MESSAGE_PREFIX = "membership."

    def __init__(self, owner: Process) -> None:
        self.owner = owner

    def bootstrap(self, seeds: Sequence[str]) -> None:
        """Seed the component with initial contacts (used at join time)."""

    def on_round(self) -> None:
        """Advance the membership protocol by one round (may send messages)."""

    def handle(self, message: Message) -> bool:
        """Process a membership message; return ``True`` if it was consumed."""
        return False

    def select_partners(
        self, count: int, rng: random.Random, exclude: Iterable[str] = ()
    ) -> List[str]:
        """Return up to ``count`` distinct peer ids to gossip with."""
        raise NotImplementedError

    def known_peers(self) -> List[str]:
        """All peers currently known to this component (sorted)."""
        raise NotImplementedError

    def peer_count(self) -> int:
        """Number of currently known peers."""
        return len(self.known_peers())

    def notify_left(self, node_id: str) -> None:
        """Hint that ``node_id`` is suspected dead (e.g. a send failed)."""


#: Factory signature: given the owning process, build its membership component.
MembershipProvider = Callable[[Process], MembershipComponent]
