"""Scenario builders: turn an :class:`ExperimentConfig` into live objects.

The builders know how to construct every dissemination system in the
repository behind a single string name, how to pick the membership provider,
the interest model, and the fairness policy.  They are used by the runner
and directly by a few benchmarks that need finer control (for example the
selfish-node experiment, which swaps node classes for part of the
population).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..brokers import BrokerSystem
from ..core import (
    EXPRESSIVE_POLICY,
    TOPIC_BASED_POLICY,
    FairGossipSystem,
    FairnessPolicy,
    FanoutSchedule,
    PayloadSchedule,
)
from ..damulticast import DataAwareMulticastSystem
from ..dht import DksSystem, ScribeSystem, SplitStreamSystem
from ..gossip import GossipSystem, PushPullGossipNode
from ..membership import cyclon_provider, full_membership_provider, lpbcast_provider
from ..pubsub.topics import TopicHierarchy
from ..sim import BernoulliLoss, Network, NoLoss, Simulator
from ..workloads import (
    AttributeInterest,
    CommunityInterest,
    InterestAssignment,
    TopicPopularity,
    UniformInterest,
    ZipfInterest,
)
from .config import ExperimentConfig

__all__ = [
    "build_simulation",
    "build_membership_provider",
    "build_popularity",
    "build_interest",
    "build_system",
    "resolve_policy",
    "SYSTEM_NAMES",
]

#: Names accepted by :func:`build_system`.
SYSTEM_NAMES = (
    "gossip",
    "fair-gossip",
    "pushpull-gossip",
    "scribe",
    "splitstream",
    "dks",
    "brokers",
    "dam",
)


def build_simulation(config: ExperimentConfig) -> Tuple[Simulator, Network]:
    """Create the simulator and network described by the config."""
    simulator = Simulator(seed=config.seed)
    loss = BernoulliLoss(config.loss_rate) if config.loss_rate > 0 else NoLoss()
    network = Network(simulator, loss_model=loss)
    return simulator, network


def build_membership_provider(config: ExperimentConfig, network: Network):
    """Pick the membership provider named in the config."""
    if config.membership == "full":
        return full_membership_provider(network)
    if config.membership == "lpbcast":
        return lpbcast_provider()
    if config.membership == "cyclon":
        return cyclon_provider()
    raise ValueError(f"unknown membership {config.membership!r}")


def build_popularity(config: ExperimentConfig) -> TopicPopularity:
    """Topic popularity for the config (hierarchical for the dam system)."""
    if config.system == "dam":
        roots = max(2, config.topics // 4)
        children = max(2, config.topics // roots)
        return TopicPopularity.hierarchy(roots, children, exponent=config.topic_exponent)
    if config.topic_exponent <= 0:
        return TopicPopularity.uniform(config.topics)
    return TopicPopularity.zipf(config.topics, exponent=config.topic_exponent)


def build_interest(config: ExperimentConfig, popularity: TopicPopularity):
    """Interest model for the config."""
    if config.interest_model == "uniform":
        return UniformInterest(popularity, topics_per_node=config.topics_per_node)
    if config.interest_model == "zipf":
        return ZipfInterest(
            popularity,
            min_topics=1,
            max_topics=config.max_topics_per_node,
        )
    if config.interest_model == "community":
        return CommunityInterest(popularity, topics_per_node=config.topics_per_node)
    if config.interest_model == "content":
        return AttributeInterest(filters_per_node=config.topics_per_node)
    raise ValueError(f"unknown interest model {config.interest_model!r}")


def resolve_policy(config: ExperimentConfig) -> FairnessPolicy:
    """The fairness policy named in the config."""
    if config.fairness_policy in ("expressive", "figure3"):
        return EXPRESSIVE_POLICY
    if config.fairness_policy in ("topic", "topic-based", "figure2"):
        return TOPIC_BASED_POLICY
    raise ValueError(f"unknown fairness policy {config.fairness_policy!r}")


def build_system(
    config: ExperimentConfig,
    simulator: Simulator,
    network: Network,
    popularity: Optional[TopicPopularity] = None,
):
    """Build the dissemination system named by ``config.system``."""
    node_ids = list(config.node_ids())
    if config.system in ("gossip", "fair-gossip", "pushpull-gossip"):
        provider = build_membership_provider(config, network)
        node_kwargs = {
            "fanout": config.fanout,
            "gossip_size": config.gossip_size,
            "round_period": config.round_period,
        }
        if config.system == "fair-gossip":
            node_kwargs.update(
                {
                    "fanout_schedule": FanoutSchedule(
                        base_fanout=config.fanout,
                        min_fanout=config.min_fanout,
                        max_fanout=config.max_fanout,
                    ),
                    "payload_schedule": PayloadSchedule(
                        base_payload=config.gossip_size,
                        min_payload=config.min_payload,
                        max_payload=config.max_payload,
                    ),
                    "policy": resolve_policy(config),
                    "adapt_fanout": config.adapt_fanout,
                    "adapt_payload": config.adapt_payload,
                }
            )
            return FairGossipSystem(
                simulator,
                network,
                node_ids,
                membership_provider=provider,
                node_kwargs=node_kwargs,
            )
        if config.system == "pushpull-gossip":
            return GossipSystem(
                simulator,
                network,
                node_ids,
                membership_provider=provider,
                node_class=PushPullGossipNode,
                node_kwargs=node_kwargs,
            )
        return GossipSystem(
            simulator,
            network,
            node_ids,
            membership_provider=provider,
            node_kwargs=node_kwargs,
        )
    if config.system == "scribe":
        return ScribeSystem(simulator, network, node_ids)
    if config.system == "splitstream":
        return SplitStreamSystem(simulator, network, node_ids, stripes=config.stripes)
    if config.system == "dks":
        return DksSystem(simulator, network, node_ids)
    if config.system == "brokers":
        return BrokerSystem(simulator, network, node_ids, broker_count=config.broker_count)
    if config.system == "dam":
        hierarchy = TopicHierarchy(popularity.topics if popularity is not None else ())
        return DataAwareMulticastSystem(
            simulator,
            network,
            node_ids,
            hierarchy=hierarchy,
            fanout=config.fanout,
            delegates_per_root=config.delegates_per_root,
        )
    raise ValueError(f"unknown system {config.system!r}; expected one of {SYSTEM_NAMES}")
