"""Make the shared benchmark helpers importable when pytest runs from the repo root."""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
for path in (_HERE, os.path.join(os.path.dirname(_HERE), "src")):
    if path not in sys.path:
        sys.path.insert(0, path)
