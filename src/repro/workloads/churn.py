"""Subscription churn workloads (§5.1).

Node churn (processes crashing and recovering) is injected by the fault
layer (:mod:`repro.faults`); this module covers the *other*
churn the paper worries about: the continuous stream of subscribe and
unsubscribe operations whose maintenance cost must be shared fairly.
:class:`SubscriptionChurnWorkload` keeps a configurable number of
"churning" nodes flipping their subscriptions on and off at per-topic rates,
so experiment S1 can measure who pays for popular-but-volatile topics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..pubsub.filters import TopicFilter
from ..sim.engine import Simulator
from .popularity import TopicPopularity

__all__ = ["SubscriptionChurnWorkload", "ChurnStats"]


@dataclass
class ChurnStats:
    """Counts of churn operations actually performed."""

    subscribes: int = 0
    unsubscribes: int = 0
    by_topic: Dict[str, int] = field(default_factory=dict)

    def record(self, topic: str, subscribed: bool) -> None:
        if subscribed:
            self.subscribes += 1
        else:
            self.unsubscribes += 1
        self.by_topic[topic] = self.by_topic.get(topic, 0) + 1

    @property
    def total(self) -> int:
        """Total churn operations."""
        return self.subscribes + self.unsubscribes


class SubscriptionChurnWorkload:
    """Drives ongoing subscribe/unsubscribe operations on a system.

    Parameters
    ----------
    system / simulator:
        The dissemination system under test and its engine.
    popularity:
        Topics and their churn *weights* — a topic's weight here is the rate
        at which nodes flip subscriptions to it, which the paper notes need
        not match its population size.
    churners:
        Node ids that participate in churn.
    operations_per_unit:
        Churn operations per simulated time unit across all churners.
    """

    def __init__(
        self,
        system,
        simulator: Simulator,
        popularity: TopicPopularity,
        churners: Sequence[str],
        operations_per_unit: float = 2.0,
        rng_name: str = "workload-sub-churn",
    ) -> None:
        if operations_per_unit <= 0:
            raise ValueError("operations_per_unit must be positive")
        if not churners:
            raise ValueError("at least one churner is required")
        self.system = system
        self.simulator = simulator
        self.popularity = popularity
        self.churners = list(churners)
        self.operations_per_unit = operations_per_unit
        self.stats = ChurnStats()
        self._rng_name = rng_name
        #: Current churn-driven subscriptions: (node, topic) -> subscribed?
        self._state: Dict[Tuple[str, str], bool] = {}

    def start(self, duration: float, start_at: float = 0.0) -> int:
        """Schedule churn operations over the window; returns how many."""
        total = int(self.operations_per_unit * duration)
        interval = duration / max(total, 1)
        for index in range(total):
            at = start_at + index * interval
            self.simulator.schedule_at(at, self._churn_once, label="workload-sub-churn")
        return total

    def _churn_once(self) -> None:
        rng = self.simulator.rng.stream(self._rng_name)
        node_id = rng.choice(self.churners)
        topic = self.popularity.sample(rng)
        key = (node_id, topic)
        currently_subscribed = self._state.get(key, False)
        subscription_filter = TopicFilter(topic)
        if currently_subscribed:
            self.system.unsubscribe(node_id, subscription_filter)
            self._state[key] = False
            self.stats.record(topic, subscribed=False)
        else:
            self.system.subscribe(node_id, subscription_filter)
            self._state[key] = True
            self.stats.record(topic, subscribed=True)

    def active_subscriptions(self) -> List[Tuple[str, str]]:
        """Currently churn-held (node, topic) subscriptions, sorted."""
        return sorted(key for key, subscribed in self._state.items() if subscribed)
