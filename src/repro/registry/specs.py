"""Declarative stack specification: nested component specs.

A :class:`StackSpec` describes one complete protocol stack as five nested
component specs — :class:`SystemSpec`, :class:`MembershipSpec`,
:class:`InterestSpec`, :class:`WorkloadSpec`, :class:`PolicySpec` — plus the
run-level fields (name, nodes, seed, duration, drain, loss).  It is the one
construction vocabulary shared by the simulator
(:func:`repro.experiments.runner.run_experiment`) and the live runtime
(``python -m repro serve --scenario ...``): both worlds hand the same spec
to :func:`repro.registry.builtins.build_stack`.

Back-compat contract
--------------------
The flat :class:`~repro.experiments.config.ExperimentConfig` remains the
*canonical cache identity*: :meth:`StackSpec.from_config` /
:meth:`StackSpec.to_config` are an exact field-for-field bijection (driven
by :data:`FLAT_TO_PATH`), so a spec round-trip never changes a cache key,
and :meth:`StackSpec.from_dict` accepts both the nested encoding and the
legacy flat dicts found in PR-1 cache artifacts.

Dotted paths
------------
Every field is addressable by a dotted path (``system.fanout``,
``membership.kind``, ``nodes``); the CLI's ``--set``/``--sweep`` use
:meth:`StackSpec.with_values` and :func:`resolve_config_key`.  Legacy flat
field names (``fanout``) remain accepted as aliases of their path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..faults.plan import (
    FaultPlanError,
    FaultSpec as _PlanFaultSpec,
    jsonify as _plan_jsonify,
    tuplify as _plan_tuplify,
)
from ..topology.spec import TopologyError, TopologySpec
from .base import RegistryError, suggest

__all__ = [
    "SystemSpec",
    "MembershipSpec",
    "InterestSpec",
    "WorkloadSpec",
    "PolicySpec",
    "TelemetrySpec",
    "FaultChurnSpec",
    "FaultPartitionSpec",
    "FaultPerturbSpec",
    "FaultsSpec",
    "TopologySpec",
    "StackSpec",
    "FLAT_TO_PATH",
    "PATH_TO_FLAT",
    "spec_paths",
    "resolve_config_key",
    "resolve_spec_path",
    "parse_scalar",
    "parse_spec_overrides",
]


@dataclass(frozen=True)
class SystemSpec:
    """Which dissemination system to build, and its protocol parameters.

    Parameters irrelevant to the chosen ``kind`` are carried anyway (at
    their defaults) so the flat-config bijection stays exact; each
    component's registry entry documents the subset it actually reads.
    """

    kind: str = "gossip"
    fanout: int = 3
    gossip_size: int = 8
    round_period: float = 1.0
    alpha: float = 0.5
    broker_count: int = 2
    stripes: int = 4
    delegates_per_root: int = 2
    adapt_fanout: bool = True
    adapt_payload: bool = True
    min_fanout: int = 1
    max_fanout: int = 12
    min_payload: int = 1
    max_payload: int = 32
    selfish_fraction: float = 0.0


@dataclass(frozen=True)
class MembershipSpec:
    """Which peer-sampling service backs the gossip systems."""

    kind: str = "cyclon"


@dataclass(frozen=True)
class InterestSpec:
    """How subscriptions are assigned to nodes."""

    kind: str = "zipf"
    topics_per_node: int = 2
    max_topics_per_node: int = 8


@dataclass(frozen=True)
class WorkloadSpec:
    """Topic universe, publication traffic, and subscription churn."""

    topics: int = 16
    topic_exponent: float = 1.0
    publication_rate: float = 4.0
    publisher_fraction: float = 0.25
    event_size: int = 1
    subscription_churn_rate: float = 0.0


@dataclass(frozen=True)
class PolicySpec:
    """Which fairness policy weights measurement (and the adaptive levers)."""

    kind: str = "expressive"


@dataclass(frozen=True)
class FaultChurnSpec:
    """Continuous node churn (the paper's §3.2 instability).

    ``period`` of 0 means "one gossip round" (``system.round_period``);
    ``start``/``stop`` bound the churn window, with 0 meaning run start /
    run end.  Publishers are protected automatically, as the legacy
    ``ChurnInjector`` wiring always did.
    """

    down_probability: float = 0.0
    up_probability: float = 0.5
    period: float = 0.0
    start: float = 0.0
    stop: float = 0.0


@dataclass(frozen=True)
class FaultPartitionSpec:
    """One transient network partition; ``heal_after`` of 0 disables it."""

    at: float = 0.0
    heal_after: float = 0.0
    fraction: float = 0.5


@dataclass(frozen=True)
class FaultPerturbSpec:
    """Link-level degradation window: additive latency and extra loss."""

    start: float = 0.0
    stop: float = 0.0
    extra_latency: float = 0.0
    loss_rate: float = 0.0


@dataclass(frozen=True)
class FaultsSpec:
    """Declarative fault injection: the spec-side face of ``repro.faults``.

    The three fixed sub-specs cover the common shapes (churn, one
    partition, one perturbation window) with sweepable dotted paths
    (``faults.churn.down_probability`` ...); ``plan`` carries arbitrary
    additional :class:`~repro.faults.plan.FaultSpec` entries — crash/
    recover/leave schedules, extra partitions — encoded as tuples of
    ``(field, value)`` pairs (the same encoding the flat config's
    ``fault_plan`` field and ``--fault plan.json`` use).

    Faults are *physics*, not observability: unlike :class:`TelemetrySpec`
    every field here maps onto a flat :class:`ExperimentConfig` field and
    therefore feeds the result-cache identity.
    """

    churn: "FaultChurnSpec" = field(default_factory=FaultChurnSpec)
    partition: "FaultPartitionSpec" = field(default_factory=FaultPartitionSpec)
    perturb: "FaultPerturbSpec" = field(default_factory=FaultPerturbSpec)
    plan: Tuple[Tuple[Tuple[str, object], ...], ...] = ()

    _SUBSPECS = (
        ("churn", FaultChurnSpec),
        ("partition", FaultPartitionSpec),
        ("perturb", FaultPerturbSpec),
    )

    def to_dict(self) -> Dict[str, object]:
        """Nested JSON form; sub-specs at their defaults are omitted."""
        payload: Dict[str, object] = {}
        for name, spec_class in self._SUBSPECS:
            sub = getattr(self, name)
            if sub != spec_class():
                payload[name] = {
                    spec_field.name: getattr(sub, spec_field.name)
                    for spec_field in fields(sub)
                }
        if self.plan:
            payload["plan"] = [
                [[key, _plan_jsonify(value)] for key, value in entry]
                for entry in self.plan
            ]
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "FaultsSpec":
        """Rebuild the section; unknown fields raise :class:`RegistryError`."""
        if not isinstance(payload, Mapping):
            raise RegistryError(
                f"StackSpec section 'faults' must be a mapping, got {type(payload).__name__}"
            )
        known = [name for name, _ in FaultsSpec._SUBSPECS] + ["plan"]
        unknown = [key for key in payload if key not in known]
        if unknown:
            raise RegistryError(
                f"unknown faults spec fields {sorted(unknown)}"
                f"{suggest(unknown[0], known)}; known fields: {', '.join(sorted(known))}"
            )
        values: Dict[str, object] = {}
        for name, spec_class in FaultsSpec._SUBSPECS:
            entry = payload.get(name)
            if entry is None:
                continue
            if not isinstance(entry, Mapping):
                raise RegistryError(
                    f"faults spec section {name!r} must be a mapping, got {type(entry).__name__}"
                )
            valid = {spec_field.name for spec_field in fields(spec_class)}
            bad = [key for key in entry if key not in valid]
            if bad:
                raise RegistryError(
                    f"unknown faults.{name} spec fields {sorted(bad)}"
                    f"{suggest(bad[0], valid)}; known fields: {', '.join(sorted(valid))}"
                )
            coerced: Dict[str, float] = {}
            for key, value in entry.items():
                # Every fault sub-spec field is a plain number; a bool here
                # is a misplaced flag, not a 0/1 probability.
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise RegistryError(
                        f"faults.{name} spec field {key!r} must be a number, got {value!r}"
                    )
                coerced[key] = float(value)
            values[name] = spec_class(**coerced)
        if "plan" in payload:
            # Route every entry through the FaultSpec codec so unknown
            # fields fail here (not at run time) and the encoding is
            # canonical — the same logical plan must always embed, and
            # therefore cache-hash, identically.  Entries come either as
            # pair lists (our own to_dict output) or as plain mappings
            # (the shape --fault plan.json files use).
            try:
                values["plan"] = tuple(
                    FaultsSpec._parse_plan_entry(entry).to_pairs()
                    for entry in payload["plan"]
                )
            except FaultPlanError as error:
                raise RegistryError(f"invalid faults.plan entry: {error}")
        return FaultsSpec(**values)

    @staticmethod
    def _parse_plan_entry(entry) -> "_PlanFaultSpec":
        if isinstance(entry, Mapping):
            return _PlanFaultSpec.from_dict(entry)
        if not isinstance(entry, (list, tuple)) or not all(
            isinstance(pair, (list, tuple)) and len(pair) == 2 for pair in entry
        ):
            raise RegistryError(
                "faults.plan entries must be mappings (like a --fault plan "
                "file) or lists of [field, value] pairs, got "
                f"{entry!r}"
            )
        return _PlanFaultSpec.from_pairs(
            tuple((key, _plan_tuplify(value)) for key, value in entry)
        )




@dataclass(frozen=True)
class TelemetrySpec:
    """Optional observability wiring: snapshot sinks and cadence.

    ``sinks`` are compact sink specs understood by
    :func:`repro.telemetry.parse_sink_spec` (``"jsonl:out/metrics.jsonl"``,
    ``"csv:..."``, ``"prom:..."``, ``"memory"``); ``period`` is the snapshot
    cadence in *time units* (simulated units under the discrete-event
    engine, scaled wall-clock units in the live runtime).

    Telemetry is observability, not physics: it is deliberately **not**
    part of the flat :class:`~repro.experiments.config.ExperimentConfig`
    and therefore never feeds the result cache key — attaching a sink to a
    run must not orphan its cached result.  The flip side: anything that
    routes through the flat config (``run_experiment``, sweeps, the cache)
    cannot carry this spec — simulator runs attach sinks explicitly via
    ``run_experiment(snapshot_sinks=...)`` or the CLI's ``--telemetry``;
    the spec-mode live host (``NodeHost(spec=...)``) is what honours it.
    """

    sinks: Tuple[str, ...] = ()
    period: float = 5.0  # keep in sync via DEFAULT_SNAPSHOT_PERIOD (checked in tests)

    def build_sinks(self):
        """Instantiate the configured sinks (empty list when unset)."""
        from ..telemetry import parse_sink_spec

        return [parse_sink_spec(spec) for spec in self.sinks]


#: Flat :class:`ExperimentConfig` field → dotted spec path.  This mapping is
#: the single source of truth for the flat/nested bijection; every config
#: field appears exactly once.
FLAT_TO_PATH: Dict[str, str] = {
    "name": "name",
    "nodes": "nodes",
    "seed": "seed",
    "duration": "duration",
    "drain_time": "drain_time",
    "loss_rate": "loss_rate",
    "extra": "extra",
    "system": "system.kind",
    "fanout": "system.fanout",
    "gossip_size": "system.gossip_size",
    "round_period": "system.round_period",
    "alpha": "system.alpha",
    "broker_count": "system.broker_count",
    "stripes": "system.stripes",
    "delegates_per_root": "system.delegates_per_root",
    "adapt_fanout": "system.adapt_fanout",
    "adapt_payload": "system.adapt_payload",
    "min_fanout": "system.min_fanout",
    "max_fanout": "system.max_fanout",
    "min_payload": "system.min_payload",
    "max_payload": "system.max_payload",
    "selfish_fraction": "system.selfish_fraction",
    "membership": "membership.kind",
    "interest_model": "interest.kind",
    "topics_per_node": "interest.topics_per_node",
    "max_topics_per_node": "interest.max_topics_per_node",
    "topics": "workload.topics",
    "topic_exponent": "workload.topic_exponent",
    "publication_rate": "workload.publication_rate",
    "publisher_fraction": "workload.publisher_fraction",
    "event_size": "workload.event_size",
    "subscription_churn_rate": "workload.subscription_churn_rate",
    "fairness_policy": "policy.kind",
    "churn_down_probability": "faults.churn.down_probability",
    "churn_up_probability": "faults.churn.up_probability",
    "fault_churn_period": "faults.churn.period",
    "fault_churn_start": "faults.churn.start",
    "fault_churn_stop": "faults.churn.stop",
    "fault_partition_at": "faults.partition.at",
    "fault_partition_heal_after": "faults.partition.heal_after",
    "fault_partition_fraction": "faults.partition.fraction",
    "fault_perturb_start": "faults.perturb.start",
    "fault_perturb_stop": "faults.perturb.stop",
    "fault_perturb_latency": "faults.perturb.extra_latency",
    "fault_perturb_loss": "faults.perturb.loss_rate",
    "fault_plan": "faults.plan",
    "topology_domains": "topology.domains",
    "topology_bridges_per_domain": "topology.bridges_per_domain",
    "topology_bridge_policy": "topology.bridge_policy",
    "topology_cross_latency": "topology.cross_latency",
    "topology_cross_loss": "topology.cross_loss",
    "topology_assignment": "topology.assignment",
    "topology_geo": "topology.geo",
}

#: Dotted spec path → flat config field (inverse of :data:`FLAT_TO_PATH`).
PATH_TO_FLAT: Dict[str, str] = {path: flat for flat, path in FLAT_TO_PATH.items()}

_SECTIONS: Tuple[Tuple[str, type], ...] = (
    ("system", SystemSpec),
    ("membership", MembershipSpec),
    ("interest", InterestSpec),
    ("workload", WorkloadSpec),
    ("policy", PolicySpec),
)


def _get_path(obj, parts: List[str]):
    """Walk ``parts`` through nested spec attributes."""
    for part in parts:
        obj = getattr(obj, part)
    return obj


def _replace_path(obj, parts: List[str], value):
    """Copy ``obj`` with the nested attribute at ``parts`` replaced."""
    if len(parts) == 1:
        return replace(obj, **{parts[0]: value})
    child = _replace_path(getattr(obj, parts[0]), parts[1:], value)
    return replace(obj, **{parts[0]: child})


def spec_paths() -> List[str]:
    """Every settable dotted path, in flat-field order."""
    return list(PATH_TO_FLAT)


def resolve_spec_path(key: str) -> str:
    """Normalise a CLI key (dotted path or legacy flat name) to a dotted path.

    Unknown keys raise :class:`RegistryError` with a did-you-mean suggestion
    drawn from both vocabularies.
    """
    if key in PATH_TO_FLAT:
        return key
    if key in FLAT_TO_PATH:
        return FLAT_TO_PATH[key]
    raise RegistryError(
        f"unknown config key {key!r}{suggest(key, list(PATH_TO_FLAT) + list(FLAT_TO_PATH))}; "
        f"known paths: {', '.join(spec_paths())}"
    )


def resolve_config_key(key: str) -> str:
    """Normalise a CLI key (dotted path or flat name) to the flat field name."""
    return PATH_TO_FLAT[resolve_spec_path(key)]


def parse_scalar(text: str):
    """Parse a CLI value: int, then float, then bool, falling back to str."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    return text


def parse_spec_overrides(pairs) -> Dict[str, object]:
    """Turn ``path=value`` strings into a dotted-path override mapping.

    Accepts dotted spec paths (``system.fanout=5``) and legacy flat field
    names (``fanout=5``); unknown keys raise :class:`RegistryError` with a
    did-you-mean suggestion.  ``extra`` is structured and cannot be set this
    way.
    """
    overrides: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise RegistryError(f"expected path=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        path = resolve_spec_path(key.strip())
        if path == "extra":
            raise RegistryError("config field 'extra' is structured and cannot be set from the CLI")
        if path == "faults.plan":
            raise RegistryError(
                "config field 'faults.plan' is structured and cannot be set from "
                "the CLI; pass a plan file via --fault instead"
            )
        if path in ("topology.assignment", "topology.geo"):
            raise RegistryError(
                f"config field {path!r} is structured and cannot be set from "
                "the CLI; pass a topology file via --topology instead"
            )
        overrides[path] = parse_scalar(raw.strip())
    return overrides


@dataclass(frozen=True)
class StackSpec:
    """A complete, declarative description of one protocol stack.

    The nested component specs say *what to build* (each ``kind`` is looked
    up in its registry); the run-level fields say how big, how long, and how
    reproducibly.  ``extra`` carries free-form ``(key, value)`` pairs for
    component-specific knobs outside the fixed schema (for example
    ``buffer_capacity`` / ``selection_strategy`` on live gossip nodes).
    """

    name: str = "experiment"
    nodes: int = 128
    seed: int = 1
    duration: float = 40.0
    drain_time: float = 15.0
    loss_rate: float = 0.0
    system: SystemSpec = field(default_factory=SystemSpec)
    membership: MembershipSpec = field(default_factory=MembershipSpec)
    interest: InterestSpec = field(default_factory=InterestSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    #: Fault injection; part of the flat-config bijection (faults are
    #: physics and feed the result-cache identity, see :class:`FaultsSpec`).
    faults: FaultsSpec = field(default_factory=FaultsSpec)
    #: Multi-domain topology; physics, part of the flat-config bijection
    #: (omitted everywhere at its default so topology-free cache keys and
    #: nested encodings are byte-identical to the pre-topology format).
    topology: TopologySpec = field(default_factory=TopologySpec)
    #: Observability wiring; excluded from the flat-config bijection and
    #: therefore from the result-cache identity (see :class:`TelemetrySpec`).
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    extra: Tuple[Tuple[str, object], ...] = ()

    # ------------------------------------------------------------ flat adapter

    @staticmethod
    def from_config(config) -> "StackSpec":
        """Decompose a flat :class:`ExperimentConfig` into nested specs.

        One grouped pass constructing each (sub-)spec exactly once — this
        runs on every ``config.spec()`` call, so it avoids the per-field
        frozen-dataclass churn a ``with_value`` loop would cost.
        """
        values: Dict[str, object] = {}
        nested: Dict[str, Dict[str, object]] = {}
        for flat, path in FLAT_TO_PATH.items():
            value = getattr(config, flat)
            parts = path.split(".")
            if len(parts) == 1:
                values[path] = value
            else:
                node = nested.setdefault(parts[0], {})
                for part in parts[1:-1]:
                    node = node.setdefault(part, {})
                node[parts[-1]] = value
        for section, spec_class in _SECTIONS:
            values[section] = spec_class(**nested.pop(section, {}))
        faults_data = nested.pop("faults", {})
        fault_values: Dict[str, object] = {
            name: spec_class(**faults_data.pop(name, {}))
            for name, spec_class in FaultsSpec._SUBSPECS
        }
        fault_values.update(faults_data)  # the free-form "plan" entries
        values["faults"] = FaultsSpec(**fault_values)
        values["topology"] = TopologySpec(**nested.pop("topology", {}))
        return StackSpec(**values)

    def to_config(self):
        """Recompose the flat :class:`ExperimentConfig` (exact inverse)."""
        from ..experiments.config import ExperimentConfig

        return ExperimentConfig(
            **{flat: self.get(path) for flat, path in FLAT_TO_PATH.items()}
        )

    # ------------------------------------------------------------ dict codecs

    def to_dict(self) -> Dict[str, object]:
        """Nested JSON-serializable form; inverse of :meth:`from_dict`."""
        payload: Dict[str, object] = {
            "name": self.name,
            "nodes": self.nodes,
            "seed": self.seed,
            "duration": self.duration,
            "drain_time": self.drain_time,
            "loss_rate": self.loss_rate,
            "extra": [[key, value] for key, value in self.extra],
        }
        for section, _ in _SECTIONS:
            spec = getattr(self, section)
            payload[section] = {
                spec_field.name: getattr(spec, spec_field.name) for spec_field in fields(spec)
            }
        # Faults are omitted at their default so dicts of fault-free specs
        # are byte-identical to the pre-fault format (and old nested dicts
        # keep loading).
        if self.faults != FaultsSpec():
            payload["faults"] = self.faults.to_dict()
        # Topology follows the faults rule: omitted at its default so
        # topology-free specs keep their pre-topology byte encoding.
        if self.topology != TopologySpec():
            payload["topology"] = self.topology.to_dict()
        # Telemetry is observability-only; omit it at its default so dicts of
        # telemetry-free specs are byte-identical to the pre-telemetry format.
        if self.telemetry != TelemetrySpec():
            payload["telemetry"] = {
                "sinks": list(self.telemetry.sinks),
                "period": self.telemetry.period,
            }
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "StackSpec":
        """Rebuild a spec from nested *or* legacy flat dictionaries.

        Legacy dicts (``ExperimentConfig.to_dict()`` output, as stored in
        PR-1 cache artifacts) are detected by their flat shape — ``system``
        is a string and component fields sit at top level — and adapted via
        :class:`ExperimentConfig`, so old artifacts keep resolving to the
        same spec (and therefore the same cache key).
        """
        if StackSpec._is_legacy(payload):
            from ..experiments.config import ExperimentConfig

            return StackSpec.from_config(ExperimentConfig.from_dict(payload))

        payload = StackSpec._remap_workload_churn(payload)
        section_names = {name for name, _ in _SECTIONS}
        top_level = {
            "name",
            "nodes",
            "seed",
            "duration",
            "drain_time",
            "loss_rate",
            "extra",
            "faults",
            "topology",
            "telemetry",
        }
        unknown = [key for key in payload if key not in section_names | top_level]
        if unknown:
            known = sorted(section_names | top_level)
            raise RegistryError(
                f"unknown StackSpec fields {sorted(unknown)}"
                f"{suggest(unknown[0], known)}; known fields: {', '.join(known)}"
            )
        values: Dict[str, object] = {
            key: payload[key]
            for key in top_level
            if key in payload and key not in ("extra", "faults", "topology", "telemetry")
        }
        if "extra" in payload:
            values["extra"] = tuple((key, value) for key, value in payload["extra"])
        if "faults" in payload:
            values["faults"] = FaultsSpec.from_dict(payload["faults"])
        if "topology" in payload:
            entry = payload["topology"]
            if not isinstance(entry, Mapping):
                raise RegistryError(
                    f"StackSpec section 'topology' must be a mapping, got {type(entry).__name__}"
                )
            try:
                values["topology"] = TopologySpec.from_dict(entry)
            except TopologyError as error:
                raise RegistryError(f"invalid topology spec: {error}")
        if "telemetry" in payload:
            entry = payload["telemetry"]
            if not isinstance(entry, Mapping):
                raise RegistryError(
                    f"StackSpec section 'telemetry' must be a mapping, got {type(entry).__name__}"
                )
            bad = [key for key in entry if key not in ("sinks", "period")]
            if bad:
                raise RegistryError(
                    f"unknown telemetry spec fields {sorted(bad)}"
                    f"{suggest(bad[0], ('sinks', 'period'))}; known fields: period, sinks"
                )
            sinks = entry.get("sinks", ())
            if isinstance(sinks, str) or not isinstance(sinks, (list, tuple)):
                raise RegistryError(
                    "telemetry spec field 'sinks' must be a list of sink specs, "
                    f"got {sinks!r}"
                )
            period_raw = entry.get("period", TelemetrySpec().period)
            try:
                period = float(period_raw)
            except (TypeError, ValueError):
                raise RegistryError(
                    f"telemetry spec field 'period' must be a number, got {period_raw!r}"
                )
            if period <= 0:
                raise RegistryError(
                    f"telemetry spec field 'period' must be positive, got {period_raw!r}"
                )
            values["telemetry"] = TelemetrySpec(
                sinks=tuple(str(sink) for sink in sinks),
                period=period,
            )
        for section, spec_class in _SECTIONS:
            entry = payload.get(section)
            if entry is None:
                continue
            if not isinstance(entry, Mapping):
                raise RegistryError(
                    f"StackSpec section {section!r} must be a mapping, got {type(entry).__name__}"
                )
            valid = {spec_field.name for spec_field in fields(spec_class)}
            bad = [key for key in entry if key not in valid]
            if bad:
                raise RegistryError(
                    f"unknown {section} spec fields {sorted(bad)}"
                    f"{suggest(bad[0], valid)}; known fields: {', '.join(sorted(valid))}"
                )
            values[section] = spec_class(**entry)
        return StackSpec(**values)

    @staticmethod
    def _remap_workload_churn(payload: Mapping[str, object]) -> Mapping[str, object]:
        """Accept pre-fault nested dicts that carried churn under workload.

        Before the fault layer existed, ``churn_down_probability`` /
        ``churn_up_probability`` lived in the workload section; they now
        live at ``faults.churn.*``.  Persisted nested encodings of that era
        must keep loading, so the legacy keys are lifted into the faults
        section here (an explicit ``faults.churn`` value wins over the
        legacy spelling).
        """
        workload = payload.get("workload")
        if not isinstance(workload, Mapping) or not (
            "churn_down_probability" in workload or "churn_up_probability" in workload
        ):
            return payload
        faults = payload.get("faults")
        if faults is not None and not isinstance(faults, Mapping):
            return payload  # malformed faults section: let validation report it
        payload = dict(payload)
        workload = dict(workload)
        faults = dict(faults) if faults is not None else {}
        churn_entry = faults.get("churn")
        churn = dict(churn_entry) if isinstance(churn_entry, Mapping) else {}
        for legacy, attr in (
            ("churn_down_probability", "down_probability"),
            ("churn_up_probability", "up_probability"),
        ):
            if legacy in workload:
                churn.setdefault(attr, workload.pop(legacy))
        faults["churn"] = churn
        payload["workload"] = workload
        payload["faults"] = faults
        return payload

    @staticmethod
    def _is_legacy(payload: Mapping[str, object]) -> bool:
        """Whether a dict uses the flat ``ExperimentConfig`` encoding."""
        if isinstance(payload.get("system"), str) or isinstance(payload.get("membership"), str):
            return True
        # "system" and "membership" are both flat fields and section names,
        # so only the unambiguous flat fields count as legacy evidence.
        shared = {"name", "nodes", "seed", "duration", "drain_time", "loss_rate", "extra"}
        sections = {name for name, _ in _SECTIONS}
        flat_only = set(FLAT_TO_PATH) - shared - sections
        return any(key in payload for key in flat_only)

    # --------------------------------------------------------- dotted access

    def get(self, path: str):
        """Value at a dotted path of any depth (``"faults.churn.start"``)."""
        return _get_path(self, resolve_spec_path(path).split("."))

    def with_value(self, path: str, value) -> "StackSpec":
        """Copy with one dotted path replaced (types gently coerced).

        An ``int`` assigned to a ``float``-typed field is widened so CLI
        overrides like ``--set duration=5`` hash identically to ``5.0``.
        """
        path = resolve_spec_path(path)
        current = self.get(path)
        if isinstance(current, float) and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        return _replace_path(self, path.split("."), value)

    def with_values(self, overrides: Mapping[str, object]) -> "StackSpec":
        """Copy with several dotted-path overrides applied."""
        spec = self
        for path, value in overrides.items():
            spec = spec.with_value(path, value)
        return spec

    # ------------------------------------------------------------ conveniences

    def extra_dict(self) -> Dict[str, object]:
        """The free-form extras as a dictionary."""
        return dict(self.extra)

    def with_telemetry(self, sinks, period: Optional[float] = None) -> "StackSpec":
        """Copy with telemetry sinks (and optionally the snapshot period) set."""
        current = self.telemetry
        return replace(
            self,
            telemetry=TelemetrySpec(
                sinks=tuple(sinks),
                period=current.period if period is None else float(period),
            ),
        )

    @property
    def total_time(self) -> float:
        """Publication phase plus drain time."""
        return self.duration + self.drain_time

    def node_ids(self) -> Tuple[str, ...]:
        """The participant names used by every scenario."""
        return tuple(f"node-{index:03d}" for index in range(self.nodes))

    def publisher_ids(self) -> Tuple[str, ...]:
        """The subset of nodes allowed to publish."""
        count = max(1, int(self.nodes * self.workload.publisher_fraction))
        return self.node_ids()[:count]

    def describe(self) -> str:
        """Readable ``section.field = value`` listing of the resolved spec."""
        structured = ("extra", "faults.plan", "topology.assignment", "topology.geo")
        lines = [
            f"{path} = {self.get(path)!r}" for path in spec_paths() if path not in structured
        ]
        if self.faults.plan:
            lines.append(f"faults.plan = {len(self.faults.plan)} entr"
                         f"{'y' if len(self.faults.plan) == 1 else 'ies'}")
        if self.topology.assignment:
            lines.append(
                f"topology.assignment = {len(self.topology.assignment)} entr"
                f"{'y' if len(self.topology.assignment) == 1 else 'ies'}"
            )
        if self.topology.geo:
            lines.append(
                f"topology.geo = {len(self.topology.geo)} entr"
                f"{'y' if len(self.topology.geo) == 1 else 'ies'}"
            )
        if self.extra:
            lines.append(f"extra = {dict(self.extra)!r}")
        return "\n".join(lines)
