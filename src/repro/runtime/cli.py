"""CLI subcommands for the live runtime: ``serve`` and ``loadgen``.

``python -m repro serve`` brings up a live cluster on a chosen transport,
drives it with an embedded load generator, and prints a live fairness report
while it runs.  ``python -m repro loadgen`` runs the same cluster but
focuses on load numbers: it prints (and optionally writes as JSON) the
achieved events/sec, delivery latency percentiles, delivery ratio, and the
fairness headline, which is what ``benchmarks/bench_rt_throughput.py``
consumes.

Both commands build from the same declarative vocabulary as the simulator:

* ``--scenario NAME`` resolves a registered scenario to its
  :class:`~repro.registry.specs.StackSpec` and builds *any* registered
  system — gossip or baseline — through the component registry
  (:func:`repro.registry.builtins.build_stack`), so every scenario the
  simulator can run also runs live.  ``--set system.kind=brokers`` style
  dotted overrides adjust the spec.
* Without ``--scenario``, the classic flag set assembles a live gossip
  cluster directly (the PR-2 behaviour, unchanged).

Either way a live run and a simulated run of the same shape are directly
comparable — the property the runtime-vs-simulator parity test checks.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
from typing import Dict, NamedTuple, Optional

from ..analysis.reliability import measure_reliability
from ..faults import FaultPlan, FaultPlanError
from ..membership.cyclon import cyclon_provider
from ..membership.lpbcast import lpbcast_provider
from ..registry import StackSpec, build_interest_model, build_popularity
from ..sim.rng import RngRegistry
from ..workloads.interest import (
    AttributeInterest,
    CommunityInterest,
    InterestAssignment,
    UniformInterest,
    ZipfInterest,
)
from ..workloads.popularity import TopicPopularity
from .host import DELIVERIES_METRIC, PUBLISHED_METRIC, NodeHost
from .loadgen import LoadGenerator
from .transport import MemoryTransport, TcpTransport, Transport, UdpTransport

__all__ = [
    "add_runtime_subcommands",
    "parse_telemetry_sinks",
    "parse_tracer",
    "build_live_cluster",
    "LiveCluster",
    "RUNTIME_ARTIFACT_SCHEMA",
]

TRANSPORT_NAMES = ("memory", "udp", "tcp")
INTEREST_NAMES = ("zipf", "uniform", "community", "content")
MEMBERSHIP_NAMES = ("cyclon", "lpbcast")

#: Schema tag written into ``--json`` artifacts of the runtime commands.
RUNTIME_ARTIFACT_SCHEMA = "rt-load/v1"

#: Defaults of the flags that overlap the StackSpec vocabulary.  They are
#: declared with ``default=None`` so a scenario run can tell "explicitly
#: set" (overrides the spec) from "absent" (the spec governs); the classic
#: path fills the gaps from this table.
LEGACY_FLAG_DEFAULTS: Dict[str, object] = {
    "nodes": 25,
    "seed": 2007,
    "topics": 8,
    "topic_exponent": 1.0,
    "interest": "zipf",
    "topics_per_node": 2,
    "max_topics_per_node": 4,
    "fanout": 5,
    "gossip_size": 24,
    "round_period": 1.0,
    "membership": "cyclon",
    "buffer_capacity": 4000,
    "selection_strategy": "least-forwarded",
}

#: Flag name → dotted spec path, for scenario-mode overrides.
_FLAG_TO_PATH = {
    "nodes": "nodes",
    "seed": "seed",
    "topics": "workload.topics",
    "topic_exponent": "workload.topic_exponent",
    "interest": "interest.kind",
    "topics_per_node": "interest.topics_per_node",
    "max_topics_per_node": "interest.max_topics_per_node",
    "fanout": "system.fanout",
    "gossip_size": "system.gossip_size",
    "round_period": "system.round_period",
    "membership": "membership.kind",
}

_GOSSIP_KINDS = ("gossip", "fair-gossip", "pushpull-gossip", "lazy-push")


class LiveCluster(NamedTuple):
    """A built-but-not-started live cluster and its workload."""

    host: NodeHost
    generator: LoadGenerator
    interest: InterestAssignment
    #: Spec-built hosts create their nodes on ``start()``, so interest must
    #: be applied afterwards; the classic path applies it at build time.
    apply_interest_after_start: bool
    #: The resolved StackSpec (``None`` on the classic flag-driven path).
    spec: Optional[StackSpec]


def parse_telemetry_sinks(args: argparse.Namespace, spec_has_sinks: bool = False):
    """Validate/construct the ``--telemetry`` sinks as a clean CLI error.

    Also owns the dangling-flag guard: ``--telemetry-period`` without any
    sink (from the CLI or, with ``spec_has_sinks``, from a scenario's
    TelemetrySpec) is rejected rather than silently ignored.
    """
    from ..telemetry import parse_sink_spec

    period = getattr(args, "telemetry_period", None)
    if period is not None and period <= 0:
        raise SystemExit("--telemetry-period must be positive")
    try:
        sinks = [parse_sink_spec(spec) for spec in (getattr(args, "telemetry", None) or [])]
    except ValueError as error:
        raise SystemExit(str(error))
    if period is not None and not sinks and not spec_has_sinks:
        raise SystemExit("--telemetry-period has no effect without --telemetry")
    return sinks


def parse_tracer(args: argparse.Namespace):
    """Build the ``--trace`` tracer (or None) as a clean CLI error.

    ``--trace PATH`` writes span JSON-lines to PATH; ``--trace-sample-rate``
    defaults to 1.0 when tracing is on (trace everything — the flag exists
    to dial volume *down*) and is rejected when dangling, mirroring the
    ``--telemetry-period`` guard.  Shared by ``run`` and the live commands.
    """
    path = getattr(args, "trace", None)
    rate = getattr(args, "trace_sample_rate", None)
    if path is None:
        if rate is not None:
            raise SystemExit("--trace-sample-rate has no effect without --trace")
        return None
    from ..tracing import JsonlTraceSink, Tracer

    try:
        return Tracer(JsonlTraceSink(path), sample_rate=1.0 if rate is None else rate)
    except (ValueError, OSError) as error:
        raise SystemExit(str(error))


def _load_fault_plan(path: str) -> FaultPlan:
    """Load and pre-validate a ``--fault`` plan as a clean CLI error.

    The node universe isn't known yet (spec-built hosts create their nodes
    on start), so only universe-independent validation happens here; the
    host re-validates against the real node ids when it starts.
    """
    try:
        return FaultPlan.from_file(path).validate()
    except FaultPlanError as error:
        raise SystemExit(str(error))


def _build_transport(args: argparse.Namespace) -> Transport:
    if args.transport == "memory":
        return MemoryTransport()
    if args.transport == "udp":
        return UdpTransport(bind_host=args.bind_host, bind_port=args.bind_port)
    if args.transport == "tcp":
        return TcpTransport(bind_host=args.bind_host, bind_port=args.bind_port)
    raise SystemExit(f"unknown transport {args.transport!r}; expected one of {TRANSPORT_NAMES}")


def _resolve_spec(args: argparse.Namespace) -> StackSpec:
    """Scenario spec plus explicit flag overrides plus ``--set`` paths."""
    from ..experiments.scenarios import get_scenario
    from ..registry import RegistryError, parse_spec_overrides

    try:
        spec = get_scenario(args.scenario).spec
    except KeyError as error:
        raise SystemExit(error.args[0])
    for flag, path in _FLAG_TO_PATH.items():
        value = getattr(args, flag, None)
        if value is not None:
            spec = spec.with_value(path, value)
    try:
        spec = spec.with_values(parse_spec_overrides(args.set or []))
    except RegistryError as error:
        raise SystemExit(str(error))
    if getattr(args, "fault", None):
        # Plan-file entries compose with (rather than replace) whatever the
        # scenario's faults section already declares.
        plan = _load_fault_plan(args.fault)
        spec = spec.with_value(
            "faults.plan", spec.get("faults.plan") + plan.entry_pairs()
        )
    if getattr(args, "topology", None):
        from ..registry.specs import FLAT_TO_PATH
        from ..topology import TopologyError, TopologySpec

        try:
            topology = TopologySpec.from_file(args.topology)
        except TopologyError as error:
            raise SystemExit(str(error))
        for flat_key, value in topology.to_flat().items():
            spec = spec.with_value(FLAT_TO_PATH[flat_key], value)
    if spec.topology.enabled:
        # Compile once up front so a bad topology (too few nodes per domain,
        # unknown ids in the assignment, ...) is a clean CLI error instead
        # of a traceback out of host.start().
        from ..topology import TopologyError, compile_domain_map

        try:
            compile_domain_map(spec.topology, spec.node_ids())
        except TopologyError as error:
            raise SystemExit(str(error))
    if spec.system.kind in _GOSSIP_KINDS:
        # Live clusters push far more events per time unit than the default
        # simulator scenarios; give gossip nodes the live buffer tuning.
        # Explicit flags override the spec; absent both, the live defaults
        # fill in.  These extras only take effect in live builds — the
        # simulator's config→result function never reads them.
        extras = spec.extra_dict()
        for key, flag_value in (
            ("buffer_capacity", args.buffer_capacity),
            ("selection_strategy", args.selection_strategy),
        ):
            if flag_value is not None:
                extras[key] = flag_value
            else:
                extras.setdefault(key, LEGACY_FLAG_DEFAULTS[key])
        spec = spec.with_value("extra", tuple(sorted(extras.items())))
    return spec


def _build_from_spec(args: argparse.Namespace) -> LiveCluster:
    spec = _resolve_spec(args)
    sinks = parse_telemetry_sinks(args, spec_has_sinks=bool(spec.telemetry.sinks))
    if sinks:
        spec = spec.with_telemetry(
            tuple(args.telemetry), period=getattr(args, "telemetry_period", None)
        )
    transport = _build_transport(args)
    host = NodeHost(
        transport,
        seed=spec.seed,
        time_scale=args.time_scale,
        snapshot_sinks=sinks,
        snapshot_period=getattr(args, "telemetry_period", None) or (
            spec.telemetry.period if sinks else None
        ),
        spec=spec,
        tracer=parse_tracer(args),
    )
    popularity = build_popularity(spec)
    interest_model = build_interest_model(spec, popularity)
    # Same stream name as the simulator runner, so a live cluster and a
    # simulated run of the same seed get identical interest assignments.
    interest_rng = RngRegistry(spec.seed).stream("experiment-interest")
    node_ids = list(spec.node_ids())
    interest = interest_model.assign(node_ids, interest_rng)
    attribute_model = interest_model if isinstance(interest_model, AttributeInterest) else None
    generator = LoadGenerator(
        host,
        rate=args.rate,
        popularity=None if attribute_model is not None else popularity,
        attribute_model=attribute_model,
        publishers=list(spec.publisher_ids()),
    )
    return LiveCluster(host, generator, interest, apply_interest_after_start=True, spec=spec)


def _build_classic(args: argparse.Namespace) -> LiveCluster:
    transport = _build_transport(args)
    provider = (
        lpbcast_provider() if args.membership == "lpbcast" else cyclon_provider()
    )
    sinks = parse_telemetry_sinks(args)
    fault_plan = (
        _load_fault_plan(args.fault) if getattr(args, "fault", None) else None
    )
    host = NodeHost(
        transport,
        seed=args.seed,
        time_scale=args.time_scale,
        snapshot_sinks=sinks,
        snapshot_period=getattr(args, "telemetry_period", None),
        fault_plan=fault_plan,
        tracer=parse_tracer(args),
        membership_provider=provider,
        node_kwargs={
            "fanout": args.fanout,
            "gossip_size": args.gossip_size,
            "round_period": args.round_period,
            # Live runs push far more events per time unit than the default
            # simulator scenarios; size the buffer so an event survives its
            # dissemination window instead of being evicted mid-spread, and
            # spread forwarding effort evenly across buffered events ("newest"
            # starves anything older than a round under heavy load).
            "buffer_capacity": args.buffer_capacity,
            "selection_strategy": args.selection_strategy,
        },
    )
    node_ids = [f"node-{index:03d}" for index in range(args.nodes)]
    host.add_nodes(node_ids)

    if args.topic_exponent <= 0:
        popularity = TopicPopularity.uniform(args.topics)
    else:
        popularity = TopicPopularity.zipf(args.topics, exponent=args.topic_exponent)
    attribute_model: Optional[AttributeInterest] = None
    if args.interest == "uniform":
        interest_model = UniformInterest(popularity, topics_per_node=args.topics_per_node)
    elif args.interest == "community":
        interest_model = CommunityInterest(popularity, topics_per_node=args.topics_per_node)
    elif args.interest == "content":
        attribute_model = AttributeInterest(filters_per_node=args.topics_per_node)
        interest_model = attribute_model
    else:
        interest_model = ZipfInterest(
            popularity, min_topics=1, max_topics=args.max_topics_per_node
        )
    # Same stream name as the simulator runner, so a live cluster and a
    # simulated run of the same seed get identical interest assignments.
    interest_rng = RngRegistry(args.seed).stream("experiment-interest")
    interest = interest_model.assign(node_ids, interest_rng)
    interest.apply(host)

    generator = LoadGenerator(
        host,
        rate=args.rate,
        popularity=None if attribute_model is not None else popularity,
        attribute_model=attribute_model,
    )
    return LiveCluster(host, generator, interest, apply_interest_after_start=False, spec=None)


def build_live_cluster(args: argparse.Namespace) -> LiveCluster:
    """Build (but do not start) a host, its load generator, and interests.

    With ``--scenario`` the cluster is built from the scenario's
    :class:`StackSpec` through the component registry (any registered system
    runs); otherwise the classic flag-driven gossip cluster is assembled.
    """
    if getattr(args, "scenario", None):
        return _build_from_spec(args)
    if getattr(args, "topology", None):
        raise SystemExit(
            "--topology requires --scenario: multi-domain clusters are built "
            "through the component registry (try --scenario smoke-domains)"
        )
    for flag, default in LEGACY_FLAG_DEFAULTS.items():
        if getattr(args, flag, None) is None:
            setattr(args, flag, default)
    return _build_classic(args)


def _write_artifact(path: str, artifact: Dict[str, object]) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, sort_keys=True, indent=2)
        handle.write("\n")


async def _run_live(args: argparse.Namespace, live_report: bool) -> Dict[str, object]:
    cluster = build_live_cluster(args)
    host, generator = cluster.host, cluster.generator
    try:
        await host.start()
    except FaultPlanError as error:
        # An unsatisfiable fault plan (e.g. unknown node ids against the
        # built cluster) is a usage error, not a crash; the host already
        # tore itself down.
        raise SystemExit(str(error))
    if cluster.apply_interest_after_start:
        cluster.interest.apply(host)
    reporter: Optional[asyncio.Task] = None
    if live_report:

        async def report_loop() -> None:
            started = asyncio.get_running_loop().time()
            while True:
                await asyncio.sleep(args.report_interval)
                elapsed = asyncio.get_running_loop().time() - started
                published = host.telemetry.counter_value(PUBLISHED_METRIC)
                deliveries = host.telemetry.counter_value(DELIVERIES_METRIC)
                fairness = host.fairness_summary().report
                print(
                    f"[serve +{elapsed:5.1f}s] published {published:8.0f} "
                    f"({published / max(elapsed, 1e-9):7.0f} ev/s) | "
                    f"deliveries {deliveries:9.0f} | "
                    f"ratio Jain {fairness.ratio_jain:.3f} | "
                    f"wasted share {fairness.wasted_share:.3f}",
                    flush=True,
                )

        reporter = asyncio.get_running_loop().create_task(report_loop())

    try:
        load = await generator.run(args.duration)
        if args.drain > 0:
            await asyncio.sleep(args.drain)
    finally:
        if reporter is not None:
            reporter.cancel()
        await host.stop()
        if host.tracer is not None:
            host.tracer.close()

    round_period = args.round_period
    if round_period is None:
        round_period = (
            cluster.spec.system.round_period
            if cluster.spec is not None
            else LEGACY_FLAG_DEFAULTS["round_period"]
        )
    summary = host.fairness_summary(system_name=f"live/{args.transport}")
    reliability = measure_reliability(
        generator.schedule.events,
        host.delivery_log,
        host.subscriptions,
        round_period=round_period,
    )
    # Latency and deliveries settle during the drain window; re-read them
    # after the run and widen the delivery-rate window accordingly.
    load.latency_seconds = generator.latency_summary_seconds()
    load.deliveries = int(host.telemetry.counter_value(DELIVERIES_METRIC))
    load.drain_seconds = max(args.drain, 0.0)

    print()
    print(summary.render())
    print()
    print(load.describe())
    print(
        f"delivery ratio {reliability.delivery_ratio:.3f} | "
        f"complete fraction {reliability.complete_fraction:.3f} | "
        f"transport {args.transport} ({host.transport.frames_sent} frames, "
        f"{host.transport.bytes_sent} bytes sent)"
    )
    if host.tracer is not None:
        print(
            f"trace: {host.tracer.spans_emitted} span(s) "
            f"at sample rate {host.tracer.sample_rate} -> {args.trace}"
        )
    return {
        "schema": RUNTIME_ARTIFACT_SCHEMA,
        "transport": args.transport,
        "scenario": getattr(args, "scenario", None),
        "system": host.system.name if host.system is not None else "live-gossip",
        "nodes": len(host.nodes),
        "seed": cluster.spec.seed if cluster.spec is not None else args.seed,
        "time_scale": args.time_scale,
        "duration_seconds": args.duration,
        "load": load.to_dict(),
        "delivery_ratio": reliability.delivery_ratio,
        "fairness": summary.report.to_dict(),
        "frames_sent": host.transport.frames_sent,
        "bytes_sent": host.transport.bytes_sent,
    }


def _cmd_serve(args: argparse.Namespace) -> int:
    artifact = asyncio.run(_run_live(args, live_report=True))
    if args.json:
        _write_artifact(args.json, artifact)
        print(f"wrote runtime artifact to {args.json}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    artifact = asyncio.run(_run_live(args, live_report=False))
    if args.json:
        _write_artifact(args.json, artifact)
        print(f"wrote runtime artifact to {args.json}")
    return 0


def _add_common_runtime_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="build the cluster from a registered scenario's StackSpec "
        "(any registered system runs live; see list-scenarios)",
    )
    parser.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="with --scenario: override a spec path (e.g. system.kind=brokers, "
        "system.fanout=5, membership.kind=lpbcast); repeatable",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="cluster size (default: 25)"
    )
    parser.add_argument(
        "--transport",
        default="memory",
        choices=TRANSPORT_NAMES,
        help="frame carrier (default: memory)",
    )
    parser.add_argument(
        "--duration", type=float, default=5.0, help="load duration in real seconds (default: 5)"
    )
    parser.add_argument(
        "--rate", type=float, default=1500.0, help="target publications per second (default: 1500)"
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=20.0,
        help="protocol time units per real second; a round_period of 1.0 at "
        "time-scale 20 is a 50ms gossip round (default: 20)",
    )
    parser.add_argument(
        "--drain",
        type=float,
        default=1.0,
        help="extra real seconds after the load stops so in-flight events settle",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed (default: 2007)")
    parser.add_argument("--topics", type=int, default=None, help="topic count (default: 8)")
    parser.add_argument(
        "--topic-exponent", type=float, default=None, help="Zipf exponent, 0 = uniform"
    )
    parser.add_argument(
        "--interest",
        default=None,
        choices=INTEREST_NAMES,
        help="interest model (default: zipf)",
    )
    parser.add_argument("--topics-per-node", type=int, default=None)
    parser.add_argument("--max-topics-per-node", type=int, default=None)
    parser.add_argument("--fanout", type=int, default=None, help="gossip fanout F (default: 5)")
    parser.add_argument(
        "--gossip-size", type=int, default=None, help="events per gossip message N (default: 24)"
    )
    parser.add_argument(
        "--buffer-capacity",
        type=int,
        default=None,
        help="per-node event buffer capacity (default: 4000)",
    )
    parser.add_argument(
        "--selection-strategy",
        default=None,
        choices=("random", "newest", "oldest", "least-forwarded"),
        help="SELECTEVENTS strategy (default: least-forwarded)",
    )
    parser.add_argument(
        "--round-period",
        type=float,
        default=None,
        help="gossip round length in time units (default: 1.0)",
    )
    parser.add_argument(
        "--membership",
        default=None,
        choices=MEMBERSHIP_NAMES,
        help="peer sampling service (default: cyclon)",
    )
    parser.add_argument("--bind-host", default="127.0.0.1", help="socket transports: bind host")
    parser.add_argument(
        "--bind-port", type=int, default=0, help="socket transports: bind port (0 = ephemeral)"
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write the run artifact")
    parser.add_argument(
        "--fault",
        default=None,
        metavar="PLAN.json",
        help="drive the cluster with a declarative fault plan (crash/churn/"
        "partition/perturb entries; the same file runs on the simulator via "
        "'run --fault')",
    )
    parser.add_argument(
        "--topology",
        default=None,
        metavar="TOPO.json",
        help="with --scenario: load a multi-domain topology spec (domains, "
        "bridges, geo latency/loss matrix); the same file drives the "
        "simulator via 'run --topology'",
    )
    parser.add_argument(
        "--telemetry",
        action="append",
        metavar="SINK",
        help="stream periodic telemetry snapshots to a sink "
        "(jsonl:PATH, csv:PATH, prom:PATH, memory); repeatable",
    )
    parser.add_argument(
        "--telemetry-period",
        type=float,
        default=None,
        metavar="UNITS",
        help="snapshot period in protocol time units (default: 5.0; at "
        "--time-scale 20 that is one snapshot every 0.25s)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="TRACE.jsonl",
        help="record causal dissemination spans to a JSON-lines file "
        "(render with `python -m repro trace TRACE.jsonl`)",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="fraction of published events to trace, decided "
        "deterministically per event id (default with --trace: 1.0)",
    )


def add_runtime_subcommands(subparsers) -> None:
    """Register ``serve`` and ``loadgen`` on the ``python -m repro`` parser."""
    serve_parser = subparsers.add_parser(
        "serve",
        help="run a live cluster on a real transport with an embedded load generator",
    )
    _add_common_runtime_options(serve_parser)
    serve_parser.add_argument(
        "--report-interval",
        type=float,
        default=1.0,
        help="seconds between live fairness report lines (default: 1)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="drive a live cluster at a target events/sec and report throughput/latency",
    )
    _add_common_runtime_options(loadgen_parser)
    loadgen_parser.set_defaults(handler=_cmd_loadgen)
