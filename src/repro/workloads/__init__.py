"""Workload generators: topic popularity, interest assignment, publications, churn."""

from .churn import ChurnStats, SubscriptionChurnWorkload
from .interest import (
    AttributeInterest,
    CommunityInterest,
    InterestAssignment,
    UniformInterest,
    ZipfInterest,
)
from .popularity import TopicPopularity
from .publications import (
    ContentPublicationWorkload,
    PublicationSchedule,
    TopicPublicationWorkload,
)

__all__ = [
    "TopicPopularity",
    "InterestAssignment",
    "UniformInterest",
    "ZipfInterest",
    "CommunityInterest",
    "AttributeInterest",
    "PublicationSchedule",
    "TopicPublicationWorkload",
    "ContentPublicationWorkload",
    "SubscriptionChurnWorkload",
    "ChurnStats",
]
