"""Subscription records and the per-system subscription table.

Section 5.1 stresses that a "fundamental part of work in a selective
information dissemination system deals with ongoing subscriptions and
unsubscriptions": the *maintenance* work.  This module models subscriptions
as first-class records with lifecycle timestamps so that maintenance work can
be measured and charged, and provides a :class:`SubscriptionTable` that
indexes active subscriptions by node, by topic, and by filter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .events import Event
from .filters import Filter

__all__ = ["Subscription", "SubscriptionTable"]


@dataclass
class Subscription:
    """One active (or historical) subscription of a node to a filter."""

    subscription_id: str
    node_id: str
    subscription_filter: Filter
    subscribed_at: float = 0.0
    unsubscribed_at: Optional[float] = None

    @property
    def active(self) -> bool:
        """Whether the subscription has not been cancelled."""
        return self.unsubscribed_at is None

    @property
    def lifetime(self) -> Optional[float]:
        """Duration of the subscription, or ``None`` while still active."""
        if self.unsubscribed_at is None:
            return None
        return self.unsubscribed_at - self.subscribed_at

    def matches(self, event: Event) -> bool:
        """Whether the subscription's filter matches the event."""
        return self.subscription_filter.matches(event)


class SubscriptionTable:
    """Tracks every subscription in the system, active and historical.

    The table is the ground truth used by:

    * the matching engine (who should deliver a given event);
    * the fairness accounting (how many filters a node has placed);
    * the maintenance-work experiments (rate of subscribe/unsubscribe per
      topic, §5.1).
    """

    def __init__(self) -> None:
        self._sequence = itertools.count()
        self._by_id: Dict[str, Subscription] = {}
        self._active_by_node: Dict[str, Set[str]] = {}
        self._active_by_topic: Dict[str, Set[str]] = {}
        self.total_subscribes = 0
        self.total_unsubscribes = 0

    # ------------------------------------------------------------ mutation

    def subscribe(
        self, node_id: str, subscription_filter: Filter, timestamp: float = 0.0
    ) -> Subscription:
        """Record a new subscription and return it."""
        subscription = Subscription(
            subscription_id=f"sub-{next(self._sequence)}",
            node_id=node_id,
            subscription_filter=subscription_filter,
            subscribed_at=timestamp,
        )
        self._by_id[subscription.subscription_id] = subscription
        self._active_by_node.setdefault(node_id, set()).add(subscription.subscription_id)
        for topic in subscription_filter.topics:
            self._active_by_topic.setdefault(topic, set()).add(subscription.subscription_id)
        self.total_subscribes += 1
        return subscription

    def unsubscribe(
        self, node_id: str, subscription_filter: Filter, timestamp: float = 0.0
    ) -> Optional[Subscription]:
        """Cancel the node's oldest active subscription with an equal filter.

        Returns the cancelled subscription, or ``None`` if no matching active
        subscription existed (unsubscribing twice is not an error, matching
        the paper's API where ``unsubscribe`` merely removes the guarantee).
        """
        target_id = subscription_filter.filter_id
        candidates = sorted(
            (
                self._by_id[subscription_id]
                for subscription_id in self._active_by_node.get(node_id, ())
                if self._by_id[subscription_id].subscription_filter.filter_id == target_id
            ),
            key=lambda subscription: subscription.subscribed_at,
        )
        if not candidates:
            return None
        subscription = candidates[0]
        self._deactivate(subscription, timestamp)
        self.total_unsubscribes += 1
        return subscription

    def unsubscribe_all(self, node_id: str, timestamp: float = 0.0) -> List[Subscription]:
        """Cancel every active subscription of a node (used on graceful leave)."""
        cancelled = []
        for subscription_id in list(self._active_by_node.get(node_id, ())):
            subscription = self._by_id[subscription_id]
            self._deactivate(subscription, timestamp)
            self.total_unsubscribes += 1
            cancelled.append(subscription)
        return cancelled

    def _deactivate(self, subscription: Subscription, timestamp: float) -> None:
        subscription.unsubscribed_at = timestamp
        self._active_by_node.get(subscription.node_id, set()).discard(subscription.subscription_id)
        for topic in subscription.subscription_filter.topics:
            self._active_by_topic.get(topic, set()).discard(subscription.subscription_id)

    # ------------------------------------------------------------- queries

    def active_subscriptions(self, node_id: Optional[str] = None) -> List[Subscription]:
        """Active subscriptions, optionally restricted to one node."""
        if node_id is not None:
            return [
                self._by_id[subscription_id]
                for subscription_id in sorted(self._active_by_node.get(node_id, ()))
            ]
        return [subscription for subscription in self._by_id.values() if subscription.active]

    def active_filter_count(self, node_id: str) -> int:
        """Number of active filters placed by a node (Figure 2's ``# filters``)."""
        return len(self._active_by_node.get(node_id, ()))

    def subscribers_of_topic(self, topic: str) -> List[str]:
        """Node ids with an active subscription pinned to ``topic`` (sorted)."""
        nodes = {
            self._by_id[subscription_id].node_id
            for subscription_id in self._active_by_topic.get(topic, ())
        }
        return sorted(nodes)

    def topics_of_node(self, node_id: str) -> List[str]:
        """Topics the node is actively subscribed to (sorted, deduplicated)."""
        topics: Set[str] = set()
        for subscription_id in self._active_by_node.get(node_id, ()):
            topics.update(self._by_id[subscription_id].subscription_filter.topics)
        return sorted(topics)

    def interested_nodes(self, event: Event) -> List[str]:
        """Node ids whose active subscriptions match the event (sorted).

        This is the oracle answer for "who should deliver e"; the analysis
        layer compares protocol deliveries against it to compute reliability.
        """
        interested: Set[str] = set()
        for subscription in self._by_id.values():
            if subscription.active and subscription.node_id not in interested:
                if subscription.matches(event):
                    interested.add(subscription.node_id)
        return sorted(interested)

    def nodes_with_subscriptions(self) -> List[str]:
        """Nodes that currently hold at least one active subscription."""
        return sorted(node for node, subs in self._active_by_node.items() if subs)

    def churn_counts(self) -> Tuple[int, int]:
        """Total ``(subscribes, unsubscribes)`` seen so far."""
        return self.total_subscribes, self.total_unsubscribes

    def __len__(self) -> int:
        return sum(1 for subscription in self._by_id.values() if subscription.active)
