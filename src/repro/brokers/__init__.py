"""Broker-based selective dissemination baseline (§3, references [6, 9])."""

from .broker import BrokerNode, BrokerSystem, ClientNode

__all__ = ["BrokerNode", "ClientNode", "BrokerSystem"]
