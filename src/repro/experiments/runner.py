"""Experiment runner: config in, measured result out.

One call to :func:`run_experiment` performs a complete simulated experiment:

1. build the simulator, network, and dissemination system;
2. assign interests (subscriptions) according to the workload model;
3. start the publication workload, the fault plan compiled from the config
   (node churn, crash schedules, partitions, link perturbation), and
   subscription churn if configured;
4. run the simulation for the configured duration and drain window;
5. measure fairness (per the configured policy) and reliability, and return
   everything in an :class:`ExperimentResult`.

The benchmarks under ``benchmarks/`` are thin loops over configs calling
this function and tabulating the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis import (
    ReliabilityReport,
    SystemFairnessSummary,
    measure_reliability,
    summarise_fairness,
)
from ..core import FairnessPolicy
from ..core.fairness import evaluate_fairness
from ..faults import FaultController, FaultPlan, FaultPlanError
from ..pubsub.events import Event
from ..telemetry import (
    DEFAULT_SNAPSHOT_PERIOD,
    SnapshotScheduler,
    Telemetry,
    TelemetrySnapshot,
    parse_sink_spec,
)
from ..workloads import (
    AttributeInterest,
    ContentPublicationWorkload,
    InterestAssignment,
    SubscriptionChurnWorkload,
    TopicPublicationWorkload,
)
from .config import ExperimentConfig
from .scenarios import build_interest, build_popularity, build_simulation, build_system, resolve_policy

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass
class ExperimentResult:
    """Everything measured in one experiment run."""

    config: ExperimentConfig
    fairness: SystemFairnessSummary
    reliability: ReliabilityReport
    published_events: List[Event]
    interest: InterestAssignment
    total_messages: float
    total_deliveries: int
    system: object = field(repr=False, default=None)
    #: The run's final telemetry snapshot.  Like ``system`` it is a live
    #: extra, not part of the artifact: ``to_dict`` skips it (cache identity
    #: is untouched) and it is excluded from equality so cache-loaded and
    #: freshly computed results still compare equal.
    final_snapshot: Optional[TelemetrySnapshot] = field(
        repr=False, compare=False, default=None
    )

    @property
    def delivery_ratio(self) -> float:
        """Fraction of oracle-interested (node, event) pairs actually delivered."""
        return self.reliability.delivery_ratio

    def summary_row(self) -> Dict[str, float]:
        """One flat dictionary combining fairness and reliability headline numbers."""
        row = {"name": self.config.name, "system": self.config.system, "nodes": self.config.nodes}
        row.update(self.fairness.report.summary_row())
        row.update(self.reliability.summary_row())
        row["total_messages"] = self.total_messages
        return row

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable artifact; inverse of :meth:`from_dict`.

        The live ``system`` object is never serialized: a result loaded from
        disk always carries ``system=None``, which is why cache-backed
        executors recompute runs that need ``keep_system``.
        """
        return {
            "config": self.config.to_dict(),
            "fairness": self.fairness.to_dict(),
            "reliability": self.reliability.to_dict(),
            "published_events": [event.to_dict() for event in self.published_events],
            "interest": self.interest.to_dict(),
            "total_messages": self.total_messages,
            "total_deliveries": self.total_deliveries,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result (without the live system) from :meth:`to_dict` output."""
        return ExperimentResult(
            config=ExperimentConfig.from_dict(payload["config"]),
            fairness=SystemFairnessSummary.from_dict(payload["fairness"]),
            reliability=ReliabilityReport.from_dict(payload["reliability"]),
            published_events=[Event.from_dict(entry) for entry in payload.get("published_events", [])],
            interest=InterestAssignment.from_dict(payload["interest"]),
            total_messages=float(payload["total_messages"]),
            total_deliveries=int(payload["total_deliveries"]),
            system=None,
        )


def _telemetry_collector(simulator, system, policy, telemetry: Telemetry):
    """Build the collect hook refreshing derived gauges before a snapshot.

    Everything recorded here is *read* from the shared ledger/delivery log —
    no RNG draws, no scheduling — so enabling telemetry cannot perturb the
    simulation (the determinism contract of ``docs/ARCHITECTURE.md``).
    Delivery latencies stream incrementally into the bounded
    ``sim.delivery_latency`` histogram (each tick only ingests records that
    arrived since the previous tick).

    Under a multi-domain topology (``system.topology``) every delivery also
    lands in a ``domain=``-tagged ``sim.delivery_latency`` histogram and
    the per-node contribution/benefit gauges carry the node's domain, so
    ``repro report`` can render the per-domain table without re-deriving
    the assignment.
    """
    topology = getattr(system, "topology", None)
    latency_histogram = telemetry.histogram("sim.delivery_latency")
    domain_histograms = {}
    if topology is not None:
        domain_histograms = {
            name: telemetry.histogram("sim.delivery_latency", domain=name)
            for name in topology.domain_map.domains
        }
    consumed = 0

    def _node_tags(node_id: str) -> Dict[str, object]:
        tags: Dict[str, object] = {"node": node_id}
        if topology is not None:
            domain = topology.domain(node_id)
            if domain is not None:
                tags["domain"] = domain
        return tags

    def collect() -> None:
        nonlocal consumed
        records = system.delivery_log.ordered_records()
        for index in range(consumed, len(records)):
            record = records[index]
            latency_histogram.observe(record.latency)
            if domain_histograms:
                domain = topology.domain(record.node_id)
                if domain is not None:
                    domain_histograms[domain].observe(record.latency)
        consumed = len(records)
        totals = system.ledger.totals()
        total_messages = (
            totals.gossip_messages_sent
            + totals.infrastructure_messages
            + totals.subscription_forwards
        )
        telemetry.set_gauge("sim.time", simulator.now)
        telemetry.set_gauge("sim.deliveries", system.delivery_log.total_deliveries())
        telemetry.set_gauge("sim.messages.gossip", totals.gossip_messages_sent)
        telemetry.set_gauge("sim.messages.infrastructure", totals.infrastructure_messages)
        telemetry.set_gauge(
            "sim.messages.subscription_forwards", totals.subscription_forwards
        )
        telemetry.set_gauge("sim.messages.total", total_messages)
        contributions = policy.contributions(system.ledger)
        benefits = policy.benefits(system.ledger)
        fairness_report = evaluate_fairness(contributions, benefits)
        telemetry.set_gauge("fairness.ratio_jain", fairness_report.ratio_jain)
        telemetry.set_gauge("fairness.wasted_share", fairness_report.wasted_share)
        for node_id in sorted(contributions):
            telemetry.set_gauge(
                "node.contribution", contributions[node_id], **_node_tags(node_id)
            )
        for node_id in sorted(benefits):
            telemetry.set_gauge("node.benefit", benefits[node_id], **_node_tags(node_id))

    return collect


def run_experiment(
    config: ExperimentConfig,
    keep_system: bool = False,
    telemetry: Optional[Telemetry] = None,
    snapshot_sinks: Optional[Sequence] = None,
    snapshot_period: Optional[float] = None,
    tracer=None,
) -> ExperimentResult:
    """Run one experiment described by ``config`` and return its measurements.

    ``keep_system`` attaches the live system object to the result, which the
    adaptive-controller benchmarks use to inspect per-node controller
    histories after the run; it is off by default to keep results small.

    ``snapshot_sinks`` (sink objects or ``"jsonl:path"``-style specs) enable
    periodic telemetry snapshots every ``snapshot_period`` simulated time
    units during the run; with or without sinks the result's headline totals
    are read from the run's *final* snapshot, which is attached as
    ``result.final_snapshot``.

    ``tracer`` (a :class:`~repro.tracing.Tracer`) enables causal
    dissemination tracing on gossip-family systems.  Like telemetry it only
    *reads* — span emission draws no RNG and schedules nothing — so a traced
    run's physics are identical to an untraced one.  Tracing is deliberately
    not part of ``config`` (cache keys are untouched by construction), which
    is why traced runs bypass the result cache.
    """
    simulator, network = build_simulation(config)
    if telemetry is None:
        telemetry = Telemetry(time_source=lambda: simulator.now)
    popularity = build_popularity(config)
    system = build_system(
        config, simulator, network, popularity=popularity, telemetry=telemetry
    )
    if tracer is not None:
        tracer.attach_clock(lambda: simulator.now)
        network.tracer = tracer
        for node in system.client_nodes().values():
            if hasattr(node, "_trace_state"):
                node.tracer = tracer
    interest_model = build_interest(config, popularity)
    rng = simulator.rng.stream("experiment-interest")
    interest = interest_model.assign(list(config.node_ids()), rng)
    interest.apply(system)

    publishers = list(config.publisher_ids())
    if config.interest_model == "content":
        assert isinstance(interest_model, AttributeInterest)
        workload = ContentPublicationWorkload(
            system,
            simulator,
            interest_model,
            publishers,
            rate=config.publication_rate,
        )
    else:
        workload = TopicPublicationWorkload(
            system,
            simulator,
            popularity,
            publishers,
            rate=config.publication_rate,
            event_size=config.event_size,
        )
    workload.start(duration=config.duration, start_at=config.round_period)

    plan = FaultPlan.from_flat(config)
    fault_controller: Optional[FaultController] = None
    if not plan.is_empty():
        # Fail fast, before any simulated time passes: an invalid or
        # unsatisfiable plan (unknown nodes, bad probabilities, a system
        # without a process registry) must not quietly measure a calmer run
        # than the config's name claims.  The node universe is the built
        # system's *registry*, not just the client nodes, so plans may
        # target infra participants too (brokers, rendezvous nodes — "kill
        # the rendezvous node of the most popular topic at t=20").
        registry = getattr(system, "registry", None)
        if plan.needs_registry() and registry is None:
            raise FaultPlanError(
                f"config {config.name!r} requests node faults "
                "(churn/crash/recover/leave) but system "
                f"{config.system!r} exposes no process registry; pick a "
                "registry-backed system or drop the node-fault entries"
            )
        universe = (
            registry.ids()
            if registry is not None and len(registry)
            else config.node_ids()
        )
        plan.validate(node_ids=universe, total_time=config.total_time)
        topology = getattr(system, "topology", None)
        fault_controller = FaultController(
            simulator,
            network,
            registry,
            plan,
            domain_map=topology.domain_map if topology is not None else None,
            telemetry=telemetry,
        )
        fault_controller.start()

    subscription_churn: Optional[SubscriptionChurnWorkload] = None
    if config.subscription_churn_rate > 0:
        churners = list(config.node_ids())[len(publishers):] or list(config.node_ids())
        subscription_churn = SubscriptionChurnWorkload(
            system,
            simulator,
            popularity,
            churners,
            operations_per_unit=config.subscription_churn_rate,
        )
        subscription_churn.start(duration=config.duration, start_at=config.round_period)

    policy = resolve_policy(config)
    collect = _telemetry_collector(simulator, system, policy, telemetry)
    scheduler: Optional[SnapshotScheduler] = None
    if snapshot_sinks:
        sinks = [
            parse_sink_spec(sink) if isinstance(sink, str) else sink
            for sink in snapshot_sinks
        ]
        period = snapshot_period if snapshot_period is not None else DEFAULT_SNAPSHOT_PERIOD
        scheduler = SnapshotScheduler(
            telemetry, sinks, period, simulator, collect=collect
        )
        scheduler.start()

    simulator.run(until=config.total_time)

    # Final snapshot before stopping the fault controller: a run that ends
    # mid-partition (or with an open-ended perturbation) must report the
    # fault as active, and stop() clears live network faults and gauges.
    if scheduler is not None:
        final_snapshot = scheduler.stop(final=True)
    else:
        collect()
        final_snapshot = telemetry.snapshot(at=simulator.now)
    if fault_controller is not None:
        fault_controller.stop()

    fairness = summarise_fairness(system.ledger, policy=policy, system_name=config.name)
    reliability = measure_reliability(
        workload.schedule.events,
        system.delivery_log,
        system.subscriptions,
        round_period=config.round_period,
    )
    return ExperimentResult(
        config=config,
        fairness=fairness,
        reliability=reliability,
        published_events=list(workload.schedule.events),
        interest=interest,
        total_messages=final_snapshot.gauge_value("sim.messages.total"),
        total_deliveries=int(final_snapshot.gauge_value("sim.deliveries")),
        system=system if keep_system else None,
        final_snapshot=final_snapshot,
    )
