"""Load generation for live clusters.

The :class:`LoadGenerator` drives publications into a
:class:`~repro.runtime.host.NodeHost` at a target events-per-second, reusing
the simulator's workload models for *what* gets published (Zipf topic
popularity via :class:`~repro.workloads.popularity.TopicPopularity`, or the
content-based attribute space of
:class:`~repro.workloads.interest.AttributeInterest`) while pacing *when* on
the wall clock.  Pacing uses catch-up ticks: each tick publishes however
many events the target rate says should have been published by now, so a
slow tick is repaid on the next one instead of silently lowering the rate.

Throughput and latency land in the host's
:class:`~repro.telemetry.Telemetry` store (the same instruments the
simulator uses), and the published events are recorded in a
:class:`~repro.workloads.publications.PublicationSchedule` so the existing
reliability analysis works on live runs unchanged.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence

from ..telemetry import HistogramSummary
from ..workloads.interest import AttributeInterest
from ..workloads.popularity import TopicPopularity
from ..workloads.publications import PublicationSchedule
from .host import DELIVERIES_METRIC, DELIVERY_LATENCY_METRIC, NodeHost

__all__ = ["LoadGenerator", "LoadReport"]


class LoadReport:
    """Measured throughput and latency of one load-generation run."""

    def __init__(
        self,
        offered_rate: float,
        published: int,
        elapsed_seconds: float,
        deliveries: int,
        latency_seconds: HistogramSummary,
        drain_seconds: float = 0.0,
    ) -> None:
        self.offered_rate = offered_rate
        self.published = published
        self.elapsed_seconds = elapsed_seconds
        self.deliveries = deliveries
        self.latency_seconds = latency_seconds
        #: Extra settle time after the load stopped.  Publication throughput
        #: is measured over the load window alone, but deliveries recorded
        #: during the drain belong to that load, so the delivery-rate
        #: denominator includes it.
        self.drain_seconds = drain_seconds

    @property
    def events_per_second(self) -> float:
        """Achieved publication throughput (events per real second)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.published / self.elapsed_seconds

    @property
    def deliveries_per_second(self) -> float:
        """Achieved delivery throughput (deliveries per real second)."""
        window = self.elapsed_seconds + self.drain_seconds
        if window <= 0:
            return 0.0
        return self.deliveries / window

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by the CLI and the benchmark)."""
        return {
            "offered_rate": self.offered_rate,
            "published": self.published,
            "elapsed_seconds": self.elapsed_seconds,
            "events_per_second": self.events_per_second,
            "deliveries": self.deliveries,
            "deliveries_per_second": self.deliveries_per_second,
            "latency_p50_seconds": self.latency_seconds.p50,
            "latency_p95_seconds": self.latency_seconds.p95,
            "latency_p99_seconds": self.latency_seconds.p99,
            "latency_mean_seconds": self.latency_seconds.mean,
        }

    def describe(self) -> str:
        """One status line for the CLI."""
        latency = self.latency_seconds
        return (
            f"offered {self.offered_rate:.0f} ev/s | achieved {self.events_per_second:.0f} ev/s "
            f"({self.published} events in {self.elapsed_seconds:.2f}s) | "
            f"{self.deliveries} deliveries ({self.deliveries_per_second:.0f}/s) | "
            f"latency p50 {latency.p50 * 1000:.1f}ms p99 {latency.p99 * 1000:.1f}ms"
        )


class LoadGenerator:
    """Publishes events into a live host at a target real-time rate.

    Parameters
    ----------
    host:
        The cluster to drive.
    rate:
        Target publications per real second.
    popularity:
        Topic model for topic-based events (mutually exclusive with
        ``attribute_model``).
    attribute_model:
        Content-based attribute space; when given, events carry attributes
        instead of topics.
    publishers:
        Node ids allowed to publish (defaults to every hosted node),
        round-robin.
    tick_seconds:
        Pacing granularity; smaller ticks smooth the arrival process at the
        cost of more loop wakeups.
    """

    def __init__(
        self,
        host: NodeHost,
        rate: float,
        popularity: Optional[TopicPopularity] = None,
        attribute_model: Optional[AttributeInterest] = None,
        publishers: Optional[Sequence[str]] = None,
        event_size: int = 1,
        tick_seconds: float = 0.02,
        rng_name: str = "runtime-loadgen",
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if popularity is not None and attribute_model is not None:
            raise ValueError("pass either popularity or attribute_model, not both")
        if tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        self.host = host
        self.rate = float(rate)
        self.popularity = popularity
        self.attribute_model = attribute_model
        self.publishers = list(publishers) if publishers else None
        self.event_size = event_size
        self.tick_seconds = tick_seconds
        self.schedule = PublicationSchedule()
        self._rng_name = rng_name
        self._publisher_index = 0
        self._last_report: Optional[LoadReport] = None

    # ---------------------------------------------------------------- drive

    async def run(self, duration_seconds: float) -> LoadReport:
        """Publish at the target rate for ``duration_seconds`` of real time."""
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        publishers = self.publishers or self.host.node_ids()
        if not publishers:
            raise ValueError("the host has no nodes to publish from")
        deliveries_before = self.host.telemetry.counter_value(DELIVERIES_METRIC)
        started = time.monotonic()
        published = 0
        target_total = self.rate * duration_seconds
        while True:
            elapsed = time.monotonic() - started
            if elapsed >= duration_seconds:
                break
            due = min(int(self.rate * elapsed), int(target_total)) - published
            for _ in range(max(due, 0)):
                self._publish_one(publishers)
                published += 1
            await asyncio.sleep(self.tick_seconds)
        elapsed = time.monotonic() - started
        deliveries = self.host.telemetry.counter_value(DELIVERIES_METRIC) - deliveries_before
        self._last_report = LoadReport(
            offered_rate=self.rate,
            published=published,
            elapsed_seconds=elapsed,
            deliveries=int(deliveries),
            latency_seconds=self.latency_summary_seconds(),
        )
        return self._last_report

    def _publish_one(self, publishers: Sequence[str]) -> None:
        rng = self.host.scheduler.rng.stream(self._rng_name)
        publisher = publishers[self._publisher_index % len(publishers)]
        self._publisher_index += 1
        if self.attribute_model is not None:
            attributes = self.attribute_model.random_event_attributes(rng)
            event = self.host.publish(publisher, **attributes)
        elif self.popularity is not None:
            topic = self.popularity.sample(rng)
            event = self.host.publish(publisher, topic=topic, size=self.event_size)
        else:
            event = self.host.publish(publisher, topic="default", size=self.event_size)
        self.schedule.add(event)

    # -------------------------------------------------------------- reports

    @property
    def last_report(self) -> Optional[LoadReport]:
        """The report of the most recent :meth:`run` (None before the first)."""
        return self._last_report

    def latency_summary_seconds(self) -> HistogramSummary:
        """Delivery latency summary converted from time units to seconds."""
        units = self.host.telemetry.histogram_summary(DELIVERY_LATENCY_METRIC)
        convert = self.host.clock.units_to_seconds
        return HistogramSummary(
            count=units.count,
            mean=convert(units.mean),
            minimum=convert(units.minimum),
            maximum=convert(units.maximum),
            stddev=convert(units.stddev),
            p50=convert(units.p50),
            p95=convert(units.p95),
            p99=convert(units.p99),
        )
