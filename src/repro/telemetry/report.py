"""Post-hoc reporting: render tables from telemetry and result artifacts.

Backs ``python -m repro report ARTIFACT``.  The loader sniffs the artifact
kind — no re-running experiments required:

* **JSON-lines snapshot streams** (``--telemetry jsonl:...`` output): a
  per-snapshot time-series table plus fairness / latency tables built from
  the *final* snapshot via the snapshot-aware constructors in
  :mod:`repro.analysis`;
* **experiment result artifacts** (``--json`` output of
  ``run``/``sweep``/``compare``: ``{"schema": ..., "results": [...]}``);
* **cache artifacts** (one ``{"schema": ..., "result": {...}}`` file from
  ``.repro-cache``);
* **runtime artifacts** (``serve``/``loadgen`` ``--json`` output,
  ``rt-load/v1``);
* **campaign run manifests** (``manifest.json`` written by
  ``python -m repro campaign``, ``campaign-manifest/v1``).

Results loaded from an artifact and results loaded from the cache render
through the same code path, so the tables are identical for identical
result payloads — the property ``tests/test_telemetry.py`` pins.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Tuple

from .snapshot import SNAPSHOT_SCHEMA, TelemetrySnapshot
from .sinks import read_snapshots_jsonl

__all__ = [
    "load_report_source",
    "render_report",
    "render_results",
    "render_snapshots",
    "ReportSource",
]


class ReportSource:
    """One loaded artifact: its kind plus the decoded payload."""

    def __init__(
        self, kind: str, path: str, snapshots=None, results=None, runtime=None, spans=None
    ):
        self.kind = kind  # "snapshots" | "results" | "runtime" | "trace" | "manifest"
        self.path = path
        self.snapshots: List[TelemetrySnapshot] = snapshots or []
        self.results = results or []
        # Campaign manifests share the raw-payload slot with runtime artifacts.
        self.runtime: Dict[str, object] = runtime or {}
        self.spans = spans or []


def _looks_like_snapshot_line(line: str) -> bool:
    try:
        payload = json.loads(line)
    except ValueError:
        return False
    return isinstance(payload, dict) and payload.get("schema") == SNAPSHOT_SCHEMA


def load_report_source(path: str) -> ReportSource:
    """Sniff and load one artifact; raises ``ValueError`` on unknown shapes."""
    if not os.path.exists(path):
        raise ValueError(f"artifact {path!r} does not exist")
    with open(path, "r", encoding="utf-8") as handle:
        head = handle.readline().strip()
    # Cheap JSON-lines sniff: only attempt to parse the head line when it
    # can plausibly be a snapshot (pretty-printed artifacts start with a
    # bare "{" and are skipped without parsing anything twice).
    if SNAPSHOT_SCHEMA in head and _looks_like_snapshot_line(head):
        return ReportSource("snapshots", path, snapshots=read_snapshots_jsonl(path))
    from ..tracing import TRACE_SCHEMA, read_spans_jsonl

    if TRACE_SCHEMA in head:
        return ReportSource("trace", path, spans=read_spans_jsonl(path))

    from ..experiments.runner import ExperimentResult

    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except ValueError as error:
            raise ValueError(
                f"artifact {path!r} is neither JSON-lines telemetry nor a JSON artifact: {error}"
            )
    if not isinstance(payload, dict):
        raise ValueError(f"artifact {path!r} is not a JSON object")
    if payload.get("schema") == SNAPSHOT_SCHEMA:
        return ReportSource(
            "snapshots", path, snapshots=[TelemetrySnapshot.from_dict(payload)]
        )
    if "results" in payload:
        results = [ExperimentResult.from_dict(entry) for entry in payload["results"]]
        return ReportSource("results", path, results=results)
    if "result" in payload:
        return ReportSource(
            "results", path, results=[ExperimentResult.from_dict(payload["result"])]
        )
    if str(payload.get("schema", "")).startswith("rt-load/"):
        return ReportSource("runtime", path, runtime=payload)
    if str(payload.get("schema", "")).startswith("campaign-manifest/"):
        return ReportSource("manifest", path, runtime=payload)
    raise ValueError(
        f"artifact {path!r} has an unrecognised shape; expected a telemetry "
        "JSON-lines stream, a trace JSON-lines stream (--trace), a results "
        "artifact (--json), a cache artifact, or a runtime artifact"
    )


# ---------------------------------------------------------------- rendering


def render_results(results: Sequence, max_rows: int = 10) -> str:
    """Fairness + reliability + latency tables for experiment results."""
    from ..analysis.tables import Table
    from ..experiments.sweeps import results_table

    sections: List[str] = [results_table(results, title="results").render()]
    latency = Table(
        ["name", "events", "mean_latency", "p95_latency", "max_latency", "mean_rounds"],
        title="delivery latency (time units)",
    )
    for result in results:
        reliability = result.reliability
        latency.add_row(
            name=result.config.name,
            events=len(reliability.events),
            mean_latency=reliability.mean_latency,
            p95_latency=reliability.p95_latency,
            max_latency=reliability.max_latency,
            mean_rounds=reliability.mean_rounds,
        )
    sections.append(latency.render())
    for result in results:
        sections.append(result.fairness.render(max_rows=max_rows))
    return "\n\n".join(sections)


def _series_columns(snapshots: Sequence[TelemetrySnapshot]) -> Tuple[List[str], List[str]]:
    """Untagged counter and gauge names present in the final snapshot."""
    final = snapshots[-1]
    counters = sorted({name for name, tags, _ in final.counters if not tags})
    gauges = sorted({name for name, tags, _ in final.gauges if not tags})
    return counters, gauges


def _fault_timeline(snapshots: Sequence[TelemetrySnapshot]):
    """Fault-event table over the snapshot stream, or ``None`` without faults.

    The fault layer emits ``fault.events`` / ``fault.skipped`` counters
    tagged by ``action`` plus the ``fault.partition_active`` /
    ``fault.perturb_active`` / ``fault.nodes_down`` gauges; this renders
    them as one row per snapshot so the failure pattern reads next to the
    fairness tables.
    """
    from ..analysis.tables import Table

    final = snapshots[-1]
    actions = sorted(
        dict(tags).get("action", "?")
        for name, tags, _ in final.counters
        if name == "fault.events"
    )
    fault_gauges = [
        name
        for name in ("fault.nodes_down", "fault.partition_active", "fault.perturb_active")
        if any(gauge_name == name for gauge_name, _, _ in final.gauges)
    ]
    skipped = any(name == "fault.skipped" for name, _, _ in final.counters)
    if not actions and not fault_gauges and not skipped:
        return None
    columns = ["sequence", "at"] + actions + (["skipped"] if skipped else []) + fault_gauges
    table = Table(columns, title="fault timeline (cumulative events per snapshot)")
    for snapshot in snapshots:
        events = {
            dict(tags).get("action", "?"): value
            for name, tags, value in snapshot.counters
            if name == "fault.events"
        }
        gauges = {name: value for name, tags, value in snapshot.gauges if not tags}
        row: Dict[str, object] = {"sequence": snapshot.sequence, "at": snapshot.at}
        for action in actions:
            row[action] = events.get(action, 0.0)
        if skipped:
            row["skipped"] = sum(
                value for name, _, value in snapshot.counters if name == "fault.skipped"
            )
        for name in fault_gauges:
            row[name] = gauges.get(name, 0.0)
        table.add_row(**row)
    return table


_RECOVERY_COUNTERS = (
    "lazy.pulls_issued",
    "lazy.pulls_served",
    "lazy.recoveries",
    "lazy.events_saved",
)
_RECOVERY_GAUGES = ("lazy.hot_events", "lazy.store_events", "lazy.store_bytes")


def _recovery_table(snapshots: Sequence[TelemetrySnapshot]):
    """Recovery table for lazy-push telemetry, or ``None`` without any.

    The lazy-push nodes emit node-tagged ``lazy.*`` counters (pulls issued/
    served, recovered events, events a digest saved from an eager re-send)
    and phase gauges (hot/store occupancy); this sums them across nodes, one
    row per snapshot, so the pull-recovery behaviour reads as a timeline.
    ``events_saved`` counts known ids seen in digests — payload the eager
    protocol would have re-pushed, i.e. the bytes the lazy phase saved.
    """
    from ..analysis.tables import Table

    final = snapshots[-1]
    present = {name for name, _, _ in final.counters} | {
        name for name, _, _ in final.gauges
    }
    counters = [name for name in _RECOVERY_COUNTERS if name in present]
    gauges = [name for name in _RECOVERY_GAUGES if name in present]
    if not counters and not gauges:
        return None
    def short(name: str) -> str:
        return name.split(".", 1)[1]
    table = Table(
        ["sequence", "at"] + [short(name) for name in counters + gauges],
        title="lazy recovery (cumulative pulls, nodes summed per snapshot)",
    )
    for snapshot in snapshots:
        row: Dict[str, object] = {"sequence": snapshot.sequence, "at": snapshot.at}
        for name in counters:
            row[short(name)] = sum(
                value for counter, _, value in snapshot.counters if counter == name
            )
        for name in gauges:
            row[short(name)] = sum(
                value for gauge, _, value in snapshot.gauges if gauge == name
            )
        table.add_row(**row)
    return table


#: Delivery-latency histograms the domain table understands (simulator and
#: live-runtime spellings).
_DOMAIN_LATENCY_METRICS = ("sim.delivery_latency", "rt.delivery_latency_units")


def _domain_table(snapshots: Sequence[TelemetrySnapshot]):
    """Per-domain delivery table for multi-domain runs, or ``None`` without.

    Multi-domain stacks (see :mod:`repro.topology`) emit ``domain=``-tagged
    delivery-latency histograms plus ``bridge.relayed`` / ``bridge.absorbed``
    / ``bridge.duplicate`` counters tagged with the egress/ingress domain;
    this renders one row per domain and a closing cross-domain totals row,
    so intra- vs cross-domain behaviour reads straight off the report.
    """
    from ..analysis.tables import Table

    final = snapshots[-1]
    latency: Dict[object, object] = {}
    for name, tags, state in final.histograms:
        tag_map = dict(tags)
        if name in _DOMAIN_LATENCY_METRICS and "domain" in tag_map:
            latency[tag_map["domain"]] = state.summary()
    bridges: Dict[object, Dict[str, float]] = {}
    for name, tags, value in final.counters:
        if name in ("bridge.relayed", "bridge.absorbed", "bridge.duplicate"):
            domain = dict(tags).get("domain")
            if domain is not None:
                bridges.setdefault(domain, {})[name] = value
    domains = sorted(set(latency) | set(bridges))
    if not domains:
        return None
    table = Table(
        [
            "domain",
            "deliveries",
            "mean_latency",
            "p95_latency",
            "relayed_out",
            "absorbed_in",
            "duplicates",
        ],
        title="per-domain deliveries + cross-domain bridge traffic (final snapshot)",
    )
    totals = {"deliveries": 0, "relayed": 0.0, "absorbed": 0.0, "duplicates": 0.0}
    for domain in domains:
        summary = latency.get(domain)
        counters = bridges.get(domain, {})
        relayed = counters.get("bridge.relayed", 0.0)
        absorbed = counters.get("bridge.absorbed", 0.0)
        duplicates = counters.get("bridge.duplicate", 0.0)
        totals["deliveries"] += summary.count if summary is not None else 0
        totals["relayed"] += relayed
        totals["absorbed"] += absorbed
        totals["duplicates"] += duplicates
        table.add_row(
            domain=domain,
            deliveries=summary.count if summary is not None else 0,
            mean_latency=summary.mean if summary is not None else 0.0,
            p95_latency=summary.p95 if summary is not None else 0.0,
            relayed_out=relayed,
            absorbed_in=absorbed,
            duplicates=duplicates,
        )
    table.add_row(
        domain="(cross-domain)",
        deliveries=totals["deliveries"],
        mean_latency="",
        p95_latency="",
        relayed_out=totals["relayed"],
        absorbed_in=totals["absorbed"],
        duplicates=totals["duplicates"],
    )
    return table


def render_snapshots(snapshots: Sequence[TelemetrySnapshot], max_rows: int = 10) -> str:
    """Time-series + final-state tables for a snapshot stream."""
    from ..analysis.fairness_report import fairness_table_from_snapshot
    from ..analysis.tables import Table

    if not snapshots:
        return "(no snapshots in artifact)"
    counters, gauges = _series_columns(snapshots)
    series = Table(
        ["sequence", "at"] + counters + gauges,
        title=f"telemetry time series ({len(snapshots)} snapshots)",
    )
    for snapshot in snapshots:
        # One dict per snapshot instead of a linear counter_value/gauge_value
        # scan per cell — snapshots of large runs carry thousands of tagged
        # entries and the per-lookup scan makes rendering quadratic.
        counter_values = {name: value for name, tags, value in snapshot.counters if not tags}
        gauge_values = {name: value for name, tags, value in snapshot.gauges if not tags}
        row: Dict[str, object] = {"sequence": snapshot.sequence, "at": snapshot.at}
        for name in counters:
            row[name] = counter_values.get(name, 0.0)
        for name in gauges:
            row[name] = gauge_values.get(name, 0.0)
        series.add_row(**row)
    sections = [series.render()]

    faults = _fault_timeline(snapshots)
    if faults is not None:
        sections.append(faults.render())

    recovery = _recovery_table(snapshots)
    if recovery is not None:
        sections.append(recovery.render())

    domain = _domain_table(snapshots)
    if domain is not None:
        sections.append(domain.render())

    final = snapshots[-1]
    if final.histograms:
        # Aggregate (untagged) histograms first — per-node ones are many and
        # would otherwise crowd the headline latency metrics past the cap.
        untagged = [entry for entry in final.histograms if not entry[1]]
        tagged = [entry for entry in final.histograms if entry[1]]
        shown = (untagged + tagged)[:max_rows]
        title = "histograms (final snapshot)"
        if len(final.histograms) > len(shown):
            title += f" — {len(shown)} of {len(final.histograms)}"
        latency = Table(
            ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
            title=title,
        )
        for name, tags, state in shown:
            summary = state.summary()
            label = name if not tags else name + "{" + ",".join(
                f"{key}={value}" for key, value in tags
            ) + "}"
            latency.add_row(
                histogram=label,
                count=summary.count,
                mean=summary.mean,
                p50=summary.p50,
                p95=summary.p95,
                p99=summary.p99,
                max=summary.maximum,
            )
        sections.append(latency.render())

    fairness = fairness_table_from_snapshot(final, max_rows=max_rows)
    if fairness is not None:
        sections.append(fairness.render())
    return "\n\n".join(sections)


def _render_runtime(artifact: Dict[str, object]) -> str:
    from ..analysis.tables import format_mapping

    load = artifact.get("load", {})
    rows = {
        "schema": artifact.get("schema"),
        "transport": artifact.get("transport"),
        "system": artifact.get("system"),
        "nodes": artifact.get("nodes"),
        "delivery_ratio": artifact.get("delivery_ratio"),
        "events_per_second": load.get("events_per_second"),
        "deliveries_per_second": load.get("deliveries_per_second"),
        "latency_p50_seconds": load.get("latency_p50_seconds"),
        "latency_p99_seconds": load.get("latency_p99_seconds"),
    }
    fairness = artifact.get("fairness", {})
    if isinstance(fairness, dict):
        for key in ("ratio_jain", "wasted_share"):
            if key in fairness:
                rows[f"fairness_{key}"] = fairness[key]
    rows = {key: value for key, value in rows.items() if value is not None}
    return format_mapping(rows, title="runtime artifact")


def render_report(source: ReportSource, max_rows: int = 10) -> str:
    """Render whatever the loaded artifact contains."""
    if source.kind == "snapshots":
        return render_snapshots(source.snapshots, max_rows=max_rows)
    if source.kind == "results":
        return render_results(source.results, max_rows=max_rows)
    if source.kind == "trace":
        # Trace streams render aggregates here; the `repro trace` command
        # adds per-event infection trees on top of the same analysis.
        from ..tracing import analyze_spans, render_trace

        return render_trace(
            analyze_spans(source.spans), max_events=0, max_rows=max_rows
        )
    if source.kind == "manifest":
        return _render_manifest(source.runtime)
    return _render_runtime(source.runtime)


def _render_manifest(manifest: Dict[str, object]) -> str:
    """Tables for a campaign run manifest (``campaign-manifest/v1``)."""
    from ..analysis.tables import Table

    timing = manifest.get("timing", {}) if isinstance(manifest.get("timing"), dict) else {}
    service_elapsed = timing.get("services", {}) if isinstance(timing, dict) else {}
    services = Table(
        ["service", "status", "points", "cache hits", "computed", "elapsed (s)"],
        title=f"campaign {manifest.get('campaign', '?')} — services "
        f"(repro {manifest.get('version', '?')})",
    )
    for name, record in manifest.get("services", {}).items():
        points = record.get("points", [])
        services.add_row(
            service=name,
            status=record.get("status", "?"),
            points=len(points),
            **{
                "cache hits": record.get("cache_hits", 0),
                "computed": record.get("computed", 0),
                "elapsed (s)": service_elapsed.get(name, ""),
            },
        )
    targets = Table(["target", "status", "inputs", "outputs"], title="targets")
    for name, record in manifest.get("targets", {}).items():
        targets.add_row(
            target=name,
            status=record.get("status", "?"),
            inputs=", ".join(record.get("inputs", [])),
            outputs=", ".join(record.get("outputs", [])),
        )
    totals = manifest.get("totals", {})
    cache = manifest.get("cache", {})
    summary = (
        f"totals: {totals.get('points', 0)} point(s) | "
        f"cache hits: {totals.get('cache_hits', 0)} | "
        f"computed: {totals.get('computed', 0)} | "
        f"cache corrupt: {cache.get('corrupt', 0)} | "
        f"wall: {timing.get('wall_seconds', 0):.2f}s"
        if isinstance(timing.get("wall_seconds"), (int, float))
        else f"totals: {totals.get('points', 0)} point(s)"
    )
    return "\n\n".join([services.render(), targets.render(), summary])
