"""Hierarchical multi-domain topology: domains, bridges, and geo links.

The paper evaluates gossip on one flat population; the road to "millions of
users" shards that population into *domains* (datacenters, regions).  This
package is the declarative layer that makes a domain layout a first-class,
cache-keyed part of an experiment:

* :class:`~repro.topology.spec.TopologySpec` — JSON-round-trippable
  description: domain count (or an explicit node→domain assignment), a
  per-domain-pair geo latency/loss matrix, and the bridge selection policy;
* :class:`~repro.topology.domains.DomainMap` — the compiled form: member
  lists, deterministic sha256-ranked bridge sets, and resolved link
  effects for every domain pair;
* :class:`~repro.topology.geo.GeoLinkProfile` — installs the matrix on a
  network fabric as per-link latency/loss (both the discrete-event
  :class:`~repro.sim.network.Network` and the live
  :class:`~repro.runtime.network.RuntimeNetwork` consult it on their send
  paths);
* :class:`~repro.topology.membership.DomainScopedMembership` — wraps any
  membership component so peer sampling stays intra-domain;
* :class:`~repro.topology.bridge.BridgeRouter` — re-publishes topic events
  across domain boundaries through designated bridge nodes, with
  duplicate suppression and ``bridge.*`` telemetry.

Everything here is deterministic: bridge and relay selection hash event and
domain names with sha256 (never Python's salted ``hash``), and a topology-free
spec leaves every network draw sequence byte-identical to the flat layout.
"""

from .bridge import BRIDGE_MESSAGE_KIND, BridgeRouter
from .domains import DomainMap, compile_domain_map
from .geo import GeoLinkProfile
from .membership import DomainScopedMembership, domain_scoped_provider
from .runtime import TopologyRuntime
from .spec import TOPOLOGY_SCHEMA, TopologyError, TopologySpec

__all__ = [
    "TOPOLOGY_SCHEMA",
    "TopologyError",
    "TopologySpec",
    "DomainMap",
    "compile_domain_map",
    "GeoLinkProfile",
    "DomainScopedMembership",
    "domain_scoped_provider",
    "BridgeRouter",
    "BRIDGE_MESSAGE_KIND",
    "TopologyRuntime",
]
