"""Interest assignment: which node subscribes to what.

The fairness question only becomes interesting when interests differ across
processes (§4.2: "the interest of processes may exhibit big differences").
Three assignment models are provided:

* :class:`UniformInterest` — every node subscribes to the same number of
  topics drawn uniformly; the control case in which classic gossip is
  already fair.
* :class:`ZipfInterest` — per-node subscription counts and topic choices
  both follow skewed distributions: a few nodes subscribe to many popular
  topics, most nodes to one or two.
* :class:`CommunityInterest` — nodes belong to communities, each focused on
  a subset of topics with a small probability of out-of-community interests;
  models the clustered interest structure real deployments show.

For expressive (content-based) experiments, :class:`AttributeInterest`
assigns content filters over a synthetic attribute space instead of topics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..pubsub.filters import AttributeCondition, ContentFilter, Filter, TopicFilter, filter_from_dict
from .popularity import TopicPopularity

__all__ = [
    "InterestAssignment",
    "UniformInterest",
    "ZipfInterest",
    "CommunityInterest",
    "AttributeInterest",
]


@dataclass(frozen=True)
class InterestAssignment:
    """The result of an interest model: filters per node."""

    filters_by_node: Dict[str, Tuple[Filter, ...]]

    def filters_of(self, node_id: str) -> Tuple[Filter, ...]:
        """Filters assigned to one node (empty tuple if none)."""
        return self.filters_by_node.get(node_id, ())

    def topics_of(self, node_id: str) -> List[str]:
        """Topics pinned by the node's filters."""
        topics: List[str] = []
        for subscription_filter in self.filters_of(node_id):
            topics.extend(subscription_filter.topics)
        return sorted(set(topics))

    def subscription_count(self, node_id: str) -> int:
        """Number of filters assigned to one node."""
        return len(self.filters_of(node_id))

    def apply(self, system, callbacks: Sequence = ()) -> None:
        """Subscribe every node on a dissemination system accordingly."""
        for node_id, filters in sorted(self.filters_by_node.items()):
            for subscription_filter in filters:
                system.subscribe(node_id, subscription_filter, callbacks=callbacks)

    def all_topics(self) -> List[str]:
        """Every topic referenced by at least one filter."""
        topics: set = set()
        for filters in self.filters_by_node.values():
            for subscription_filter in filters:
                topics.update(subscription_filter.topics)
        return sorted(topics)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "filters_by_node": {
                node_id: [subscription_filter.to_dict() for subscription_filter in filters]
                for node_id, filters in sorted(self.filters_by_node.items())
            }
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "InterestAssignment":
        """Rebuild an assignment from :meth:`to_dict` output."""
        filters_by_node = {
            node_id: tuple(filter_from_dict(entry) for entry in filters)
            for node_id, filters in payload["filters_by_node"].items()
        }
        return InterestAssignment(filters_by_node=filters_by_node)


class UniformInterest:
    """Every node subscribes to ``topics_per_node`` uniformly chosen topics."""

    def __init__(self, popularity: TopicPopularity, topics_per_node: int = 2) -> None:
        if topics_per_node <= 0:
            raise ValueError("topics_per_node must be positive")
        self.popularity = popularity
        self.topics_per_node = topics_per_node

    def assign(self, node_ids: Sequence[str], rng: random.Random) -> InterestAssignment:
        """Build the per-node filter assignment."""
        topics = list(self.popularity.topics)
        filters: Dict[str, Tuple[Filter, ...]] = {}
        for node_id in node_ids:
            count = min(self.topics_per_node, len(topics))
            chosen = rng.sample(topics, count)
            filters[node_id] = tuple(TopicFilter(topic) for topic in sorted(chosen))
        return InterestAssignment(filters_by_node=filters)


class ZipfInterest:
    """Skewed interest: popular topics attract most subscriptions.

    Each node draws its subscription count from a truncated geometric-like
    distribution between ``min_topics`` and ``max_topics`` and then picks
    that many distinct topics according to topic popularity.
    """

    def __init__(
        self,
        popularity: TopicPopularity,
        min_topics: int = 1,
        max_topics: int = 8,
        heavy_tail: float = 0.6,
    ) -> None:
        if min_topics <= 0 or max_topics < min_topics:
            raise ValueError("require 0 < min_topics <= max_topics")
        if not 0.0 < heavy_tail < 1.0:
            raise ValueError("heavy_tail must be within (0, 1)")
        self.popularity = popularity
        self.min_topics = min_topics
        self.max_topics = max_topics
        self.heavy_tail = heavy_tail

    def _subscription_count(self, rng: random.Random) -> int:
        count = self.min_topics
        while count < self.max_topics and rng.random() < self.heavy_tail:
            count += 1
        return count

    def assign(self, node_ids: Sequence[str], rng: random.Random) -> InterestAssignment:
        """Build the per-node filter assignment."""
        filters: Dict[str, Tuple[Filter, ...]] = {}
        for node_id in node_ids:
            count = self._subscription_count(rng)
            chosen = self.popularity.sample_many(rng, count, distinct=True)
            filters[node_id] = tuple(TopicFilter(topic) for topic in sorted(chosen))
        return InterestAssignment(filters_by_node=filters)


class CommunityInterest:
    """Clustered interest: communities of nodes share topic sets."""

    def __init__(
        self,
        popularity: TopicPopularity,
        communities: int = 4,
        topics_per_node: int = 3,
        crossover_probability: float = 0.1,
    ) -> None:
        if communities <= 0 or topics_per_node <= 0:
            raise ValueError("communities and topics_per_node must be positive")
        if not 0.0 <= crossover_probability <= 1.0:
            raise ValueError("crossover_probability must be within [0, 1]")
        self.popularity = popularity
        self.communities = communities
        self.topics_per_node = topics_per_node
        self.crossover_probability = crossover_probability

    def assign(self, node_ids: Sequence[str], rng: random.Random) -> InterestAssignment:
        """Build the per-node filter assignment."""
        topics = list(self.popularity.topics)
        community_topics: List[List[str]] = [[] for _ in range(self.communities)]
        for index, topic in enumerate(topics):
            community_topics[index % self.communities].append(topic)
        filters: Dict[str, Tuple[Filter, ...]] = {}
        for index, node_id in enumerate(node_ids):
            community = index % self.communities
            own = community_topics[community] or topics
            count = min(self.topics_per_node, len(own))
            chosen = set(rng.sample(own, count))
            if rng.random() < self.crossover_probability:
                chosen.add(rng.choice(topics))
            filters[node_id] = tuple(TopicFilter(topic) for topic in sorted(chosen))
        return InterestAssignment(filters_by_node=filters)


class AttributeInterest:
    """Content-based interest over a synthetic attribute space.

    Events carry ``category`` (categorical) and ``level`` (integer 0..9)
    attributes in addition to an optional topic; each node gets
    ``filters_per_node`` conjunctive filters such as ``category == "metals"
    AND level >= 6``.  This exercises the expressive selection path of §5.2
    where grouping nodes by interest is not possible.
    """

    def __init__(
        self,
        categories: Sequence[str] = ("metals", "energy", "crops", "tech"),
        filters_per_node: int = 2,
        level_range: Tuple[int, int] = (0, 9),
    ) -> None:
        if not categories:
            raise ValueError("at least one category is required")
        if filters_per_node <= 0:
            raise ValueError("filters_per_node must be positive")
        self.categories = list(categories)
        self.filters_per_node = filters_per_node
        self.level_range = level_range

    def random_event_attributes(self, rng: random.Random) -> Dict[str, object]:
        """Attributes for one synthetic event drawn from the same space."""
        low, high = self.level_range
        return {
            "category": rng.choice(self.categories),
            "level": rng.randint(low, high),
        }

    def assign(self, node_ids: Sequence[str], rng: random.Random) -> InterestAssignment:
        """Build the per-node content-filter assignment."""
        low, high = self.level_range
        filters: Dict[str, Tuple[Filter, ...]] = {}
        for node_id in node_ids:
            node_filters: List[Filter] = []
            for index in range(self.filters_per_node):
                category = rng.choice(self.categories)
                threshold = rng.randint(low, high)
                node_filters.append(
                    ContentFilter(
                        conditions=(
                            AttributeCondition("category", "==", category),
                            AttributeCondition("level", ">=", threshold),
                        ),
                        name=f"{node_id}-f{index}",
                    )
                )
            filters[node_id] = tuple(node_filters)
        return InterestAssignment(filters_by_node=filters)
