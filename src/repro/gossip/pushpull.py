"""Push-pull gossip variant.

The push protocol of Figure 4 sends full events eagerly; when events are
large, most of that traffic is redundant because receivers already know most
of what they are sent.  The push-pull variant first advertises event *ids*
(a digest), and the receiver pulls only the events it is missing.  The
variant is included because it changes what "contribution" means physically:
digest messages are small, pull replies are large, so the payload-weighted
fairness accounting of Figure 3 treats the two protocols differently even
when their message counts are similar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..pubsub.events import Event
from ..sim.network import Message
from .push import GOSSIP_MESSAGE_KIND, GossipMessage, PushGossipNode

__all__ = ["DigestMessage", "PullRequest", "PushPullGossipNode"]

DIGEST_KIND = "gossip.digest"
PULL_REQUEST_KIND = "gossip.pull-request"
PULL_REPLY_KIND = "gossip.pull-reply"


@dataclass(frozen=True)
class DigestMessage:
    """Advertisement of event ids known by the sender."""

    event_ids: Tuple[str, ...]
    sender_benefit_rate: float = 0.0


@dataclass(frozen=True)
class PullRequest:
    """Request for the events the receiver was missing."""

    event_ids: Tuple[str, ...]


class PushPullGossipNode(PushGossipNode):
    """Gossip node that advertises digests and serves pull requests.

    The node still pushes full events for *fresh* events it published itself
    this round (so new events enter the system without an extra round-trip),
    and uses digests for everything else.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.pull_requests_served = 0
        self.pull_requests_sent = 0

    # ----------------------------------------------------------- the round

    def execute_gossip_round(self) -> None:
        fanout = self.current_fanout()
        gossip_size = self.current_gossip_size()
        if fanout <= 0:
            return
        rng = self.simulator.rng.stream(f"gossip:{self.node_id}")
        neighbors = self.select_participants(fanout, rng)
        if not neighbors:
            return
        events = self.select_events(gossip_size, rng)
        if not events:
            return
        digest = DigestMessage(
            event_ids=tuple(event.event_id for event in events),
            sender_benefit_rate=self.benefit_rate(),
        )
        self.buffer.mark_forwarded(digest.event_ids)
        for neighbor in neighbors:
            self.send(neighbor, DIGEST_KIND, payload=digest, size=max(1, len(digest.event_ids) // 4))
        self.ledger.record_gossip_send(
            self.node_id,
            messages=len(neighbors),
            events=0,
            size=max(1, len(digest.event_ids) // 4) * len(neighbors),
        )

    # ------------------------------------------------------------ receiving

    def on_message(self, message: Message) -> None:
        if self.membership.handle(message):
            return
        if message.kind == DIGEST_KIND:
            self._handle_digest(message)
        elif message.kind == PULL_REQUEST_KIND:
            self._handle_pull_request(message)
        elif message.kind in (PULL_REPLY_KIND, GOSSIP_MESSAGE_KIND):
            self._handle_gossip(message)

    def _handle_digest(self, message: Message) -> None:
        payload: DigestMessage = message.payload
        self.observe_peer_benefit(message.sender, payload.sender_benefit_rate)
        missing = tuple(
            event_id for event_id in payload.event_ids if event_id not in self.seen_event_ids
        )
        if not missing:
            return
        self.pull_requests_sent += 1
        self.send(
            message.sender,
            PULL_REQUEST_KIND,
            payload=PullRequest(event_ids=missing),
            size=max(1, len(missing) // 4),
        )

    def _handle_pull_request(self, message: Message) -> None:
        payload: PullRequest = message.payload
        events = [
            event
            for event in (self.buffer.get(event_id) for event_id in payload.event_ids)
            if event is not None
        ]
        if not events:
            return
        reply = GossipMessage(events=tuple(events), sender_benefit_rate=self.benefit_rate())
        self.pull_requests_served += 1
        self.send(message.sender, PULL_REPLY_KIND, payload=reply, size=reply.size)
        self.ledger.record_gossip_send(
            self.node_id, messages=1, events=len(events), size=reply.size
        )
