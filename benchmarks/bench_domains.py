"""Multi-domain topology: intra- vs cross-domain delivery under partition.

The topology layer (``repro.topology``) scopes gossip to domains, taxes
cross-domain links with a geo latency/loss matrix, and federates domains
through deterministic bridge relays.  This benchmark measures what that
buys and costs at 2/4/8 domains on the same 48-node workload:

* **intra vs cross latency** — mean delivery latency for recipients in the
  publisher's domain vs recipients reached over at least one bridge hop
  (the geo matrix adds 1.0 units per cross link, so the gap should show
  the bridge path, not noise);
* **reliability per byte** — delivery ratio over total bytes carried, the
  same economy metric ``bench_lazy_recovery`` uses, so the bridge overhead
  is comparable across the suite;
* **partition survival** — every run executes a FaultPlan that isolates
  domain ``d1`` mid-run and heals it; the headline assertion is that
  events published in *other* domains during the window still reach ``d1``
  after the heal (bridges re-relay across the healed cut).

Writes ``BENCH_domains.json`` (override with ``REPRO_BENCH_DOMAINS_JSON``).

Environment knobs:

* ``REPRO_BENCH_DOMAINS_SEEDS`` — comma-separated seeds (default ``7,23``).
* ``REPRO_BENCH_DOMAINS_NODES`` — population size (default 48).
* ``REPRO_BENCH_DOMAINS_JSON``  — artifact path.
"""

from __future__ import annotations

import json
import os

from repro.experiments import ExperimentConfig, run_experiment

ARTIFACT = os.environ.get("REPRO_BENCH_DOMAINS_JSON", "BENCH_domains.json")
SEEDS = tuple(
    int(seed) for seed in os.environ.get("REPRO_BENCH_DOMAINS_SEEDS", "7,23").split(",")
)
NODES = int(os.environ.get("REPRO_BENCH_DOMAINS_NODES", "48"))

DOMAIN_COUNTS = (2, 4, 8)

#: The partition window every cell runs: domain d1 drops off at t=3 and
#: heals at t=6; the drain is long enough for post-heal re-relays to land.
PARTITION_AT = 3.0
HEAL_AT = 6.0
FAULT_PLAN = (
    (
        ("kind", "partition"),
        ("at", PARTITION_AT),
        ("heal_after", HEAL_AT - PARTITION_AT),
        ("domains", ("d1",)),
    ),
)


def _config(domains: int, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"domains/{domains}",
        nodes=NODES,
        topics=6,
        interest_model="zipf",
        max_topics_per_node=4,
        publication_rate=2.0,
        duration=8.0,
        drain_time=10.0,
        fanout=3,
        gossip_size=8,
        seed=seed,
        topology_domains=domains,
        topology_bridges_per_domain=2,
        topology_cross_latency=1.0,
        topology_cross_loss=0.02,
        fault_plan=FAULT_PLAN,
    )


def _publisher_of(event_id: str) -> str:
    # Event ids are ``publisher#sequence`` (see repro.pubsub.events).
    return event_id.rsplit("#", 1)[0]


def _run(domains: int, seed: int) -> dict:
    result = run_experiment(_config(domains, seed), keep_system=True)
    system = result.system
    domain_map = system.topology.domain_map
    router = system.topology.router

    intra, cross = [], []
    survived = 0
    for record in system.delivery_log.ordered_records():
        home = domain_map.domain(_publisher_of(record.event_id))
        target = domain_map.domain(record.node_id)
        (intra if home == target else cross).append(record.latency)
        # An other-domain event published while d1 was cut off, delivered
        # inside d1 after the heal: the bridge path survived the partition.
        if (
            target == "d1"
            and home != "d1"
            and PARTITION_AT <= record.published_at < HEAL_AT
            and record.delivered_at >= HEAL_AT
        ):
            survived += 1

    bytes_sent = system.network.stats.bytes_sent
    ratio = result.reliability.delivery_ratio
    return {
        "domains": domains,
        "seed": seed,
        "delivery_ratio": ratio,
        "bytes_sent": bytes_sent,
        "reliability_per_byte": ratio / bytes_sent if bytes_sent else 0.0,
        "intra_deliveries": len(intra),
        "cross_deliveries": len(cross),
        "intra_mean_latency": sum(intra) / len(intra) if intra else 0.0,
        "cross_mean_latency": sum(cross) / len(cross) if cross else 0.0,
        "bridge_relayed": router.relayed,
        "bridge_absorbed": router.absorbed,
        "bridge_duplicates": router.duplicates,
        "partition_survivals": survived,
    }


def measure() -> dict:
    rows = [_run(domains, seed) for domains in DOMAIN_COUNTS for seed in SEEDS]

    def mean(key: str, domains: int) -> float:
        values = [row[key] for row in rows if row["domains"] == domains]
        return sum(values) / len(values)

    summary = {
        str(domains): {
            "delivery_ratio": mean("delivery_ratio", domains),
            "intra_mean_latency": mean("intra_mean_latency", domains),
            "cross_mean_latency": mean("cross_mean_latency", domains),
            "reliability_per_byte": mean("reliability_per_byte", domains),
            "partition_survivals": mean("partition_survivals", domains),
        }
        for domains in DOMAIN_COUNTS
    }
    return {
        "schema": "bench-domains/v1",
        "nodes": NODES,
        "seeds": list(SEEDS),
        "partition_window": [PARTITION_AT, HEAL_AT],
        "rows": rows,
        "summary": summary,
    }


def test_domain_topology_latency_and_partition_survival(benchmark):
    artifact = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = artifact["rows"]
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, sort_keys=True, indent=2)
        handle.write("\n")
    print()
    for domains, entry in artifact["summary"].items():
        print(
            f"{domains} domains: intra {entry['intra_mean_latency']:.2f}, "
            f"cross {entry['cross_mean_latency']:.2f} units, "
            f"delivery {entry['delivery_ratio']:.3f}, "
            f"{entry['partition_survivals']:.1f} post-heal deliveries into d1"
        )
    for row in artifact["rows"]:
        # Crossing a domain boundary must cost latency: geo tax + bridge hop.
        assert row["cross_mean_latency"] > row["intra_mean_latency"]
        # Bridges carried real traffic in every cell.
        assert row["bridge_relayed"] > 0 and row["bridge_absorbed"] > 0
        # The headline: cross-domain delivery survives the healed partition.
        assert row["partition_survivals"] > 0
        assert row["delivery_ratio"] > 0.85
