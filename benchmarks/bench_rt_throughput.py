"""Live runtime throughput benchmark (memory transport).

Unlike the simulator benchmarks, this one measures *real* throughput: a
:class:`~repro.runtime.host.NodeHost` cluster on the in-process memory
transport (every message still passes through the full JSON wire codec),
driven by the :class:`~repro.runtime.loadgen.LoadGenerator` at a target
events/sec.  The headline numbers — achieved events/sec, delivery latency
p50/p99 — are printed, attached to ``benchmark.extra_info``, and written to
``BENCH_rt_throughput.json`` (path overridable via ``REPRO_BENCH_RT_JSON``)
so CI and ``make bench-rt`` can track live-runtime regressions.

Environment knobs:

* ``REPRO_BENCH_RT_RATE``     — offered load in events/sec (default 1200).
* ``REPRO_BENCH_RT_NODES``    — cluster size (default 16).
* ``REPRO_BENCH_RT_SECONDS``  — load duration in real seconds (default 3).
* ``REPRO_BENCH_RT_JSON``     — artifact path (default BENCH_rt_throughput.json).
"""

from __future__ import annotations

import asyncio
import json
import os

from repro.pubsub import TopicFilter
from repro.runtime import LoadGenerator, MemoryTransport, NodeHost
from repro.workloads import TopicPopularity, ZipfInterest
from repro.sim.rng import RngRegistry

RATE = float(os.environ.get("REPRO_BENCH_RT_RATE", "1200"))
NODES = int(os.environ.get("REPRO_BENCH_RT_NODES", "16"))
SECONDS = float(os.environ.get("REPRO_BENCH_RT_SECONDS", "3"))
ARTIFACT = os.environ.get("REPRO_BENCH_RT_JSON", "BENCH_rt_throughput.json")

TIME_SCALE = 20.0
SEED = 2007


async def _drive() -> dict:
    host = NodeHost(
        MemoryTransport(),
        seed=SEED,
        time_scale=TIME_SCALE,
        node_kwargs={
            "fanout": 5,
            "gossip_size": 24,
            "round_period": 1.0,
            "buffer_capacity": 4000,
            "selection_strategy": "least-forwarded",
        },
    )
    node_ids = [f"node-{index:03d}" for index in range(NODES)]
    host.add_nodes(node_ids)
    popularity = TopicPopularity.zipf(8, exponent=1.0)
    interest = ZipfInterest(popularity, min_topics=1, max_topics=4).assign(
        node_ids, RngRegistry(SEED).stream("experiment-interest")
    )
    interest.apply(host)
    generator = LoadGenerator(host, rate=RATE, popularity=popularity)
    await host.start()
    report = await generator.run(SECONDS)
    drain = 0.5
    await host.run_for(drain)  # let in-flight events settle
    await host.stop()
    report.latency_seconds = generator.latency_summary_seconds()
    report.deliveries = int(host.metrics.counter_value("rt.deliveries"))
    report.drain_seconds = drain
    return {
        "schema": "bench-rt-throughput/v1",
        "transport": "memory",
        "nodes": NODES,
        "time_scale": TIME_SCALE,
        "offered_rate": RATE,
        "events_per_sec": report.events_per_second,
        "deliveries_per_sec": report.deliveries_per_second,
        "delivery_latency_p50_seconds": report.latency_seconds.p50,
        "delivery_latency_p99_seconds": report.latency_seconds.p99,
        "published": report.published,
        "deliveries": report.deliveries,
        "frames_sent": host.transport.frames_sent,
        "bytes_sent": host.transport.bytes_sent,
    }


def run_live_cluster() -> dict:
    return asyncio.run(_drive())


def test_rt_throughput(benchmark):
    row = benchmark.pedantic(run_live_cluster, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [row]
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(row, handle, sort_keys=True, indent=2)
        handle.write("\n")
    print()
    print(
        f"live runtime ({row['nodes']} nodes, memory transport): "
        f"{row['events_per_sec']:.0f} ev/s published, "
        f"{row['deliveries_per_sec']:.0f} deliveries/s, "
        f"latency p50 {row['delivery_latency_p50_seconds'] * 1000:.1f}ms "
        f"p99 {row['delivery_latency_p99_seconds'] * 1000:.1f}ms "
        f"-> {ARTIFACT}")

    # The cluster must keep pace with the offered load (within 15%) and
    # deliver with sub-second latency at the default time scale.
    assert row["events_per_sec"] >= 0.85 * RATE
    assert row["deliveries"] > 0
    assert 0 < row["delivery_latency_p50_seconds"] < 1.0
    assert row["delivery_latency_p99_seconds"] < 5.0
