"""Reliability and latency analysis.

The fair protocol must not sacrifice the property that makes gossip
attractive in the first place: "processes reliably receive events which are
disseminated" (§4.2).  This module measures that property: per-event and
aggregate delivery ratios against the subscription-table oracle, delivery
latency, and the rounds-to-delivery distribution used by the Figure 4
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..pubsub.events import Event
from ..pubsub.interfaces import DeliveryLog
from ..pubsub.subscriptions import SubscriptionTable
from ..sim.metrics import HistogramSummary, percentile

__all__ = [
    "EventReliability",
    "ReliabilityReport",
    "measure_reliability",
    "latency_summary_from_snapshot",
]


@dataclass(frozen=True)
class EventReliability:
    """Delivery outcome of a single event."""

    event_id: str
    interested: int
    delivered: int

    @property
    def ratio(self) -> float:
        """Fraction of interested nodes that delivered the event."""
        if self.interested == 0:
            return 1.0
        return self.delivered / self.interested

    @property
    def complete(self) -> bool:
        """Whether every interested node delivered the event."""
        return self.delivered >= self.interested

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "event_id": self.event_id,
            "interested": self.interested,
            "delivered": self.delivered,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "EventReliability":
        """Rebuild a per-event record from :meth:`to_dict` output."""
        return EventReliability(
            event_id=payload["event_id"],
            interested=int(payload["interested"]),
            delivered=int(payload["delivered"]),
        )


@dataclass(frozen=True)
class ReliabilityReport:
    """Aggregate reliability and latency of a run."""

    events: List[EventReliability]
    delivery_ratio: float
    complete_fraction: float
    mean_latency: float
    p95_latency: float
    max_latency: float
    mean_rounds: float
    p95_rounds: float

    def summary_row(self) -> Dict[str, float]:
        """Compact dictionary used by benchmark tables."""
        return {
            "events": float(len(self.events)),
            "delivery_ratio": self.delivery_ratio,
            "complete_fraction": self.complete_fraction,
            "mean_latency": self.mean_latency,
            "p95_latency": self.p95_latency,
            "mean_rounds": self.mean_rounds,
            "p95_rounds": self.p95_rounds,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "events": [entry.to_dict() for entry in self.events],
            "delivery_ratio": self.delivery_ratio,
            "complete_fraction": self.complete_fraction,
            "mean_latency": self.mean_latency,
            "p95_latency": self.p95_latency,
            "max_latency": self.max_latency,
            "mean_rounds": self.mean_rounds,
            "p95_rounds": self.p95_rounds,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "ReliabilityReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return ReliabilityReport(
            events=[EventReliability.from_dict(entry) for entry in payload.get("events", [])],
            delivery_ratio=payload["delivery_ratio"],
            complete_fraction=payload["complete_fraction"],
            mean_latency=payload["mean_latency"],
            p95_latency=payload["p95_latency"],
            max_latency=payload["max_latency"],
            mean_rounds=payload["mean_rounds"],
            p95_rounds=payload["p95_rounds"],
        )


def measure_reliability(
    published_events: Sequence[Event],
    delivery_log: DeliveryLog,
    subscriptions: SubscriptionTable,
    round_period: float = 1.0,
) -> ReliabilityReport:
    """Compare actual deliveries with the subscription-table oracle.

    ``published_events`` is the ground-truth list produced by the workload
    (or collected from ``publish`` return values).  An event whose
    publisher is itself interested counts that self-delivery like any other.
    """
    per_event: List[EventReliability] = []
    latencies: List[float] = []
    total_interested = 0
    total_delivered = 0
    for event in published_events:
        interested = subscriptions.interested_nodes(event)
        records = delivery_log.deliveries_of_event(event.event_id)
        delivered_nodes = {record.node_id for record in records}
        delivered_interested = len(delivered_nodes & set(interested))
        per_event.append(
            EventReliability(
                event_id=event.event_id,
                interested=len(interested),
                delivered=delivered_interested,
            )
        )
        total_interested += len(interested)
        total_delivered += delivered_interested
        latencies.extend(record.latency for record in records if record.node_id in interested)

    delivery_ratio = 1.0 if total_interested == 0 else total_delivered / total_interested
    complete_fraction = (
        1.0
        if not per_event
        else sum(1 for entry in per_event if entry.complete) / len(per_event)
    )
    ordered = sorted(latencies)
    mean_latency = sum(ordered) / len(ordered) if ordered else 0.0
    p95_latency = percentile(ordered, 0.95)
    max_latency = ordered[-1] if ordered else 0.0
    rounds = [latency / round_period for latency in ordered] if round_period > 0 else []
    mean_rounds = sum(rounds) / len(rounds) if rounds else 0.0
    p95_rounds = percentile(sorted(rounds), 0.95)
    return ReliabilityReport(
        events=per_event,
        delivery_ratio=delivery_ratio,
        complete_fraction=complete_fraction,
        mean_latency=mean_latency,
        p95_latency=p95_latency,
        max_latency=max_latency,
        mean_rounds=mean_rounds,
        p95_rounds=p95_rounds,
    )


def latency_summary_from_snapshot(
    snapshot, name: str = "sim.delivery_latency", **tags
) -> HistogramSummary:
    """Delivery-latency summary read from a telemetry snapshot.

    The experiment runner streams every delivery latency into the
    ``sim.delivery_latency`` histogram (the live runtime uses
    ``rt.delivery_latency_units``), so mid-run snapshots answer the latency
    questions this module otherwise answers from the delivery log after the
    run.  Returns an all-zero summary when the snapshot has no such
    histogram.
    """
    return snapshot.histogram_summary(name, **tags)
