"""CLI subcommands for the live runtime: ``serve`` and ``loadgen``.

``python -m repro serve`` brings up a live cluster on a chosen transport,
drives it with an embedded load generator, and prints a live fairness report
while it runs.  ``python -m repro loadgen`` runs the same cluster but
focuses on load numbers: it prints (and optionally writes as JSON) the
achieved events/sec, delivery latency percentiles, delivery ratio, and the
fairness headline, which is what ``benchmarks/bench_rt_throughput.py``
consumes.

Both commands build the cluster from the same workload vocabulary as the
simulator experiments (Zipf topic popularity, zipf/uniform/community/content
interest models), so a live run and a simulated run of the same shape are
directly comparable — the property the runtime-vs-simulator parity test
checks.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
from typing import Dict, Optional, Tuple

from ..analysis.reliability import measure_reliability
from ..membership.cyclon import cyclon_provider
from ..membership.lpbcast import lpbcast_provider
from ..sim.rng import RngRegistry
from ..workloads.interest import (
    AttributeInterest,
    CommunityInterest,
    InterestAssignment,
    UniformInterest,
    ZipfInterest,
)
from ..workloads.popularity import TopicPopularity
from .host import DELIVERIES_METRIC, PUBLISHED_METRIC, NodeHost
from .loadgen import LoadGenerator
from .transport import MemoryTransport, TcpTransport, Transport, UdpTransport

__all__ = ["add_runtime_subcommands", "build_live_cluster", "RUNTIME_ARTIFACT_SCHEMA"]

TRANSPORT_NAMES = ("memory", "udp", "tcp")
INTEREST_NAMES = ("zipf", "uniform", "community", "content")
MEMBERSHIP_NAMES = ("cyclon", "lpbcast")

#: Schema tag written into ``--json`` artifacts of the runtime commands.
RUNTIME_ARTIFACT_SCHEMA = "rt-load/v1"


def _build_transport(args: argparse.Namespace) -> Transport:
    if args.transport == "memory":
        return MemoryTransport()
    if args.transport == "udp":
        return UdpTransport(bind_host=args.bind_host, bind_port=args.bind_port)
    if args.transport == "tcp":
        return TcpTransport(bind_host=args.bind_host, bind_port=args.bind_port)
    raise SystemExit(f"unknown transport {args.transport!r}; expected one of {TRANSPORT_NAMES}")


def build_live_cluster(
    args: argparse.Namespace,
) -> Tuple[NodeHost, LoadGenerator, InterestAssignment]:
    """Build (but do not start) a host, its load generator, and interests."""
    transport = _build_transport(args)
    provider = (
        lpbcast_provider() if args.membership == "lpbcast" else cyclon_provider()
    )
    host = NodeHost(
        transport,
        seed=args.seed,
        time_scale=args.time_scale,
        membership_provider=provider,
        node_kwargs={
            "fanout": args.fanout,
            "gossip_size": args.gossip_size,
            "round_period": args.round_period,
            # Live runs push far more events per time unit than the default
            # simulator scenarios; size the buffer so an event survives its
            # dissemination window instead of being evicted mid-spread, and
            # spread forwarding effort evenly across buffered events ("newest"
            # starves anything older than a round under heavy load).
            "buffer_capacity": args.buffer_capacity,
            "selection_strategy": args.selection_strategy,
        },
    )
    node_ids = [f"node-{index:03d}" for index in range(args.nodes)]
    host.add_nodes(node_ids)

    if args.topic_exponent <= 0:
        popularity = TopicPopularity.uniform(args.topics)
    else:
        popularity = TopicPopularity.zipf(args.topics, exponent=args.topic_exponent)
    attribute_model: Optional[AttributeInterest] = None
    if args.interest == "uniform":
        interest_model = UniformInterest(popularity, topics_per_node=args.topics_per_node)
    elif args.interest == "community":
        interest_model = CommunityInterest(popularity, topics_per_node=args.topics_per_node)
    elif args.interest == "content":
        attribute_model = AttributeInterest(filters_per_node=args.topics_per_node)
        interest_model = attribute_model
    else:
        interest_model = ZipfInterest(
            popularity, min_topics=1, max_topics=args.max_topics_per_node
        )
    # Same stream name as the simulator runner, so a live cluster and a
    # simulated run of the same seed get identical interest assignments.
    interest_rng = RngRegistry(args.seed).stream("experiment-interest")
    interest = interest_model.assign(node_ids, interest_rng)
    interest.apply(host)

    generator = LoadGenerator(
        host,
        rate=args.rate,
        popularity=None if attribute_model is not None else popularity,
        attribute_model=attribute_model,
    )
    return host, generator, interest


def _write_artifact(path: str, artifact: Dict[str, object]) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, sort_keys=True, indent=2)
        handle.write("\n")


async def _run_live(args: argparse.Namespace, live_report: bool) -> Dict[str, object]:
    host, generator, _ = build_live_cluster(args)
    await host.start()
    reporter: Optional[asyncio.Task] = None
    if live_report:

        async def report_loop() -> None:
            started = asyncio.get_running_loop().time()
            while True:
                await asyncio.sleep(args.report_interval)
                elapsed = asyncio.get_running_loop().time() - started
                published = host.metrics.counter_value(PUBLISHED_METRIC)
                deliveries = host.metrics.counter_value(DELIVERIES_METRIC)
                fairness = host.fairness_summary().report
                print(
                    f"[serve +{elapsed:5.1f}s] published {published:8.0f} "
                    f"({published / max(elapsed, 1e-9):7.0f} ev/s) | "
                    f"deliveries {deliveries:9.0f} | "
                    f"ratio Jain {fairness.ratio_jain:.3f} | "
                    f"wasted share {fairness.wasted_share:.3f}",
                    flush=True,
                )

        reporter = asyncio.get_running_loop().create_task(report_loop())

    try:
        load = await generator.run(args.duration)
        if args.drain > 0:
            await asyncio.sleep(args.drain)
    finally:
        if reporter is not None:
            reporter.cancel()
        await host.stop()

    summary = host.fairness_summary(system_name=f"live/{args.transport}")
    reliability = measure_reliability(
        generator.schedule.events,
        host.delivery_log,
        host.subscriptions,
        round_period=args.round_period,
    )
    # Latency and deliveries settle during the drain window; re-read them
    # after the run and widen the delivery-rate window accordingly.
    load.latency_seconds = generator.latency_summary_seconds()
    load.deliveries = int(host.metrics.counter_value(DELIVERIES_METRIC))
    load.drain_seconds = max(args.drain, 0.0)

    print()
    print(summary.render())
    print()
    print(load.describe())
    print(
        f"delivery ratio {reliability.delivery_ratio:.3f} | "
        f"complete fraction {reliability.complete_fraction:.3f} | "
        f"transport {args.transport} ({host.transport.frames_sent} frames, "
        f"{host.transport.bytes_sent} bytes sent)"
    )
    return {
        "schema": RUNTIME_ARTIFACT_SCHEMA,
        "transport": args.transport,
        "nodes": args.nodes,
        "seed": args.seed,
        "time_scale": args.time_scale,
        "duration_seconds": args.duration,
        "load": load.to_dict(),
        "delivery_ratio": reliability.delivery_ratio,
        "fairness": summary.report.to_dict(),
        "frames_sent": host.transport.frames_sent,
        "bytes_sent": host.transport.bytes_sent,
    }


def _cmd_serve(args: argparse.Namespace) -> int:
    artifact = asyncio.run(_run_live(args, live_report=True))
    if args.json:
        _write_artifact(args.json, artifact)
        print(f"wrote runtime artifact to {args.json}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    artifact = asyncio.run(_run_live(args, live_report=False))
    if args.json:
        _write_artifact(args.json, artifact)
        print(f"wrote runtime artifact to {args.json}")
    return 0


def _add_common_runtime_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=25, help="cluster size (default: 25)")
    parser.add_argument(
        "--transport",
        default="memory",
        choices=TRANSPORT_NAMES,
        help="frame carrier (default: memory)",
    )
    parser.add_argument(
        "--duration", type=float, default=5.0, help="load duration in real seconds (default: 5)"
    )
    parser.add_argument(
        "--rate", type=float, default=1500.0, help="target publications per second (default: 1500)"
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=20.0,
        help="protocol time units per real second; a round_period of 1.0 at "
        "time-scale 20 is a 50ms gossip round (default: 20)",
    )
    parser.add_argument(
        "--drain",
        type=float,
        default=1.0,
        help="extra real seconds after the load stops so in-flight events settle",
    )
    parser.add_argument("--seed", type=int, default=2007, help="master seed (default: 2007)")
    parser.add_argument("--topics", type=int, default=8, help="topic count (default: 8)")
    parser.add_argument(
        "--topic-exponent", type=float, default=1.0, help="Zipf exponent, 0 = uniform"
    )
    parser.add_argument(
        "--interest", default="zipf", choices=INTEREST_NAMES, help="interest model (default: zipf)"
    )
    parser.add_argument("--topics-per-node", type=int, default=2)
    parser.add_argument("--max-topics-per-node", type=int, default=4)
    parser.add_argument("--fanout", type=int, default=5, help="gossip fanout F (default: 5)")
    parser.add_argument(
        "--gossip-size", type=int, default=24, help="events per gossip message N (default: 24)"
    )
    parser.add_argument(
        "--buffer-capacity",
        type=int,
        default=4000,
        help="per-node event buffer capacity (default: 4000)",
    )
    parser.add_argument(
        "--selection-strategy",
        default="least-forwarded",
        choices=("random", "newest", "oldest", "least-forwarded"),
        help="SELECTEVENTS strategy (default: least-forwarded)",
    )
    parser.add_argument(
        "--round-period", type=float, default=1.0, help="gossip round length in time units"
    )
    parser.add_argument(
        "--membership", default="cyclon", choices=MEMBERSHIP_NAMES, help="peer sampling service"
    )
    parser.add_argument("--bind-host", default="127.0.0.1", help="socket transports: bind host")
    parser.add_argument(
        "--bind-port", type=int, default=0, help="socket transports: bind port (0 = ephemeral)"
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write the run artifact")


def add_runtime_subcommands(subparsers) -> None:
    """Register ``serve`` and ``loadgen`` on the ``python -m repro`` parser."""
    serve_parser = subparsers.add_parser(
        "serve",
        help="run a live cluster on a real transport with an embedded load generator",
    )
    _add_common_runtime_options(serve_parser)
    serve_parser.add_argument(
        "--report-interval",
        type=float,
        default=1.0,
        help="seconds between live fairness report lines (default: 1)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="drive a live cluster at a target events/sec and report throughput/latency",
    )
    _add_common_runtime_options(loadgen_parser)
    loadgen_parser.set_defaults(handler=_cmd_loadgen)
