PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-rt bench-metrics bench-faults bench-lazy bench-trace bench-domains bench-campaign serve-smoke serve-scenario-smoke registry-smoke report-smoke fault-smoke lazy-smoke trace-smoke domains-smoke campaign-smoke clean-cache

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Fast end-to-end check of the orchestration layer: parallel sweep, then the
# same sweep again served from the cache.
bench-smoke:
	$(PYTHON) -m repro sweep smoke --param fanout --values 2,4 --workers 2
	$(PYTHON) -m repro sweep smoke --param fanout --values 2,4 --workers 2

# Live-runtime throughput benchmark: writes BENCH_rt_throughput.json
# (events/sec + delivery latency p50/p99 on the memory transport).
bench-rt:
	$(PYTHON) -m pytest benchmarks/bench_rt_throughput.py -q -s

# Metrics hot-path overhead: writes BENCH_metrics_overhead.json
# (ns/record, legacy list-backed histogram vs streaming telemetry).
bench-metrics:
	$(PYTHON) -m pytest benchmarks/bench_metrics_overhead.py -q -s

# Short live cluster run with the embedded load generator (memory transport).
serve-smoke:
	$(PYTHON) -m repro serve --nodes 25 --transport memory --duration 5

# Registry/StackSpec sanity: list, describe, then run a registered scenario
# live on the memory transport — once as gossip, once as a non-gossip baseline.
registry-smoke:
	$(PYTHON) -m repro list-scenarios
	$(PYTHON) -m repro describe smoke

serve-scenario-smoke: registry-smoke
	$(PYTHON) -m repro serve --scenario smoke --transport memory --duration 3 --rate 200 --drain 0.5
	$(PYTHON) -m repro serve --scenario smoke --set system.kind=brokers --transport memory --duration 2 --rate 100 --drain 0.5

# Telemetry + report round trip: run a scenario with a JSON-lines snapshot
# sink and a result artifact, then render tables from both — and from a live
# cluster's snapshot stream — without re-running anything.
report-smoke:
	$(PYTHON) -m repro run smoke --no-cache --telemetry jsonl:out/smoke_metrics.jsonl --json out/smoke_results.json
	$(PYTHON) -m repro report out/smoke_metrics.jsonl
	$(PYTHON) -m repro report out/smoke_results.json
	$(PYTHON) -m repro serve --scenario smoke --transport memory --duration 2 --rate 100 --drain 0.5 --telemetry jsonl:out/live_metrics.jsonl
	$(PYTHON) -m repro report out/live_metrics.jsonl

# Fault-injection round trip: the registered fault scenarios on the
# simulator (churn + a mid-run partition, with a fault timeline in the
# report), then the SAME fault plan JSON driving a simulated run and a
# short live cluster (memory transport).
fault-smoke:
	$(PYTHON) -m repro run smoke-churn --no-cache --set faults.partition.at=2 --set faults.partition.heal_after=2
	$(PYTHON) -m repro run smoke-partition --no-cache --telemetry jsonl:out/fault_metrics.jsonl
	$(PYTHON) -m repro report out/fault_metrics.jsonl
	$(PYTHON) -m repro run smoke --no-cache --fault examples/fault_plan.json
	$(PYTHON) -m repro serve --scenario smoke --fault examples/fault_plan.json --transport memory --duration 3 --rate 200 --drain 0.5

# Fault-layer overhead: writes BENCH_fault_overhead.json (an active-but-idle
# FaultController must stay <5% on the smoke scenario, physics untouched).
bench-faults:
	$(PYTHON) -m pytest benchmarks/bench_fault_overhead.py -q -s

# Two-phase lazy broadcast round trip: the lossy smoke scenario on the
# simulator (recovery table in the report), then the same loss plan driving
# a simulated run and a short live cluster speaking the lazy wire kinds.
lazy-smoke:
	$(PYTHON) -m repro run smoke-lazy --no-cache --telemetry jsonl:out/lazy_metrics.jsonl
	$(PYTHON) -m repro report out/lazy_metrics.jsonl
	$(PYTHON) -m repro run smoke-lazy --no-cache --fault examples/loss_plan.json
	$(PYTHON) -m repro serve --scenario smoke-lazy --fault examples/loss_plan.json --transport memory --duration 3 --rate 200 --drain 1

# Lazy-push vs plain push under FaultPlan loss/partition: writes
# BENCH_lazy_recovery.json (reliability per byte; lazy must win under loss).
bench-lazy:
	$(PYTHON) -m pytest benchmarks/bench_lazy_recovery.py -q -s

# Dissemination-tracing round trip: trace every event of the lossy lazy
# scenario, render the infection trees and the trace aggregates, then trace
# a short live cluster to confirm contexts survive the wire.
trace-smoke:
	$(PYTHON) -m repro run smoke-lazy --no-cache --trace out/lazy_trace.jsonl
	$(PYTHON) -m repro trace out/lazy_trace.jsonl
	$(PYTHON) -m repro report out/lazy_trace.jsonl
	$(PYTHON) -m repro serve --scenario smoke-lazy --transport memory --duration 3 --rate 200 --drain 1 --trace out/live_trace.jsonl
	$(PYTHON) -m repro trace out/live_trace.jsonl --max-events 1

# Tracing hot-path overhead: writes BENCH_trace_overhead.json (a rate-0
# tracer must stay <1% on smoke-lazy, physics byte-identical at every rate).
bench-trace:
	$(PYTHON) -m pytest benchmarks/bench_trace_overhead.py -q -s

# Multi-domain topology round trip: the 4-domain scenario with its
# domain-partition fault (per-domain table in the report), the same geo
# matrix loaded from a --topology file on the simulator and a live cluster,
# and the bridge hops visible in a trace.
domains-smoke:
	$(PYTHON) -m repro run smoke-domains --no-cache --telemetry jsonl:out/domain_metrics.jsonl
	$(PYTHON) -m repro report out/domain_metrics.jsonl
	$(PYTHON) -m repro run smoke --no-cache --topology examples/geo_topology.json
	$(PYTHON) -m repro serve --scenario smoke --topology examples/geo_topology.json --transport memory --duration 3 --rate 200 --drain 0.5
	$(PYTHON) -m repro run smoke-domains --no-cache --trace out/domain_trace.jsonl
	$(PYTHON) -m repro trace out/domain_trace.jsonl --max-events 1

# Intra- vs cross-domain delivery at 2/4/8 domains under a domain partition:
# writes BENCH_domains.json (cross-domain delivery must survive the heal).
bench-domains:
	$(PYTHON) -m pytest benchmarks/bench_domains.py -q -s

# Campaign round trip: run the two-target mini campaign cold, then warm
# (the second pass must be 100% cache hits), inspect staleness, and render
# the run manifest through the report CLI.
campaign-smoke:
	$(PYTHON) -m repro campaign examples/mini_campaign.json --cache-dir .ci-cache --out-dir out/campaign/mini
	$(PYTHON) -m repro campaign examples/mini_campaign.json --cache-dir .ci-cache --out-dir out/campaign/mini | grep "computed: 0"
	$(PYTHON) -m repro campaign status examples/mini_campaign.json --cache-dir .ci-cache
	$(PYTHON) -m repro report out/campaign/mini/manifest.json

# Campaign incrementality: writes BENCH_campaign.json (cold vs warm wall
# time and the warm per-point scheduling overhead; warm computes nothing).
bench-campaign:
	$(PYTHON) -m pytest benchmarks/bench_campaign.py -q -s

# BENCH_metrics_overhead.json is tracked (it seeds the perf trajectory), so
# clean-cache leaves it alone; re-run `make bench-metrics` to refresh it.
clean-cache:
	rm -rf .repro-cache .ci-cache out BENCH_rt_throughput.json
