"""Legacy event-trace recording (the pre-tracing ``sim/trace.py`` layer).

:class:`TraceRecorder` predates the span layer: it accumulates flat
timestamped category records (``"crash"``, ``"churn-join"`` ...) with no
causality, and the failure injectors still narrate through it.  It now lives
inside the tracing package next to its successor; ``repro.sim.trace``
remains as a thin deprecation shim (the same treatment ``sim/metrics.py``
got when telemetry unified the metrics layer).  New code should emit
:class:`~repro.tracing.spans.SpanRecord` objects through a
:class:`~repro.tracing.tracer.Tracer` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry.

    Attributes
    ----------
    timestamp:
        Simulated time of the occurrence.
    category:
        Coarse grouping (``"publish"``, ``"deliver"``, ``"forward"``,
        ``"subscribe"``, ``"churn"`` ...).
    node:
        The node the record is about (empty string for system-wide records).
    details:
        Free-form payload, kept small (identifiers, counts).
    """

    timestamp: float
    category: str
    node: str = ""
    details: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceRecord` objects during a simulation run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def record(
        self, timestamp: float, category: str, node: str = "", **details: Any
    ) -> Optional[TraceRecord]:
        """Append a record (and notify listeners) if recording is enabled."""
        if not self.enabled:
            return None
        entry = TraceRecord(timestamp=timestamp, category=category, node=node, details=details)
        self._records.append(entry)
        for listener in self._listeners:
            listener(entry)
        return entry

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked synchronously for every new record."""
        self._listeners.append(listener)

    def clear(self) -> None:
        """Drop all accumulated records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def by_category(self, category: str) -> List[TraceRecord]:
        """All records with the given category, in chronological order."""
        return [record for record in self._records if record.category == category]

    def by_node(self, node: str) -> List[TraceRecord]:
        """All records attributed to the given node."""
        return [record for record in self._records if record.node == node]

    def count(self, category: str, node: Optional[str] = None) -> int:
        """Number of records in ``category`` (optionally restricted to a node)."""
        return sum(
            1
            for record in self._records
            if record.category == category and (node is None or record.node == node)
        )
