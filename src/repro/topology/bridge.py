"""Bridge federation: re-publish topic events across domain boundaries.

Domains keep gossip to themselves (see
:mod:`repro.topology.membership`); what crosses a boundary is the
:class:`BridgeRouter`'s doing.  The router is a single per-run object hooked
into the network's delivery stream (the same
``add_delivery_hook`` surface both fabrics expose), so one implementation
serves the simulator and the live runtime:

* when a *bridge node* receives a gossip payload, every carried event is
  relayed once per foreign domain — but only by the event's deterministic
  *egress* bridge (sha256 over event id and domain pair), so k bridges
  share the relay load without coordination;
* relays travel as ``topology.bridge`` messages through the normal network
  send path, which means geo latency/loss and domain partitions apply to
  them like to any other traffic — and a healed partition is survived
  simply because bridges re-relay on every duplicate gossip receipt while
  the event is still circulating;
* on arrival, the *ingress* bridge absorbs the events into its local
  gossip node (:meth:`_absorb_event`, the duplicate-suppressed injection
  path), from where normal intra-domain gossip takes over.

Bridge traffic is infrastructure: it bypasses the nodes' ``send`` overrides,
so it never counts towards the paper's per-node fairness contribution.
Observability: ``bridge.relayed`` / ``bridge.absorbed`` /
``bridge.duplicate`` counters (tagged with the origin/target domain) and
``topology.bridge`` spans parented into the event's infection tree.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Tuple

from ..gossip.push import GossipMessage
from ..sim.network import Message
from ..tracing.context import TraceContext
from ..tracing.spans import BRIDGE_HOP
from .domains import DomainMap

__all__ = ["BRIDGE_MESSAGE_KIND", "BridgeRouter"]

#: Message kind carrying cross-domain relays (``topology.*`` namespace).
BRIDGE_MESSAGE_KIND = "topology.bridge"


def _rank(event_id: str, domain_a: str, domain_b: str) -> int:
    digest = hashlib.sha256(f"{event_id}/{domain_a}/{domain_b}".encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


class BridgeRouter:
    """Relays topic events between domains through designated bridges.

    Parameters
    ----------
    network:
        Either fabric; the router registers itself as a delivery hook and
        sends relays through ``network.send``.
    domain_map:
        The compiled topology (bridge sets, domain membership).
    nodes:
        ``node_id -> gossip node`` for the locally hosted nodes; ingress
        absorption duck-types the node's ``_absorb_event`` method.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` for ``bridge.*``
        counters.
    """

    def __init__(
        self,
        network,
        domain_map: DomainMap,
        nodes: Mapping[str, object],
        telemetry=None,
    ) -> None:
        self._network = network
        self._domain_map = domain_map
        self._nodes = dict(nodes)
        self._telemetry = telemetry
        self._bridge_set = frozenset(domain_map.bridge_nodes())
        self.relayed = 0
        self.absorbed = 0
        self.duplicates = 0
        network.add_delivery_hook(self._on_delivery)

    # ------------------------------------------------------------ hook entry

    def _on_delivery(self, message: Message, now: float) -> None:
        if message.kind == BRIDGE_MESSAGE_KIND:
            self._absorb(message)
            return
        if message.recipient not in self._bridge_set:
            return
        events = getattr(message.payload, "events", None)
        if events:
            self._relay(message, events)

    # ---------------------------------------------------------------- egress

    def _egress(self, event_id: str, home: str, target: str) -> str:
        bridges = self._domain_map.bridges[home]
        return bridges[_rank(event_id, home, target) % len(bridges)]

    def _ingress(self, event_id: str, target: str) -> str:
        bridges = self._domain_map.bridges[target]
        return bridges[_rank(event_id, target, target) % len(bridges)]

    def _relay(self, message: Message, events: Tuple) -> None:
        bridge = message.recipient
        home = self._domain_map.domain(bridge)
        if home is None:
            return
        contexts = {ctx.trace_id: ctx for ctx in (message.trace or ())}
        tracer = getattr(self._network, "tracer", None)
        for target in self._domain_map.domains:
            if target == home:
                continue
            batches: Dict[str, List] = {}
            for event in events:
                if self._egress(event.event_id, home, target) != bridge:
                    continue
                batches.setdefault(self._ingress(event.event_id, target), []).append(event)
            for ingress, batch in batches.items():
                trace: Optional[Tuple[TraceContext, ...]] = None
                if tracer is not None:
                    spans = []
                    for event in batch:
                        ctx = contexts.get(event.event_id)
                        if ctx is None:
                            continue
                        span_id = tracer.emit(
                            BRIDGE_HOP,
                            ctx.trace_id,
                            bridge,
                            parent_id=ctx.parent_span,
                            hops=ctx.hops,
                            domain=home,
                            to_domain=target,
                            peer=ingress,
                        )
                        spans.append(TraceContext(ctx.trace_id, span_id, ctx.hops + 1))
                    trace = tuple(spans) or None
                payload = GossipMessage(events=tuple(batch))
                self._network.send(
                    bridge,
                    ingress,
                    BRIDGE_MESSAGE_KIND,
                    payload=payload,
                    size=payload.size,
                    trace=trace,
                )
                self.relayed += len(batch)
                if self._telemetry is not None:
                    self._telemetry.increment(
                        "bridge.relayed", amount=len(batch), domain=home
                    )

    # --------------------------------------------------------------- ingress

    def _absorb(self, message: Message) -> None:
        node = self._nodes.get(message.recipient)
        absorb = getattr(node, "_absorb_event", None)
        if absorb is None:
            return
        domain = self._domain_map.domain(message.recipient)
        events = getattr(message.payload, "events", ()) or ()
        contexts = {ctx.trace_id: ctx for ctx in (message.trace or ())}
        for event in events:
            if absorb(
                event,
                from_peer=message.sender,
                trace_ctx=contexts.get(event.event_id),
            ):
                self.absorbed += 1
                if self._telemetry is not None:
                    self._telemetry.increment("bridge.absorbed", domain=domain)
            else:
                self.duplicates += 1
                if self._telemetry is not None:
                    self._telemetry.increment("bridge.duplicate", domain=domain)
