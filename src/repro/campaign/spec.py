"""Declarative campaign specifications: targets, services, connectors.

A campaign is the "make paper" layer: it names every artifact the paper
needs (*targets* — rendered tables/reports plus their ``--json`` result
artifacts) and every batch of experiment runs those artifacts consume
(*services* — sweeps, comparisons, or single runs expressed as scenario +
``--set``-style overrides).  Targets reference services through small
connector trees:

``ALL``
    every child must complete; results concatenate in child order (the
    default — a bare name or list of names means ``ALL``).
``SEQ``
    like ``ALL``, but children execute strictly in list order (child *i+1*
    never starts before child *i* finished).
``ONE``
    alternatives: the first child that completes satisfies the connector
    and the remaining alternatives are never run.  Planning prefers a child
    that is already fully cached ("fresh"), so a warm alternative
    short-circuits a cold one without running anything.

Arbitrary extra DAG edges come from each service's ``after`` list.  The
whole spec round-trips through JSON (:meth:`CampaignSpec.to_dict` /
:meth:`from_dict` / :meth:`from_file`), and validation fails fast with
:class:`CampaignError` — a :class:`~repro.registry.base.RegistryError`
subclass, so unknown names carry did-you-mean suggestions exactly like the
component registries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple, Union

from ..registry import RegistryError, resolve_spec_path
from ..registry.base import suggest

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignError",
    "Connector",
    "ServiceSpec",
    "TargetSpec",
    "CampaignSpec",
]

#: Schema tag of the campaign JSON layout; bump on incompatible changes.
CAMPAIGN_SCHEMA = "campaign/v1"

#: Connector operators, in documentation order.
CONNECTOR_OPS = ("all", "seq", "one")

#: Target artifact kinds the renderer understands.
TARGET_KINDS = ("table", "report")

#: Config fields that hold structured values and therefore cannot be swept.
_UNSWEEPABLE = ("extra", "faults.plan", "topology.assignment", "topology.geo")


class CampaignError(RegistryError):
    """Invalid campaign spec: unknown names, dangling edges, cycles."""


@dataclass(frozen=True)
class Connector:
    """One node of a target's input tree: an operator over children.

    Children are service names (strings) or nested connectors.  The JSON
    form is ``{"all": [...]}`` / ``{"seq": [...]}`` / ``{"one": [...]}``;
    a bare string or list is shorthand for ``ALL``.
    """

    op: str
    children: Tuple[Union[str, "Connector"], ...]

    def service_names(self) -> List[str]:
        """Every service name mentioned anywhere in the tree (in order)."""
        names: List[str] = []
        for child in self.children:
            if isinstance(child, Connector):
                names.extend(child.service_names())
            else:
                names.append(child)
        return names

    def describe(self) -> str:
        """Compact one-line rendering, e.g. ``SEQ(a, ONE(b, c))``."""
        parts = [
            child.describe() if isinstance(child, Connector) else child
            for child in self.children
        ]
        return f"{self.op.upper()}({', '.join(parts)})"

    def to_json(self) -> object:
        """The JSON form (shorthand collapses are not re-applied)."""
        return {
            self.op: [
                child.to_json() if isinstance(child, Connector) else child
                for child in self.children
            ]
        }

    @staticmethod
    def parse(payload: object, context: str) -> "Connector":
        """Parse a connector tree from its JSON form (with shorthands)."""
        if isinstance(payload, str):
            return Connector("all", (payload,))
        if isinstance(payload, (list, tuple)):
            return Connector(
                "all", tuple(Connector._parse_child(child, context) for child in payload)
            )
        if isinstance(payload, Mapping):
            if len(payload) != 1:
                raise CampaignError(
                    f"{context}: a connector object needs exactly one of "
                    f"{'/'.join(CONNECTOR_OPS)}, got keys {sorted(payload)}"
                )
            ((op, children),) = payload.items()
            if op not in CONNECTOR_OPS:
                raise CampaignError(
                    f"{context}: unknown connector {op!r}"
                    f"{suggest(str(op), CONNECTOR_OPS)}; "
                    f"connectors: {', '.join(CONNECTOR_OPS)}"
                )
            if not isinstance(children, (list, tuple)) or not children:
                raise CampaignError(
                    f"{context}: connector {op!r} needs a non-empty list of children"
                )
            return Connector(
                op, tuple(Connector._parse_child(child, context) for child in children)
            )
        raise CampaignError(
            f"{context}: expected a service name, a list of names, or a "
            f"connector object, got {type(payload).__name__}"
        )

    @staticmethod
    def _parse_child(payload: object, context: str) -> Union[str, "Connector"]:
        if isinstance(payload, str):
            return payload
        return Connector.parse(payload, context)


@dataclass(frozen=True)
class ServiceSpec:
    """One batch of experiment runs: scenario + overrides + grid axes.

    Attributes
    ----------
    name:
        The service's name inside the campaign (manifest/graph key).
    scenario:
        Registered scenario the points start from (``list-scenarios``).
    set:
        Dotted spec-path overrides applied to the base config, exactly like
        the CLI's ``--set`` (``{"system.fanout": 5}``).
    compare:
        Optional list of dissemination systems (the Figure 1 shape); the
        grid expands across systems first.
    sweep:
        Optional mapping of dotted spec paths to value lists; expands as a
        cartesian grid over the (possibly compared) base configs.
    seeds:
        Optional list of master seeds — shorthand for a ``seed`` sweep axis.
    reseed:
        Derive a distinct deterministic seed per grid point.
    after:
        Names of services/targets that must complete before this one runs
        (extra DAG edges beyond what the target connectors imply).
    """

    name: str
    scenario: str
    set: Tuple[Tuple[str, object], ...] = ()
    compare: Tuple[str, ...] = ()
    sweep: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    seeds: Tuple[int, ...] = ()
    reseed: bool = False
    after: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"scenario": self.scenario}
        if self.set:
            payload["set"] = {key: value for key, value in self.set}
        if self.compare:
            payload["compare"] = list(self.compare)
        if self.sweep:
            payload["sweep"] = {key: list(values) for key, values in self.sweep}
        if self.seeds:
            payload["seeds"] = list(self.seeds)
        if self.reseed:
            payload["reseed"] = True
        if self.after:
            payload["after"] = list(self.after)
        return payload

    @staticmethod
    def from_dict(name: str, payload: Mapping[str, object]) -> "ServiceSpec":
        context = f"service {name!r}"
        if not isinstance(payload, Mapping):
            raise CampaignError(f"{context}: expected an object, got {type(payload).__name__}")
        known = {"scenario", "set", "compare", "sweep", "seeds", "reseed", "after"}
        unknown = set(payload) - known
        if unknown:
            first = sorted(unknown)[0]
            raise CampaignError(
                f"{context}: unknown field(s) {sorted(unknown)}"
                f"{suggest(first, known)}; known fields: {', '.join(sorted(known))}"
            )
        if "scenario" not in payload or not isinstance(payload["scenario"], str):
            raise CampaignError(f"{context}: needs a 'scenario' name (see list-scenarios)")
        overrides = payload.get("set", {})
        if not isinstance(overrides, Mapping):
            raise CampaignError(f"{context}: 'set' must map dotted paths to values")
        sweep = payload.get("sweep", {})
        if not isinstance(sweep, Mapping):
            raise CampaignError(f"{context}: 'sweep' must map dotted paths to value lists")
        for key, values in sweep.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise CampaignError(
                    f"{context}: sweep axis {key!r} needs a non-empty list of values"
                )
        return ServiceSpec(
            name=name,
            scenario=payload["scenario"],
            set=tuple((str(key), value) for key, value in overrides.items()),
            compare=tuple(payload.get("compare", ()) or ()),
            sweep=tuple(
                (str(key), tuple(values)) for key, values in sweep.items()
            ),
            seeds=tuple(int(seed) for seed in payload.get("seeds", ()) or ()),
            reseed=bool(payload.get("reseed", False)),
            after=tuple(payload.get("after", ()) or ()),
        )


@dataclass(frozen=True)
class TargetSpec:
    """One paper artifact: a rendered table/report over service results.

    ``kind`` selects the renderer: ``table`` is the standard results table
    (one row per grid point), ``report`` is the full fairness + latency
    report.  Either way the executor also writes the raw results as a
    ``--json``-shaped artifact next to the rendered text, so ``repro
    report`` can re-render the target without re-running anything.
    """

    name: str
    inputs: Connector
    kind: str = "table"
    title: str = ""

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"inputs": self.inputs.to_json()}
        if self.kind != "table":
            payload["kind"] = self.kind
        if self.title:
            payload["title"] = self.title
        return payload

    @staticmethod
    def from_dict(name: str, payload: Mapping[str, object]) -> "TargetSpec":
        context = f"target {name!r}"
        if not isinstance(payload, Mapping):
            raise CampaignError(f"{context}: expected an object, got {type(payload).__name__}")
        known = {"inputs", "kind", "title"}
        unknown = set(payload) - known
        if unknown:
            first = sorted(unknown)[0]
            raise CampaignError(
                f"{context}: unknown field(s) {sorted(unknown)}"
                f"{suggest(first, known)}; known fields: {', '.join(sorted(known))}"
            )
        if "inputs" not in payload:
            raise CampaignError(f"{context}: needs 'inputs' naming its service(s)")
        kind = payload.get("kind", "table")
        if kind not in TARGET_KINDS:
            raise CampaignError(
                f"{context}: unknown kind {kind!r}{suggest(str(kind), TARGET_KINDS)}; "
                f"kinds: {', '.join(TARGET_KINDS)}"
            )
        return TargetSpec(
            name=name,
            inputs=Connector.parse(payload["inputs"], context),
            kind=kind,
            title=str(payload.get("title", "")),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A named set of targets and services forming one dependency graph."""

    name: str
    services: Tuple[ServiceSpec, ...]
    targets: Tuple[TargetSpec, ...]
    description: str = ""

    # ------------------------------------------------------------- lookups

    def service_names(self) -> List[str]:
        return [service.name for service in self.services]

    def target_names(self) -> List[str]:
        return [target.name for target in self.targets]

    def service(self, name: str) -> ServiceSpec:
        for service in self.services:
            if service.name == name:
                return service
        raise CampaignError(
            f"unknown service {name!r}{suggest(name, self.service_names())}; "
            f"services: {', '.join(self.service_names())}"
        )

    def target(self, name: str) -> TargetSpec:
        for target in self.targets:
            if target.name == name:
                return target
        raise CampaignError(
            f"unknown target {name!r}{suggest(name, self.target_names())}; "
            f"targets: {', '.join(self.target_names())}"
        )

    # ---------------------------------------------------------- validation

    def validate(self) -> "CampaignSpec":
        """Check every cross-reference; returns ``self`` for chaining.

        Scenario names are checked against the scenario registry, target
        inputs against the declared services, ``after`` edges against the
        union of services and targets, and sweep axes against the config
        vocabulary — each failure is a :class:`CampaignError` with a
        did-you-mean suggestion.  Cycles are detected by the graph module
        (:func:`repro.campaign.graph.compile_graph`), which this calls.
        """
        from ..experiments.scenarios import scenario_names, system_names
        from .graph import compile_graph

        if not self.targets:
            raise CampaignError(f"campaign {self.name!r} declares no targets")
        known_scenarios = scenario_names()
        service_names = self.service_names()
        duplicates = {name for name in service_names if service_names.count(name) > 1}
        duplicates |= {
            name for name in self.target_names() if self.target_names().count(name) > 1
        }
        duplicates |= set(service_names) & set(self.target_names())
        if duplicates:
            raise CampaignError(
                f"campaign {self.name!r}: duplicate node name(s) "
                f"{sorted(duplicates)} (services and targets share one namespace)"
            )
        all_nodes = service_names + self.target_names()
        for service in self.services:
            context = f"service {service.name!r}"
            if service.scenario not in known_scenarios:
                raise CampaignError(
                    f"{context}: unknown scenario {service.scenario!r}"
                    f"{suggest(service.scenario, known_scenarios)}; "
                    f"scenarios: {', '.join(known_scenarios)}"
                )
            known_systems = system_names()
            for system in service.compare:
                if system not in known_systems:
                    raise CampaignError(
                        f"{context}: unknown system {system!r}"
                        f"{suggest(system, known_systems)}; "
                        f"systems: {', '.join(known_systems)}"
                    )
            for dependency in service.after:
                if dependency not in all_nodes:
                    raise CampaignError(
                        f"{context}: 'after' names unknown node {dependency!r}"
                        f"{suggest(dependency, all_nodes)}; "
                        f"nodes: {', '.join(all_nodes)}"
                    )
            # Overrides and sweep axes must resolve to real config paths
            # (and settable ones) *before* anything runs.
            for key, _value in service.set + tuple(
                (axis, values) for axis, values in service.sweep
            ):
                try:
                    path = resolve_spec_path(key)
                except RegistryError as error:
                    raise CampaignError(f"{context}: {error}") from None
                if path in _UNSWEEPABLE:
                    raise CampaignError(
                        f"{context}: config field {path!r} is structured and "
                        "cannot be set or swept from a campaign"
                    )
        for target in self.targets:
            context = f"target {target.name!r}"
            for dependency in target.inputs.service_names():
                if dependency not in service_names:
                    raise CampaignError(
                        f"{context}: inputs name unknown service {dependency!r}"
                        f"{suggest(dependency, service_names)}; "
                        f"services: {', '.join(service_names)}"
                    )
        compile_graph(self)  # cycle detection
        return self

    # --------------------------------------------------------- round trips

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "schema": CAMPAIGN_SCHEMA,
            "name": self.name,
            "services": {service.name: service.to_dict() for service in self.services},
            "targets": {target.name: target.to_dict() for target in self.targets},
        }
        if self.description:
            payload["description"] = self.description
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "CampaignSpec":
        if not isinstance(payload, Mapping):
            raise CampaignError(
                f"campaign spec must be a JSON object, got {type(payload).__name__}"
            )
        schema = payload.get("schema", CAMPAIGN_SCHEMA)
        if schema != CAMPAIGN_SCHEMA:
            raise CampaignError(
                f"unsupported campaign schema {schema!r}; expected {CAMPAIGN_SCHEMA!r}"
            )
        known = {"schema", "name", "description", "services", "targets"}
        unknown = set(payload) - known
        if unknown:
            first = sorted(unknown)[0]
            raise CampaignError(
                f"campaign spec: unknown field(s) {sorted(unknown)}"
                f"{suggest(first, known)}; known fields: {', '.join(sorted(known))}"
            )
        services_raw = payload.get("services", {})
        targets_raw = payload.get("targets", {})
        if not isinstance(services_raw, Mapping) or not isinstance(targets_raw, Mapping):
            raise CampaignError("campaign 'services' and 'targets' must be objects")
        return CampaignSpec(
            name=str(payload.get("name", "campaign")),
            description=str(payload.get("description", "")),
            services=tuple(
                ServiceSpec.from_dict(str(name), entry)
                for name, entry in services_raw.items()
            ),
            targets=tuple(
                TargetSpec.from_dict(str(name), entry)
                for name, entry in targets_raw.items()
            ),
        )

    @staticmethod
    def from_file(path: str) -> "CampaignSpec":
        """Load, parse, and validate a campaign spec from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise CampaignError(f"cannot read campaign spec {path!r}: {error}") from None
        except ValueError as error:
            raise CampaignError(f"campaign spec {path!r} is not valid JSON: {error}") from None
        return CampaignSpec.from_dict(payload).validate()
