"""Event buffers and the ``SELECTEVENTS(N)`` strategies of Figure 4.

Every gossip node keeps a bounded buffer of events it has recently seen
(the paper's ``events`` set) plus the set of event ids it has already
delivered (the ``delivered`` set).  Each round the node picks at most ``N``
events from the buffer to put into the outgoing gossip message; the
*selection strategy* decides which ones.  The strategy matters both for
dissemination speed (prefer young events) and for fairness (a selfish node
can bias selection towards stale events to inflate apparent contribution,
challenge 6 of §5.2 — see :mod:`repro.core.bias`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..pubsub.events import Event

__all__ = ["BufferedEvent", "EventBuffer", "SELECTION_STRATEGIES"]


@dataclass
class BufferedEvent:
    """An event held in a node's gossip buffer with local bookkeeping."""

    event: Event
    received_at: float
    forwarded_count: int = 0
    rounds_held: int = 0

    @property
    def event_id(self) -> str:
        return self.event.event_id


#: Names of the built-in selection strategies.
SELECTION_STRATEGIES = ("random", "newest", "oldest", "least-forwarded", "stale-first")


class EventBuffer:
    """Bounded buffer of recently seen events.

    Parameters
    ----------
    capacity:
        Maximum number of events held; when full, the event that has been
        held for the most rounds is evicted (lpbcast-style purging).
    max_rounds:
        Events held longer than this many rounds are garbage-collected at
        the start of each round, bounding both memory and the tail of
        redundant forwarding.
    """

    def __init__(self, capacity: int = 200, max_rounds: int = 20) -> None:
        if capacity <= 0 or max_rounds <= 0:
            raise ValueError("capacity and max_rounds must be positive")
        self.capacity = capacity
        self.max_rounds = max_rounds
        self._entries: Dict[str, BufferedEvent] = {}
        self.evictions = 0
        self.expirations = 0

    # ------------------------------------------------------------ mutation

    def add(self, event: Event, received_at: float) -> bool:
        """Insert an event; returns ``False`` if it was already buffered."""
        if event.event_id in self._entries:
            return False
        if len(self._entries) >= self.capacity:
            self._evict_one()
        self._entries[event.event_id] = BufferedEvent(event=event, received_at=received_at)
        return True

    def _evict_one(self) -> None:
        victim = max(
            self._entries.values(),
            key=lambda entry: (entry.rounds_held, entry.forwarded_count, entry.event_id),
        )
        del self._entries[victim.event_id]
        self.evictions += 1

    def start_round(self) -> int:
        """Age all entries by one round and expire old ones; returns expirations."""
        expired = [
            entry.event_id
            for entry in self._entries.values()
            if entry.rounds_held + 1 > self.max_rounds
        ]
        for event_id in expired:
            del self._entries[event_id]
        self.expirations += len(expired)
        for entry in self._entries.values():
            entry.rounds_held += 1
        return len(expired)

    def mark_forwarded(self, event_ids: Iterable[str]) -> None:
        """Record that the given events were put into an outgoing message."""
        for event_id in event_ids:
            entry = self._entries.get(event_id)
            if entry is not None:
                entry.forwarded_count += 1

    def remove(self, event_id: str) -> bool:
        """Drop one event from the buffer."""
        return self._entries.pop(event_id, None) is not None

    # ------------------------------------------------------------ selection

    def select(
        self, count: int, rng: random.Random, strategy: str = "random"
    ) -> List[Event]:
        """Pick up to ``count`` events according to ``strategy``.

        Strategies
        ----------
        ``random``
            Uniform sample — the baseline of Figure 4.
        ``newest``
            Fewest rounds held first; spreads fresh events fastest.
        ``oldest``
            Most rounds held first.
        ``least-forwarded``
            Events this node has forwarded the fewest times first; maximises
            the marginal usefulness of each forwarded byte.
        ``stale-first``
            Alias of ``oldest`` kept separate because the selfish-node model
            uses it deliberately to inflate useless contribution.
        """
        if count <= 0 or not self._entries:
            return []
        entries = list(self._entries.values())
        # Ties (events with identical age or forward counts) are broken at
        # random; a deterministic tie-break would starve whichever events
        # happen to sort last when more than ``count`` tie, as can occur
        # when a publisher injects a burst within one round.
        rng.shuffle(entries)
        if strategy == "random":
            chosen = entries[:count]
        elif strategy == "newest":
            chosen = sorted(entries, key=lambda entry: entry.rounds_held)[:count]
        elif strategy in ("oldest", "stale-first"):
            chosen = sorted(entries, key=lambda entry: -entry.rounds_held)[:count]
        elif strategy == "least-forwarded":
            chosen = sorted(
                entries, key=lambda entry: (entry.forwarded_count, entry.rounds_held)
            )[:count]
        else:
            raise ValueError(
                f"unknown selection strategy {strategy!r}; expected one of {SELECTION_STRATEGIES}"
            )
        return [entry.event for entry in chosen]

    # -------------------------------------------------------------- queries

    def __contains__(self, event_id: str) -> bool:
        return event_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def event_ids(self) -> List[str]:
        """Ids of buffered events, sorted."""
        return sorted(self._entries)

    def events(self) -> List[Event]:
        """Buffered events, sorted by id."""
        return [self._entries[event_id].event for event_id in sorted(self._entries)]

    def get(self, event_id: str) -> Optional[Event]:
        """Return the buffered event with this id, if present."""
        entry = self._entries.get(event_id)
        return entry.event if entry is not None else None
