"""Shared helpers for the benchmark suite.

Every benchmark file regenerates one experiment from the DESIGN.md index
(one per paper figure or §5 challenge).  The pattern is always the same:
build the experiment configs, run them once inside ``benchmark.pedantic``
(the simulation itself is the thing being timed; statistical repetition is
pointless because the runs are deterministic), print the table the paper
would show, and attach the headline numbers to ``benchmark.extra_info`` so
``--benchmark-json`` captures them machine-readably.

Benchmarks use smaller populations than a paper deployment would (hundreds
of nodes, not tens of thousands) so the whole suite finishes in minutes;
the *shape* of the comparisons is what is being reproduced, as explained in
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import os
from typing import Dict, Iterable, List, Sequence

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.analysis.tables import Table  # noqa: E402
from repro.experiments import ExperimentConfig, ExperimentResult  # noqa: E402

__all__ = ["BASE_CONFIG", "print_results", "attach_extra_info", "Table", "ExperimentConfig"]

#: Baseline scenario shared by most benchmarks: medium-sized system, Zipf
#: topic popularity, heterogeneous (Zipf) interest, moderate traffic.
BASE_CONFIG = ExperimentConfig(
    name="base",
    nodes=96,
    topics=16,
    topic_exponent=1.0,
    interest_model="zipf",
    max_topics_per_node=6,
    publication_rate=4.0,
    duration=25.0,
    drain_time=15.0,
    fanout=4,
    gossip_size=8,
    seed=2007,
)


def print_results(title: str, results: Sequence[ExperimentResult], extra_columns: Dict[str, Dict[str, object]] = None) -> None:
    """Print the standard result table (plus optional per-run extra columns)."""
    extra_columns = extra_columns or {}
    extra_names = sorted({key for values in extra_columns.values() for key in values})
    table = Table(
        ["name", "delivery_ratio", "mean_rounds", "ratio_jain", "ratio_spread", "wasted_share",
         "contribution_jain", "total_messages"] + extra_names,
        title=title,
    )
    for result in results:
        report = result.fairness.report
        row = {
            "name": result.config.name,
            "delivery_ratio": result.reliability.delivery_ratio,
            "mean_rounds": result.reliability.mean_rounds,
            "ratio_jain": report.ratio_jain,
            "ratio_spread": report.ratio_spread,
            "wasted_share": report.wasted_share,
            "contribution_jain": report.contribution_jain,
            "total_messages": result.total_messages,
        }
        row.update(extra_columns.get(result.config.name, {}))
        table.add_row(**row)
    print()
    print(table.render())


def attach_extra_info(benchmark, results: Sequence[ExperimentResult]) -> None:
    """Store the headline numbers of every run in the benchmark record."""
    benchmark.extra_info["rows"] = [
        {
            "name": result.config.name,
            "system": result.config.system,
            "delivery_ratio": round(result.reliability.delivery_ratio, 4),
            "ratio_jain": round(result.fairness.report.ratio_jain, 4),
            "wasted_share": round(result.fairness.report.wasted_share, 4),
            "contribution_jain": round(result.fairness.report.contribution_jain, 4),
            "total_messages": result.total_messages,
        }
        for result in results
    ]
