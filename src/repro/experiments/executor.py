"""Parallel, cache-aware execution of experiment grids.

:class:`ParallelSweepExecutor` is the engine behind ``python -m repro`` and
the benchmark suite.  It takes the same grids the serial helpers in
:mod:`repro.experiments.sweeps` expand and fans the *uncached* points out
over a :mod:`multiprocessing` pool.

Two properties make this safe:

* **Determinism** — :func:`repro.experiments.runner.run_experiment` is a
  pure function of its config: every random draw flows from
  ``config.seed`` through :func:`repro.sim.rng.derive_seed`-derived
  streams, and the event queue breaks ties deterministically.  Workers
  therefore compute exactly what a serial loop would, and results are
  bit-identical regardless of worker count or scheduling order.
* **Content addressing** — results are cached by config hash
  (:mod:`repro.experiments.cache`), so re-running a sweep only pays for
  points whose config actually changed.

Runs requesting ``keep_system`` carry a live (unpicklable, unserializable)
object graph, so they bypass both the pool and the cache and execute
serially in-process.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from .cache import ResultCache
from .config import ExperimentConfig
from .runner import ExperimentResult, run_experiment
from .sweeps import compare_configs, grid_configs, sweep_configs

__all__ = ["ExecutionReport", "ParallelSweepExecutor"]


@dataclass(frozen=True)
class ExecutionReport:
    """What one :meth:`ParallelSweepExecutor.run_many` call did."""

    total: int
    cache_hits: int
    computed: int
    workers: int
    elapsed_seconds: float
    #: Per-config hit flags in input order (``True`` = served from cache);
    #: empty for reports predating the campaign layer.
    hit_flags: Tuple[bool, ...] = ()

    def describe(self) -> str:
        """One-line human-readable summary (shown by the CLI)."""
        return (
            f"runs: {self.total} | cache hits: {self.cache_hits} | "
            f"computed: {self.computed} | workers: {self.workers} | "
            f"elapsed: {self.elapsed_seconds:.2f}s"
        )


class ParallelSweepExecutor:
    """Run many experiment configs with worker processes and a result cache.

    Parameters
    ----------
    workers:
        Number of worker processes; 1 (the default) runs everything
        in-process.  More workers than uncached configs are not spawned.
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`; when present,
        configs found in the cache are served from disk and freshly computed
        results are stored back.
    mp_context:
        Optional :func:`multiprocessing.get_context` method name
        (``"fork"``/``"spawn"``); ``None`` uses the platform default.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = int(workers)
        self.cache = cache
        self.mp_context = mp_context
        self.last_report: Optional[ExecutionReport] = None

    def run(self, config: ExperimentConfig, keep_system: bool = False) -> ExperimentResult:
        """Run a single config (cache-aware)."""
        return self.run_many([config], keep_system=keep_system)[0]

    def run_many(
        self,
        configs: Sequence[ExperimentConfig],
        keep_system: bool = False,
    ) -> List[ExperimentResult]:
        """Run every config, preserving input order in the returned list.

        Cached points are loaded from disk; the rest are computed — in
        parallel when more than one worker is configured — and stored back.
        ``self.last_report`` records hit/computed counts for the call.
        """
        configs = list(configs)
        started = time.perf_counter()
        results: List[Optional[ExperimentResult]] = [None] * len(configs)
        use_cache = self.cache is not None and not keep_system
        missing_indices: List[int] = []
        for index, config in enumerate(configs):
            cached = self.cache.load(config) if use_cache else None
            if cached is not None:
                results[index] = cached
            else:
                missing_indices.append(index)

        missing = [configs[index] for index in missing_indices]
        if missing:
            if self.workers > 1 and len(missing) > 1 and not keep_system:
                context = multiprocessing.get_context(self.mp_context)
                processes = min(self.workers, len(missing))
                with context.Pool(processes=processes) as pool:
                    computed = pool.map(run_experiment, missing, chunksize=1)
            else:
                computed = [run_experiment(config, keep_system=keep_system) for config in missing]
            for index, result in zip(missing_indices, computed):
                results[index] = result
                if use_cache:
                    self.cache.store(result)

        self.last_report = ExecutionReport(
            total=len(configs),
            cache_hits=len(configs) - len(missing),
            computed=len(missing),
            workers=self.workers,
            elapsed_seconds=time.perf_counter() - started,
            hit_flags=tuple(
                index not in set(missing_indices) for index in range(len(configs))
            ),
        )
        return results  # type: ignore[return-value]

    def sweep(
        self,
        base: ExperimentConfig,
        parameter: str,
        values: Sequence,
        rename: Optional[Callable[[object], str]] = None,
        reseed: bool = False,
        keep_system: bool = False,
    ) -> List[ExperimentResult]:
        """Parallel, cached equivalent of :func:`repro.experiments.sweeps.sweep`."""
        configs = sweep_configs(base, parameter, values, rename=rename, reseed=reseed)
        return self.run_many(configs, keep_system=keep_system)

    def compare(
        self,
        base: ExperimentConfig,
        systems: Sequence[str],
        keep_system: bool = False,
    ) -> List[ExperimentResult]:
        """Parallel, cached equivalent of :func:`repro.experiments.sweeps.compare`."""
        return self.run_many(compare_configs(base, systems), keep_system=keep_system)

    def grid(
        self,
        base: ExperimentConfig,
        parameters: Mapping[str, Sequence],
        reseed: bool = False,
        keep_system: bool = False,
    ) -> List[ExperimentResult]:
        """Run a multi-axis cartesian grid (see :func:`grid_configs`)."""
        configs = grid_configs(base, parameters, reseed=reseed)
        return self.run_many(configs, keep_system=keep_system)
