"""Content-addressed on-disk cache for experiment results.

Every :class:`~repro.experiments.config.ExperimentConfig` hashes to a stable
key (:func:`config_hash`), and a finished
:class:`~repro.experiments.runner.ExperimentResult` is stored as canonical
JSON under that key.  Because experiments are deterministic functions of
their config (see ``docs/ARCHITECTURE.md``), a cache hit is
indistinguishable from a recomputation — so repeated sweeps, benchmark
re-runs, and CLI invocations skip every already-computed grid point.

Key scheme
----------
``sha256("repro-result:v{SCHEMA}:{code_version}:" + canonical_json(config.to_dict()))``
where canonical JSON uses sorted keys and no whitespace.  The hash covers
*every* config field, including ``name``: the name feeds into table rows and
the fairness summary, so two configs differing only by name produce
different artifacts.  It also covers the package version
(``repro.__version__``), so upgrading to a release with different numeric
behavior orphans old artifacts instead of silently mixing old- and new-code
numbers in one table.  Artifacts live at ``<dir>/<hash[:2]>/<hash>.json``
to keep directories small.

The cache directory defaults to ``.repro-cache`` under the current working
directory and can be overridden with the ``REPRO_CACHE_DIR`` environment
variable or explicitly in code / via the CLI's ``--cache-dir``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from .. import __version__ as _CODE_VERSION
from .config import ExperimentConfig
from .runner import ExperimentResult

__all__ = [
    "ARTIFACT_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "config_hash",
    "CacheStats",
    "ResultCache",
]

_logger = logging.getLogger(__name__)

#: Version of the on-disk artifact layout; bump when ``to_dict`` output
#: changes incompatibly.  Old artifacts then simply stop matching and are
#: recomputed.
ARTIFACT_SCHEMA = 1

#: Directory used when neither the constructor nor ``REPRO_CACHE_DIR`` says
#: otherwise.
DEFAULT_CACHE_DIR = ".repro-cache"


def config_hash(config: ExperimentConfig) -> str:
    """Stable content hash of a config plus the code version (the cache key)."""
    canonical = json.dumps(config.to_dict(), sort_keys=True, separators=(",", ":"))
    tagged = f"repro-result:v{ARTIFACT_SCHEMA}:{_CODE_VERSION}:{canonical}"
    return hashlib.sha256(tagged.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Running counters of one :class:`ResultCache` instance.

    ``corrupt`` counts entries that existed on disk but failed to parse or
    decode — each one is logged, treated as a miss, and overwritten by the
    next store; the campaign manifest records the count as the
    ``cache.corrupt`` telemetry counter does for live telemetry.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
        }


class ResultCache:
    """Load and store experiment results keyed by config hash.

    The cache is safe against corrupt or stale files: anything that fails to
    parse or fails the schema check reads as a miss and is overwritten by the
    next store.  A *corrupt* entry (the file exists but is truncated or
    undecodable) is additionally counted in ``stats.corrupt``, logged, and —
    when a :class:`~repro.telemetry.Telemetry` store is attached via
    ``telemetry=`` — recorded as a ``cache.corrupt`` counter.  Writes are
    atomic (temp file + rename) so two processes of a parallel sweep racing
    on the same point cannot leave a torn artifact.

    Every stored entry carries a ``provenance`` block (the config dict, the
    package version, and a creation timestamp) alongside the result payload,
    so campaign manifests and ``repro campaign status`` can attribute cache
    contents without re-hashing anything.
    """

    def __init__(self, directory: Optional[str] = None, telemetry=None) -> None:
        resolved = directory or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.directory = Path(resolved)
        self.stats = CacheStats()
        self.telemetry = telemetry

    def path_for(self, config: ExperimentConfig) -> Path:
        """Artifact path a result for ``config`` would be stored at."""
        key = config_hash(config)
        return self.directory / key[:2] / f"{key}.json"

    def _read(self, path: Path, count: bool = True) -> Optional[dict]:
        """Parse one entry; ``None`` on miss, counting corruption as a miss."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            if count:
                self.stats.misses += 1
            return None
        except (OSError, ValueError) as error:
            if count:
                self._corrupt(path, error)
            return None
        if not isinstance(payload, dict):
            if count:
                self._corrupt(path, "not a JSON object")
            return None
        if payload.get("schema") != ARTIFACT_SCHEMA:
            # A different schema is a deliberate layout change, not damage:
            # the entry simply no longer matches and will be recomputed.
            if count:
                self.stats.misses += 1
            return None
        return payload

    def _corrupt(self, path: Path, reason: object) -> None:
        self.stats.corrupt += 1
        self.stats.misses += 1
        _logger.warning("cache entry %s is corrupt (%s); treating as a miss", path, reason)
        if self.telemetry is not None:
            self.telemetry.increment("cache.corrupt")

    def load(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """Return the cached result for ``config``, or ``None`` on a miss."""
        path = self.path_for(config)
        payload = self._read(path)
        if payload is None:
            return None
        try:
            result = ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            self.stats.corrupt += 1
            self.stats.misses += 1
            _logger.warning(
                "cache entry %s failed to decode (%s); treating as a miss", path, error
            )
            if self.telemetry is not None:
                self.telemetry.increment("cache.corrupt")
            return None
        self.stats.hits += 1
        return result

    def fresh(self, config: ExperimentConfig) -> bool:
        """Whether a loadable entry for ``config`` exists (no stats counted).

        This is the campaign layer's staleness probe: it parses the entry
        (so truncated files read as stale) without decoding the result or
        touching hit/miss accounting.
        """
        return self._read(self.path_for(config), count=False) is not None

    def provenance(self, config: ExperimentConfig) -> Optional[Dict[str, object]]:
        """The stored entry's provenance block, or ``None``.

        Entries written before provenance existed load fine but report no
        provenance; :meth:`load`'s hit/miss/corrupt accounting is not
        touched by this read-only peek.
        """
        payload = self._read(self.path_for(config), count=False)
        if payload is None:
            return None
        provenance = payload.get("provenance")
        return provenance if isinstance(provenance, dict) else None

    def scan_provenance(self) -> Iterator[Tuple[Path, Optional[Dict[str, object]]]]:
        """Yield ``(path, provenance)`` for every artifact on disk.

        ``provenance`` is ``None`` for unreadable entries and for entries
        written before provenance recording; ``repro campaign status`` uses
        this to flag entries from older package versions.
        """
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*/*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                yield path, None
                continue
            provenance = payload.get("provenance") if isinstance(payload, dict) else None
            yield path, provenance if isinstance(provenance, dict) else None

    def store(self, result: ExperimentResult) -> Path:
        """Persist ``result`` and return the artifact path."""
        path = self.path_for(result.config)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": ARTIFACT_SCHEMA,
            "config_hash": config_hash(result.config),
            "result": result.to_dict(),
            "provenance": {
                "config": result.config.to_dict(),
                "version": _CODE_VERSION,
                "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            },
        }
        self.stats.stores += 1
        encoded = json.dumps(payload, sort_keys=True, indent=2)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(encoded)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def entry_count(self) -> int:
        """Number of artifacts currently stored."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
