"""Tests for the analysis layer and the experiment harness."""

from __future__ import annotations

import pytest

from tests.conftest import build_gossip_system
from repro.analysis import (
    Table,
    compare_systems,
    format_mapping,
    format_table,
    measure_reliability,
    summarise_fairness,
)
from repro.core import EXPRESSIVE_POLICY, TOPIC_BASED_POLICY, WorkLedger
from repro.experiments import (
    ExperimentConfig,
    SYSTEM_NAMES,
    build_popularity,
    build_system,
    build_simulation,
    compare,
    resolve_policy,
    results_table,
    run_experiment,
    sweep,
)
from repro.pubsub import DeliveryLog, Event, SubscriptionTable, TopicFilter


class TestTables:
    def test_format_table_alignment_and_precision(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bbbb", 2]], precision=2)
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.23" in text and "2" in text

    def test_format_mapping(self):
        text = format_mapping({"jain": 0.912, "nodes": 10}, title="summary")
        assert text.startswith("summary")
        assert "jain" in text

    def test_table_incremental_and_unknown_column(self):
        table = Table(["a", "b"], title="t")
        table.add_row(a=1, b=2)
        table.add_row(a=3)
        rendered = table.render()
        assert "t" in rendered and "3" in rendered
        with pytest.raises(KeyError):
            table.add_row(c=1)
        with pytest.raises(ValueError):
            Table([])


class TestReliabilityMeasurement:
    def test_full_delivery_reports_ratio_one(self):
        table = SubscriptionTable()
        log = DeliveryLog()
        table.subscribe("a", TopicFilter("t"))
        table.subscribe("b", TopicFilter("t"))
        event = Event(event_id="e1", publisher="p", attributes={"topic": "t"}, published_at=1.0)
        log.record("a", event, delivered_at=2.0)
        log.record("b", event, delivered_at=3.0)
        report = measure_reliability([event], log, table, round_period=1.0)
        assert report.delivery_ratio == 1.0
        assert report.complete_fraction == 1.0
        assert report.mean_latency == pytest.approx(1.5)
        assert report.mean_rounds == pytest.approx(1.5)
        assert report.events[0].complete

    def test_partial_delivery_detected(self):
        table = SubscriptionTable()
        log = DeliveryLog()
        for node in ("a", "b", "c", "d"):
            table.subscribe(node, TopicFilter("t"))
        event = Event(event_id="e1", publisher="p", attributes={"topic": "t"}, published_at=0.0)
        log.record("a", event, delivered_at=1.0)
        report = measure_reliability([event], log, table)
        assert report.delivery_ratio == pytest.approx(0.25)
        assert report.complete_fraction == 0.0

    def test_uninterested_deliveries_do_not_count(self):
        table = SubscriptionTable()
        log = DeliveryLog()
        table.subscribe("a", TopicFilter("t"))
        event = Event(event_id="e1", publisher="p", attributes={"topic": "t"}, published_at=0.0)
        log.record("a", event, delivered_at=1.0)
        log.record("z", event, delivered_at=1.0)  # z never subscribed
        report = measure_reliability([event], log, table)
        assert report.delivery_ratio == 1.0

    def test_no_events_is_vacuously_reliable(self):
        report = measure_reliability([], DeliveryLog(), SubscriptionTable())
        assert report.delivery_ratio == 1.0
        assert report.summary_row()["events"] == 0.0


class TestFairnessSummaries:
    def build_ledger(self):
        ledger = WorkLedger()
        ledger.record_gossip_send("worker", messages=50, events=100)
        ledger.record_delivery("worker", events=2)
        ledger.record_subscribe("worker")
        ledger.record_delivery("beneficiary", events=30)
        ledger.record_gossip_send("beneficiary", messages=5, events=10)
        ledger.record_subscribe("beneficiary")
        return ledger

    def test_summary_contains_per_node_rows(self):
        summary = summarise_fairness(self.build_ledger(), EXPRESSIVE_POLICY, system_name="unit")
        assert summary.system_name == "unit"
        nodes = {row.node_id for row in summary.per_node}
        assert nodes == {"worker", "beneficiary"}
        top = summary.top_contributors(1)[0]
        assert top.node_id == "worker"
        assert "unit" in summary.render()

    def test_zero_benefit_contributors_listed(self):
        ledger = WorkLedger()
        ledger.record_gossip_send("relay", messages=10)
        ledger.record_delivery("user", events=5)
        summary = summarise_fairness(ledger, EXPRESSIVE_POLICY)
        assert [row.node_id for row in summary.zero_benefit_contributors()] == ["relay"]

    def test_policy_changes_benefit(self):
        ledger = self.build_ledger()
        expressive = summarise_fairness(ledger, EXPRESSIVE_POLICY)
        topic_based = summarise_fairness(ledger, TOPIC_BASED_POLICY)
        worker_expressive = next(r for r in expressive.per_node if r.node_id == "worker")
        worker_topic = next(r for r in topic_based.per_node if r.node_id == "worker")
        assert worker_topic.benefit > worker_expressive.benefit  # filters count

    def test_compare_systems_renders_all_rows(self):
        ledger = self.build_ledger()
        summaries = [
            summarise_fairness(ledger, EXPRESSIVE_POLICY, system_name=name)
            for name in ("one", "two")
        ]
        rendered = compare_systems(summaries)
        assert "one" in rendered and "two" in rendered


class TestExperimentHarness:
    BASE = ExperimentConfig(
        name="unit", nodes=24, topics=6, duration=8.0, drain_time=6.0, publication_rate=2.0, seed=3
    )

    def test_config_overrides_and_ids(self):
        config = self.BASE.with_overrides(nodes=10, name="other")
        assert config.nodes == 10 and config.name == "other"
        assert self.BASE.nodes == 24  # original untouched
        assert len(config.node_ids()) == 10
        assert len(config.publisher_ids()) == max(1, int(10 * config.publisher_fraction))
        assert config.total_time == config.duration + config.drain_time

    def test_resolve_policy(self):
        assert resolve_policy(self.BASE) is EXPRESSIVE_POLICY
        assert resolve_policy(self.BASE.with_overrides(fairness_policy="topic")) is TOPIC_BASED_POLICY
        with pytest.raises(ValueError):
            resolve_policy(self.BASE.with_overrides(fairness_policy="bogus"))

    def test_build_system_supports_every_name(self):
        for system_name in SYSTEM_NAMES:
            config = self.BASE.with_overrides(system=system_name, nodes=12)
            simulator, network = build_simulation(config)
            popularity = build_popularity(config)
            system = build_system(config, simulator, network, popularity=popularity)
            assert system.node_ids()
        with pytest.raises(ValueError):
            config = self.BASE.with_overrides(system="unknown")
            simulator, network = build_simulation(config)
            build_system(config, simulator, network)

    def test_run_experiment_produces_consistent_result(self):
        result = run_experiment(self.BASE)
        assert result.reliability.delivery_ratio > 0.9
        assert result.fairness.report.node_count == self.BASE.nodes
        assert result.total_deliveries == result.system is None or True
        row = result.summary_row()
        assert row["system"] == "gossip"
        assert 0.0 <= row["delivery_ratio"] <= 1.0

    def test_run_experiment_is_deterministic(self):
        first = run_experiment(self.BASE)
        second = run_experiment(self.BASE)
        assert first.total_messages == second.total_messages
        assert first.reliability.delivery_ratio == second.reliability.delivery_ratio
        assert first.fairness.report.ratio_jain == pytest.approx(second.fairness.report.ratio_jain)

    def test_different_seed_changes_outcome(self):
        first = run_experiment(self.BASE)
        second = run_experiment(self.BASE.with_overrides(seed=99))
        assert first.total_messages != second.total_messages

    def test_sweep_and_compare_helpers(self):
        results = sweep(self.BASE.with_overrides(duration=5.0), "fanout", [2, 4])
        assert [r.config.fanout for r in results] == [2, 4]
        comparison = compare(self.BASE.with_overrides(duration=5.0), ["gossip", "brokers"])
        assert [r.config.system for r in comparison] == ["gossip", "brokers"]
        table = results_table(results, title="sweep")
        assert "sweep" in table.render()

    def test_churn_and_subscription_churn_run(self):
        config = self.BASE.with_overrides(
            churn_down_probability=0.05, subscription_churn_rate=1.0, duration=6.0
        )
        result = run_experiment(config)
        assert result.reliability.delivery_ratio > 0.5

    def test_keep_system_exposes_live_object(self):
        result = run_experiment(self.BASE.with_overrides(duration=4.0), keep_system=True)
        assert result.system is not None
        assert result.system.node_ids()
