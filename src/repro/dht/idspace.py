"""Identifier space for the structured (DHT) baselines.

Pastry (reference [14]) assigns nodes and keys uniformly distributed
identifiers and routes by resolving one digit (base ``2^b``) per hop towards
the node numerically closest to the key.  This module provides the id space
arithmetic: hashing names to ids, digit extraction, shared-prefix length, and
circular distance.  It is deliberately independent of the simulator so it can
be unit- and property-tested in isolation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

__all__ = ["IdSpace"]


@dataclass(frozen=True)
class IdSpace:
    """A ``bits``-wide circular identifier space with base-``2^digit_bits`` digits.

    The defaults (32-bit ids, hexadecimal digits) keep printed ids readable in
    traces while preserving Pastry's structure; the real system uses 128-bit
    ids but nothing in the routing logic depends on the width.
    """

    bits: int = 32
    digit_bits: int = 4

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.digit_bits <= 0:
            raise ValueError("bits and digit_bits must be positive")
        if self.bits % self.digit_bits != 0:
            raise ValueError("bits must be a multiple of digit_bits")

    # ------------------------------------------------------------ basic ops

    @property
    def size(self) -> int:
        """Number of distinct identifiers."""
        return 1 << self.bits

    @property
    def digits(self) -> int:
        """Number of digits in an identifier."""
        return self.bits // self.digit_bits

    @property
    def digit_base(self) -> int:
        """Radix of one digit (16 for hexadecimal digits)."""
        return 1 << self.digit_bits

    def hash_name(self, name: str) -> int:
        """Deterministically map an arbitrary name to an identifier."""
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        return int.from_bytes(digest, "big") % self.size

    def digit(self, identifier: int, position: int) -> int:
        """The ``position``-th most significant digit of ``identifier``."""
        if not 0 <= position < self.digits:
            raise ValueError(f"position must be within [0, {self.digits})")
        shift = self.bits - (position + 1) * self.digit_bits
        return (identifier >> shift) & (self.digit_base - 1)

    def shared_prefix_length(self, left: int, right: int) -> int:
        """Number of leading digits the two identifiers share."""
        length = 0
        for position in range(self.digits):
            if self.digit(left, position) == self.digit(right, position):
                length += 1
            else:
                break
        return length

    def distance(self, left: int, right: int) -> int:
        """Circular distance between two identifiers."""
        difference = abs(left - right)
        return min(difference, self.size - difference)

    def format(self, identifier: int) -> str:
        """Fixed-width hexadecimal rendering used in traces."""
        width = self.bits // 4
        return f"{identifier:0{width}x}"

    # ----------------------------------------------------------- selections

    def closest(self, key: int, candidates: Iterable[int]) -> Optional[int]:
        """The candidate identifier numerically closest to ``key``.

        Ties are broken towards the numerically smaller identifier so the
        choice of root for a key is unambiguous across call sites.
        """
        best: Optional[int] = None
        best_distance: Optional[int] = None
        for candidate in candidates:
            candidate_distance = self.distance(key, candidate)
            if (
                best_distance is None
                or candidate_distance < best_distance
                or (candidate_distance == best_distance and best is not None and candidate < best)
            ):
                best = candidate
                best_distance = candidate_distance
        return best
