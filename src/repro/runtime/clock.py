"""Wall clock: real time expressed in the simulator's time units.

The protocols measure everything — round periods, latencies, buffer ages —
in abstract time units.  :class:`WallClock` maps those units onto the
operating system's monotonic clock so the same protocol code runs live:
``time_scale`` units elapse per real second, which lets a live cluster run
its gossip rounds faster than one-round-per-second without touching any
protocol parameter (a ``round_period`` of 1.0 unit at ``time_scale=10`` is a
100 ms real round).
"""

from __future__ import annotations

import time
from typing import Callable

from ..sim.clock import Clock, _validated_start

__all__ = ["WallClock"]


class WallClock(Clock):
    """Monotonic wall-clock time in protocol time units.

    Parameters
    ----------
    time_scale:
        Time units per real second.  ``1.0`` means one unit is one second;
        ``20.0`` runs the protocol twenty times faster than real time.
    start:
        Value of ``now`` at construction time.
    time_source:
        Seconds-returning monotonic callable, injectable for tests.
    """

    def __init__(
        self,
        time_scale: float = 1.0,
        start: float = 0.0,
        time_source: Callable[[], float] = time.monotonic,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = float(time_scale)
        self._time_source = time_source
        self._start_units = _validated_start(start)
        self._epoch_seconds = time_source()

    @property
    def now(self) -> float:
        """Current time in time units since the clock was created."""
        elapsed = self._time_source() - self._epoch_seconds
        return self._start_units + elapsed * self.time_scale

    def units_to_seconds(self, units: float) -> float:
        """Convert a duration in time units to real seconds."""
        return units / self.time_scale

    def seconds_to_units(self, seconds: float) -> float:
        """Convert a duration in real seconds to time units."""
        return seconds * self.time_scale

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WallClock(now={self.now:.3f}, time_scale={self.time_scale})"
