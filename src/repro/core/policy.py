"""Fairness policies.

Section 5 lists the fairness *aspects* (receive many interesting events →
contribute more; place many subscriptions → contribute more) and notes that
they can conflict, so "there must be adaptive approaches which allow to
compensate between different fairness goals".  A :class:`FairnessPolicy`
encodes one concrete compromise:

* which weights turn the raw ledger counters into contribution and benefit
  (Figure 2 vs Figure 3);
* how a node's *target contribution share* is computed from its benefit
  share (strict proportionality by default);
* how the delivery-based and subscription-based benefit terms are blended
  depending on how busy the system is (the §5.1 idea that when few events
  flow, subscription cost should dominate, and when many events flow, the
  heavy receivers should do the maintenance);
* an optional penalty factor for unstable nodes (§3.2: "it might also be
  wise to penalize unstable nodes").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

from .accounting import BenefitWeights, ContributionWeights, NodeAccount, WorkLedger

__all__ = ["FairnessPolicy", "TOPIC_BASED_POLICY", "EXPRESSIVE_POLICY"]


@dataclass(frozen=True)
class FairnessPolicy:
    """A concrete interpretation of the paper's fairness figures.

    Attributes
    ----------
    name:
        Identifier used in reports.
    contribution_weights / benefit_weights:
        How ledger counters fold into scalars (see
        :mod:`repro.core.accounting`).
    adaptive_blend:
        When ``True`` the per-filter benefit weight is scaled by how quiet
        the system is: in a quiet system (few deliveries per node) the filter
        term keeps its full weight, in a busy system it fades out and
        deliveries dominate — the compensation rule sketched in §5.1.
    instability_penalty:
        Extra *expected contribution* per recorded crash, as a fraction of
        the node's benefit-derived target.  0 disables the penalty.
    minimum_share:
        Lower bound on any node's target contribution share, as a fraction of
        the equal share ``1/n``; prevents the fair protocol from silencing
        low-benefit nodes entirely, which would hurt dissemination
        reliability (challenge 3 of §5.2).
    """

    name: str = "expressive"
    contribution_weights: ContributionWeights = field(default_factory=ContributionWeights)
    benefit_weights: BenefitWeights = field(default_factory=BenefitWeights)
    adaptive_blend: bool = False
    instability_penalty: float = 0.0
    minimum_share: float = 0.1

    # ------------------------------------------------------------- scalars

    def contribution(self, account: NodeAccount) -> float:
        """Scalar contribution of one node's account."""
        return self.contribution_weights.contribution(account)

    def benefit(self, account: NodeAccount, busyness: Optional[float] = None) -> float:
        """Scalar benefit of one node's account.

        ``busyness`` is the system-wide mean deliveries per node in the
        current window; it only matters when ``adaptive_blend`` is on.
        """
        weights = self.benefit_weights
        if self.adaptive_blend and weights.per_filter > 0:
            weights = replace(weights, per_filter=weights.per_filter * self._filter_scale(busyness))
        return weights.benefit(account)

    @staticmethod
    def _filter_scale(busyness: Optional[float]) -> float:
        """Scale factor for the filter term: 1 when quiet, →0 when busy."""
        if busyness is None or busyness <= 0:
            return 1.0
        return 1.0 / (1.0 + busyness)

    # ----------------------------------------------------------- aggregates

    def contributions(self, ledger: WorkLedger) -> Dict[str, float]:
        """Per-node contributions for a whole ledger."""
        return {node_id: self.contribution(ledger.account(node_id)) for node_id in ledger.node_ids()}

    def benefits(self, ledger: WorkLedger) -> Dict[str, float]:
        """Per-node benefits for a whole ledger (with adaptive blending)."""
        node_ids = ledger.node_ids()
        busyness = None
        if self.adaptive_blend and node_ids:
            busyness = sum(
                ledger.account(node_id).events_delivered for node_id in node_ids
            ) / len(node_ids)
        return {
            node_id: self.benefit(ledger.account(node_id), busyness=busyness)
            for node_id in node_ids
        }

    # ---------------------------------------------------------- target work

    def target_shares(
        self, benefits: Mapping[str, float], crashes: Optional[Mapping[str, int]] = None
    ) -> Dict[str, float]:
        """Target contribution share per node (shares sum to 1).

        A node's fair share of the total work is proportional to its benefit
        share (Figure 1), floored at ``minimum_share / n`` and increased by
        the instability penalty for nodes that crashed.
        """
        node_ids = sorted(benefits)
        if not node_ids:
            return {}
        count = len(node_ids)
        floor = self.minimum_share / count
        total_benefit = sum(max(value, 0.0) for value in benefits.values())
        raw: Dict[str, float] = {}
        for node_id in node_ids:
            if total_benefit > 0:
                share = max(benefits[node_id], 0.0) / total_benefit
            else:
                share = 1.0 / count
            share = max(share, floor)
            if crashes and self.instability_penalty > 0:
                share *= 1.0 + self.instability_penalty * crashes.get(node_id, 0)
            raw[node_id] = share
        normaliser = sum(raw.values())
        return {node_id: share / normaliser for node_id, share in raw.items()}


#: Figure 2: topic-based selection — benefit counts deliveries *and* filters,
#: contribution counts published and forwarded messages (including
#: subscription maintenance), with the adaptive blend between the two benefit
#: terms switched on.
TOPIC_BASED_POLICY = FairnessPolicy(
    name="topic-based",
    contribution_weights=ContributionWeights(
        per_publish=1.0,
        per_gossip_message=1.0,
        per_event_forwarded=0.0,
        per_infrastructure_message=1.0,
        per_subscription_forward=1.0,
    ),
    benefit_weights=BenefitWeights(per_delivery=1.0, per_filter=1.0),
    adaptive_blend=True,
    instability_penalty=0.1,
)

#: Figure 3: expressive selection — benefit is deliveries only, contribution
#: is modulated by the fanout (number of gossip messages) and the gossip
#: message size (events carried).
EXPRESSIVE_POLICY = FairnessPolicy(
    name="expressive",
    contribution_weights=ContributionWeights(
        per_publish=1.0,
        per_gossip_message=1.0,
        per_event_forwarded=0.5,
        per_infrastructure_message=1.0,
        per_subscription_forward=0.0,
    ),
    benefit_weights=BenefitWeights(per_delivery=1.0, per_filter=0.0),
    adaptive_blend=False,
    instability_penalty=0.0,
)
