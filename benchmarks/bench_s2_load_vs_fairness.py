"""Experiment S2 (§3.1 vs §3.2): load balancing is not fairness.

A deliberately skewed interest distribution — 20% of the nodes subscribe to
the topics carrying ~80% of the traffic — run on SplitStream (built for load
balancing), classic gossip (naturally load-balanced), and fair gossip.
Expected shape: classic gossip and SplitStream score high on the
load-balance axis (contribution Jain) while scoring clearly lower on the
fairness axis (ratio Jain); fair gossip trades some load balance for a much
better contribution/benefit alignment.  This is Figure 1's message turned
into a measurement.
"""

from __future__ import annotations

from common import BASE_CONFIG, attach_extra_info, print_results, run_compare


def run_skewed_comparison():
    base = BASE_CONFIG.with_overrides(
        name="s2",
        nodes=80,
        topics=10,
        topic_exponent=1.5,        # traffic concentrates on a few topics
        interest_model="community",
        topics_per_node=2,
        duration=20.0,
        drain_time=12.0,
    )
    return run_compare(base, ["splitstream", "gossip", "fair-gossip"])


def test_s2_load_balancing_is_not_fairness(benchmark):
    results = benchmark.pedantic(run_skewed_comparison, rounds=1, iterations=1)
    print_results("S2 — load balance (contribution_jain) vs fairness (ratio_jain)", results)
    attach_extra_info(benchmark, results)
    by_system = {result.config.system: result.fairness.report for result in results}
    classic = by_system["gossip"]
    fair = by_system["fair-gossip"]
    # Classic gossip: excellent load balance, mediocre fairness.
    assert classic.contribution_jain > 0.9
    assert classic.ratio_jain < classic.contribution_jain
    # Fair gossip closes the gap between the two notions.
    assert fair.ratio_jain > classic.ratio_jain
    # SplitStream balances load better than it aligns work with benefit.
    split = by_system["splitstream"]
    assert split.contribution_jain > split.ratio_jain
