"""``python -m repro campaign`` — run or inspect a campaign spec.

Two forms share one subcommand:

``python -m repro campaign SPEC.json [--target NAME] [--dry-run] ...``
    execute the campaign incrementally (only stale points run) and write
    target artifacts plus ``manifest.json`` under the output directory;
``python -m repro campaign status SPEC.json ...``
    print the dependency graph with per-service fresh/stale marks and a
    cache provenance summary (flagging entries written by older package
    versions) without running anything.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from .. import __version__ as _CODE_VERSION
from ..analysis.tables import Table
from ..experiments.cache import DEFAULT_CACHE_DIR, ResultCache
from ..experiments.executor import ParallelSweepExecutor
from .executor import DONE, FAILED, CampaignExecutor
from .manifest import RunManifest
from .spec import CampaignError, CampaignSpec

__all__ = ["add_campaign_subcommand", "render_status", "render_plan"]


def render_status(executor: CampaignExecutor) -> str:
    """The ``campaign status`` view: graph, staleness, cache provenance."""
    spec = executor.spec
    sections: List[str] = []
    header = f"campaign {spec.name} — {len(spec.services)} service(s), {len(spec.targets)} target(s)"
    if spec.description:
        header += f"\n  {spec.description}"
    sections.append(header)

    counts = executor.stale_counts()
    services = Table(
        ["service", "scenario", "points", "fresh", "stale", "depends on"],
        title="services (fresh = cached under the current config hash)",
    )
    for service in spec.services:
        if service.name not in counts:
            continue
        fresh, stale = counts[service.name]
        services.add_row(
            service=service.name,
            scenario=service.scenario,
            points=fresh + stale,
            fresh=fresh,
            stale=stale,
            **{"depends on": ", ".join(executor.graph.dependencies_of(service.name)) or "-"},
        )
    sections.append(services.render())

    targets = Table(
        ["target", "kind", "inputs", "state"],
        title="targets (fresh = every needed point cached)",
    )
    for target in spec.targets:
        if target.name not in executor._needed:
            continue
        targets.add_row(
            target=target.name,
            kind=target.kind,
            inputs=target.inputs.describe(),
            state="fresh" if executor._fully_fresh(target.inputs) else "stale",
        )
    sections.append(targets.render())

    if executor.cache is not None:
        entries = 0
        versions: Dict[str, int] = {}
        unreadable = 0
        for _path, provenance in executor.cache.scan_provenance():
            entries += 1
            if provenance is None:
                unreadable += 1
                continue
            version = str(provenance.get("version", "unknown"))
            versions[version] = versions.get(version, 0) + 1
        stale_versions = sum(
            count for version, count in versions.items() if version != _CODE_VERSION
        )
        line = f"cache: {entries} entr(ies) at {executor.cache.directory}"
        if stale_versions:
            line += (
                f" — {stale_versions} written by an older repro version "
                f"({', '.join(sorted(version for version in versions if version != _CODE_VERSION))}); "
                "they will never be hit and can be cleared"
            )
        if unreadable:
            line += f" — {unreadable} without readable provenance (pre-provenance or corrupt)"
        sections.append(line)
    else:
        sections.append("cache: disabled (--no-cache) — every point reads as stale")
    return "\n\n".join(sections)


def render_plan(manifest: RunManifest) -> str:
    """The ``--dry-run`` view: what would run vs load from cache."""
    table = Table(
        ["node", "action", "points", "from cache", "to compute"],
        title=f"plan for campaign {manifest.campaign} (dry run — nothing executed)",
    )
    for name, record in manifest.services.items():
        cached = record.cache_hits
        total = len(record.points)
        table.add_row(
            node=name,
            action="load" if cached == total else "run",
            points=total,
            **{"from cache": cached, "to compute": total - cached},
        )
    for name, record in manifest.targets.items():
        table.add_row(node=name, action="render", points=len(record.config_hashes) or "")
    return table.render()


def _build_campaign_executor(args: argparse.Namespace) -> CampaignExecutor:
    spec = CampaignSpec.from_file(args.spec)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    sweep_executor = ParallelSweepExecutor(workers=args.workers, cache=cache)
    return CampaignExecutor(
        spec,
        executor=sweep_executor,
        out_dir=args.out_dir,
        targets=args.target or None,
    )


def cmd_campaign(args: argparse.Namespace) -> int:
    words = list(args.words)
    status_mode = False
    if words and words[0] == "status":
        status_mode = True
        words = words[1:]
    if len(words) != 1:
        raise SystemExit(
            "usage: python -m repro campaign [status] SPEC.json "
            "[--target NAME] [--dry-run] [--workers N]"
        )
    args.spec = words[0]
    try:
        executor = _build_campaign_executor(args)
    except CampaignError as error:
        raise SystemExit(str(error))

    if status_mode:
        print(render_status(executor))
        return 0

    manifest = executor.run(dry_run=args.dry_run)
    if args.dry_run:
        print(render_plan(manifest))
        return 0

    for name, record in manifest.targets.items():
        if record.status == DONE:
            outputs = ", ".join(record.outputs)
            print(f"target {name}: {outputs or '(no artifacts)'}")
        else:
            print(f"target {name}: {record.status}" + (f" — {record.error}" if record.error else ""))
    print(f"manifest: {executor.out_dir}/manifest.json")
    print(manifest.describe())
    failed = [
        name
        for name, record in list(manifest.services.items()) + list(manifest.targets.items())
        if record.status == FAILED
    ]
    if failed:
        print(f"FAILED node(s): {', '.join(failed)}")
        return 1
    return 0


def add_campaign_subcommand(subparsers) -> None:
    """Register ``campaign`` on the ``python -m repro`` parser."""
    parser = subparsers.add_parser(
        "campaign",
        help="run a declarative experiment campaign incrementally (or "
        "`campaign status SPEC.json` to inspect staleness without running)",
    )
    parser.add_argument(
        "words",
        nargs="+",
        metavar="[status] SPEC.json",
        help="campaign spec file; prefix with the word 'status' to print the "
        "dependency graph with fresh/stale marks instead of executing",
    )
    parser.add_argument(
        "--target",
        action="append",
        metavar="NAME",
        help="build only this target (and its ancestors); repeatable",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="plan only: print what would run vs load from cache",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes per service (default: 1)"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default: $REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (every point recomputes)",
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help="artifact directory (default: out/campaign/<campaign name>)",
    )
    parser.set_defaults(handler=cmd_campaign)
