PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke clean-cache

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Fast end-to-end check of the orchestration layer: parallel sweep, then the
# same sweep again served from the cache.
bench-smoke:
	$(PYTHON) -m repro sweep smoke --param fanout --values 2,4 --workers 2
	$(PYTHON) -m repro sweep smoke --param fanout --values 2,4 --workers 2

clean-cache:
	rm -rf .repro-cache .ci-cache
