"""Unified telemetry: one streaming metrics API for simulator and runtime.

This package is the single observability surface of the repository.  Both
worlds — the discrete-event simulator and the live asyncio runtime — record
through the same :class:`Telemetry` facade with typed instruments
(:class:`Counter`, :class:`Gauge`, :class:`Histogram`, :class:`Timer`)
carrying structured tags (``node=...``, ``topic=...``), and both expose
their mid-run state the same way: :meth:`Telemetry.snapshot` produces an
immutable, JSON-serializable :class:`TelemetrySnapshot`, and a
:class:`SnapshotScheduler` emits periodic snapshots to pluggable
:class:`TelemetrySink` implementations (in-memory ring buffer, JSON-lines,
CSV, Prometheus text exposition).

Design constraints, in order:

1. **O(1)-memory hot paths.** :class:`Histogram` is a bounded streaming
   estimator (fixed geometric buckets plus a small raw-sample buffer); it
   never retains every observation the way the pre-telemetry
   ``sim.metrics.Histogram`` did.
2. **Determinism.** Nothing here draws randomness or reads wall time unless
   explicitly handed a clock; snapshots of a deterministic simulation are
   byte-identical across runs.
3. **Zero new dependencies.** Sinks write plain text formats (JSON lines,
   CSV, Prometheus exposition) with the standard library only.

``repro.sim.metrics`` remains as a thin compatibility shim whose
``MetricsRegistry`` delegates to a :class:`Telemetry` instance, keyed by the
legacy positional ``node`` parameter mapped onto the ``node`` tag.
"""

from .instruments import (
    Counter,
    Gauge,
    Histogram,
    HistogramState,
    HistogramSummary,
    Timer,
    percentile,
)
from .facade import Telemetry
from .snapshot import SnapshotScheduler, TelemetrySnapshot
from .sinks import (
    DEFAULT_SNAPSHOT_PERIOD,
    CsvSink,
    JsonlSink,
    MemorySink,
    PrometheusSink,
    TelemetrySink,
    parse_sink_spec,
    read_snapshots_jsonl,
    render_prometheus,
)

__all__ = [
    "DEFAULT_SNAPSHOT_PERIOD",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "HistogramSummary",
    "Timer",
    "percentile",
    "Telemetry",
    "TelemetrySnapshot",
    "SnapshotScheduler",
    "TelemetrySink",
    "MemorySink",
    "JsonlSink",
    "CsvSink",
    "PrometheusSink",
    "parse_sink_spec",
    "read_snapshots_jsonl",
    "render_prometheus",
]
