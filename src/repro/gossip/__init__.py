"""Gossip-based event dissemination (Figure 4 of the paper and variants)."""

from .buffers import BufferedEvent, EventBuffer, SELECTION_STRATEGIES
from .push import GOSSIP_MESSAGE_KIND, GossipMessage, PushGossipNode
from .pushpull import DigestMessage, PullRequest, PushPullGossipNode
from .system import GossipSystem

__all__ = [
    "EventBuffer",
    "BufferedEvent",
    "SELECTION_STRATEGIES",
    "GossipMessage",
    "PushGossipNode",
    "GOSSIP_MESSAGE_KIND",
    "PushPullGossipNode",
    "DigestMessage",
    "PullRequest",
    "GossipSystem",
]
