"""Deprecation shim: the event-trace helper moved to :mod:`repro.tracing`.

The original :class:`TraceRecord` / :class:`TraceRecorder` (flat timestamped
category records consumed by the failure injectors and golden-trace tests)
now live in :mod:`repro.tracing.legacy`, next to the span-based causal
tracing layer that superseded them.  This module re-exports them unchanged —
the same treatment ``sim/metrics.py`` received when the telemetry package
unified the metrics layer — so existing imports keep working.  New code
should record spans through :class:`repro.tracing.Tracer` instead.
"""

from __future__ import annotations

from ..tracing.legacy import TraceRecord, TraceRecorder

__all__ = ["TraceRecord", "TraceRecorder"]
