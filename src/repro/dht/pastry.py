"""Pastry-style prefix routing (reference [14] of the paper).

The structured baselines (Scribe, SplitStream, DKS-style grouping) need one
thing from Pastry: given a key, route hop by hop towards the live node whose
identifier is numerically closest to it (the key's *root*), resolving at
least one identifier digit per hop.  :class:`PastryRouter` provides exactly
that.

Substitution note (documented in DESIGN.md): the routing tables are built
from the simulator's global membership instead of through Pastry's join
protocol.  The joining handshake is not what the paper's fairness argument is
about — what matters is the *structure* of the resulting routes: O(log n)
hops, interior nodes forwarding traffic for keys (topics) they have no
interest in, and rendezvous nodes concentrating load.  Those properties are
preserved because the routes are computed with the same prefix-resolution
rule Pastry uses.  Routing state is refreshed lazily when nodes fail, which
mirrors Pastry's repair behaviour at the level of detail the experiments
need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .idspace import IdSpace

__all__ = ["PastryRouter", "RouteResult"]


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing a key from a start node."""

    key: int
    path: Tuple[str, ...]
    root: str

    @property
    def hops(self) -> int:
        """Number of overlay hops (edges) traversed."""
        return max(0, len(self.path) - 1)


class PastryRouter:
    """Prefix-routing oracle over a set of named nodes.

    Parameters
    ----------
    node_ids:
        Participating node names (their identifiers are derived by hashing).
    id_space:
        Identifier space parameters.
    leaf_set_size:
        Number of numerically closest neighbours each node keeps on each
        side; the last hops of a route go through the leaf set exactly as in
        Pastry.
    """

    def __init__(
        self,
        node_ids: Sequence[str],
        id_space: Optional[IdSpace] = None,
        leaf_set_size: int = 4,
    ) -> None:
        if not node_ids:
            raise ValueError("the overlay needs at least one node")
        self.space = id_space if id_space is not None else IdSpace()
        self.leaf_set_size = leaf_set_size
        self._id_of: Dict[str, int] = {}
        self._name_of: Dict[int, str] = {}
        for name in node_ids:
            identifier = self.space.hash_name(name)
            # Resolve the (unlikely) collision by linear probing so every
            # node has a distinct identifier.
            while identifier in self._name_of:
                identifier = (identifier + 1) % self.space.size
            self._id_of[name] = identifier
            self._name_of[identifier] = name
        self._alive: Set[str] = set(node_ids)

    # -------------------------------------------------------------- liveness

    def set_alive(self, node_id: str, alive: bool) -> None:
        """Mark a node up or down; dead nodes are skipped by routing."""
        if node_id not in self._id_of:
            raise KeyError(f"unknown node {node_id!r}")
        if alive:
            self._alive.add(node_id)
        else:
            self._alive.discard(node_id)

    def alive_nodes(self) -> List[str]:
        """Names of nodes currently alive, sorted."""
        return sorted(self._alive)

    # -------------------------------------------------------------- identity

    def node_identifier(self, node_id: str) -> int:
        """The numeric identifier assigned to a node."""
        return self._id_of[node_id]

    def key_for(self, name: str) -> int:
        """Hash an arbitrary name (for example a topic) into the id space."""
        return self.space.hash_name(name)

    def root_of(self, key: int) -> str:
        """The live node numerically closest to ``key`` (the rendezvous node)."""
        alive_ids = [self._id_of[name] for name in self._alive]
        if not alive_ids:
            raise RuntimeError("no live nodes in the overlay")
        closest = self.space.closest(key, alive_ids)
        assert closest is not None
        return self._name_of[closest]

    # --------------------------------------------------------------- routing

    def next_hop(self, current: str, key: int) -> Optional[str]:
        """The next node on the route from ``current`` towards ``key``'s root.

        Returns ``None`` when ``current`` already is the root.  The rule is
        Pastry's: prefer a live node whose identifier shares a strictly
        longer prefix with the key; otherwise fall back to a live node that
        is numerically closer to the key than the current one (leaf-set
        style), which guarantees progress and termination.
        """
        current_id = self._id_of[current]
        root = self.root_of(key)
        if current == root:
            return None
        current_prefix = self.space.shared_prefix_length(current_id, key)
        current_distance = self.space.distance(current_id, key)

        best_prefix_candidate: Optional[Tuple[int, int, str]] = None
        best_closer_candidate: Optional[Tuple[int, str]] = None
        for name in self._alive:
            if name == current:
                continue
            identifier = self._id_of[name]
            prefix = self.space.shared_prefix_length(identifier, key)
            distance = self.space.distance(identifier, key)
            if prefix > current_prefix:
                candidate = (-prefix, distance, name)
                if best_prefix_candidate is None or candidate < best_prefix_candidate:
                    best_prefix_candidate = candidate
            if distance < current_distance:
                candidate_closer = (distance, name)
                if best_closer_candidate is None or candidate_closer < best_closer_candidate:
                    best_closer_candidate = candidate_closer
        if best_prefix_candidate is not None:
            return best_prefix_candidate[2]
        if best_closer_candidate is not None:
            return best_closer_candidate[1]
        return None

    def route(self, start: str, key: int, max_hops: Optional[int] = None) -> RouteResult:
        """Full route from ``start`` to the root of ``key``.

        ``max_hops`` defaults to the number of digits plus the leaf-set size,
        which prefix routing can never exceed; exceeding it indicates a bug
        and raises instead of looping forever.
        """
        limit = max_hops if max_hops is not None else self.space.digits + self.leaf_set_size + 2
        path = [start]
        current = start
        for _ in range(limit):
            nxt = self.next_hop(current, key)
            if nxt is None:
                return RouteResult(key=key, path=tuple(path), root=current)
            path.append(nxt)
            current = nxt
        raise RuntimeError(
            f"route from {start} to key {self.space.format(key)} exceeded {limit} hops"
        )

    def route_to_name(self, start: str, name: str) -> RouteResult:
        """Convenience: route towards the root of ``hash(name)``."""
        return self.route(start, self.key_for(name))
