#!/usr/bin/env python
"""Expressive (content-based) dissemination: a stock-tick scenario (§5.2).

Subscribers place content filters such as ``category == "metals" AND
level >= 6`` over a stream of synthetic quotes — there is no topic to group
on, so the only way to be fair is to modulate each node's fanout and gossip
message size against its measured benefit (Figure 3).  The script runs the
classic protocol and the three fair-protocol ablations (fanout lever only,
payload lever only, both) and prints how each lever moves the fairness
needle.

Run with::

    python examples/stock_filters.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.experiments import ExperimentConfig, results_table, run_experiment


def main() -> None:
    base = ExperimentConfig(
        name="stocks",
        system="fair-gossip",
        nodes=80,
        interest_model="content",   # content filters over (category, level)
        topics_per_node=2,
        fairness_policy="expressive",
        publication_rate=6.0,
        duration=25.0,
        drain_time=15.0,
        fanout=4,
        gossip_size=8,
        seed=1234,
    )
    variants = [
        base.with_overrides(system="gossip", name="stocks/classic"),
        base.with_overrides(adapt_fanout=True, adapt_payload=False, name="stocks/fanout-lever"),
        base.with_overrides(adapt_fanout=False, adapt_payload=True, name="stocks/payload-lever"),
        base.with_overrides(adapt_fanout=True, adapt_payload=True, name="stocks/both-levers"),
    ]
    results = [run_experiment(config, keep_system=True) for config in variants]
    print(
        results_table(
            results,
            title="Stock-tick workload — expressive filters, contribution levers ablated",
        ).render()
    )
    print()
    # Show what the adaptive nodes actually chose, for the 'both levers' run.
    both = results[-1].system
    fanouts = [both.node(node_id).current_fanout() for node_id in both.node_ids()]
    payloads = [both.node(node_id).current_gossip_size() for node_id in both.node_ids()]
    print(
        "fair protocol operating points at the end of the run: "
        f"fanout min/mean/max = {min(fanouts)}/{sum(fanouts)/len(fanouts):.1f}/{max(fanouts)}, "
        f"payload min/mean/max = {min(payloads)}/{sum(payloads)/len(payloads):.1f}/{max(payloads)}"
    )


if __name__ == "__main__":
    main()
