"""Partial views: bounded sets of neighbour descriptors.

Gossip protocols do not know the whole system; each process keeps a *partial
view* — a small set of node descriptors with freshness information — and the
peer-sampling service (CYCLON, lpbcast-style exchanges, §4.2 references
[2, 11, 12, 13, 15]) keeps that view fresh and well mixed.  The view is the
only source from which ``SELECTPARTICIPANTS(F)`` of Figure 4 draws gossip
targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["NodeDescriptor", "PartialView"]


@dataclass(frozen=True)
class NodeDescriptor:
    """Descriptor of a remote node as known by some process.

    Attributes
    ----------
    node_id:
        Identifier of the described node.
    age:
        Number of shuffle rounds since the descriptor was created at its
        subject; CYCLON uses the age to retire stale entries, which is what
        removes crashed nodes from views.
    topics:
        Optional snapshot of the subject's subscribed topics, used by the
        interest-aware view bias.
    """

    node_id: str
    age: int = 0
    topics: Tuple[str, ...] = ()

    def aged(self, increment: int = 1) -> "NodeDescriptor":
        """Return a copy with the age increased by ``increment``."""
        return replace(self, age=self.age + increment)

    def refreshed(self) -> "NodeDescriptor":
        """Return a copy with age reset to zero (a fresh sighting)."""
        return replace(self, age=0)


class PartialView:
    """A bounded collection of :class:`NodeDescriptor`, one per node id.

    The view never contains its owner and never holds two descriptors for
    the same node; inserting a duplicate keeps the younger descriptor.
    """

    def __init__(self, owner_id: str, capacity: int = 20) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.owner_id = owner_id
        self.capacity = capacity
        self._entries: Dict[str, NodeDescriptor] = {}

    # ------------------------------------------------------------ mutation

    def add(self, descriptor: NodeDescriptor) -> bool:
        """Insert a descriptor, respecting capacity.

        Returns ``True`` if the view changed.  When full, the oldest entry is
        evicted only if the incoming descriptor is younger than it.
        """
        if descriptor.node_id == self.owner_id:
            return False
        existing = self._entries.get(descriptor.node_id)
        if existing is not None:
            if descriptor.age < existing.age:
                self._entries[descriptor.node_id] = descriptor
                return True
            return False
        if len(self._entries) < self.capacity:
            self._entries[descriptor.node_id] = descriptor
            return True
        oldest = self.oldest()
        if oldest is not None and descriptor.age < oldest.age:
            del self._entries[oldest.node_id]
            self._entries[descriptor.node_id] = descriptor
            return True
        return False

    def add_all(self, descriptors: Iterable[NodeDescriptor]) -> int:
        """Insert several descriptors; returns how many changed the view."""
        return sum(1 for descriptor in descriptors if self.add(descriptor))

    def remove(self, node_id: str) -> bool:
        """Drop the descriptor for ``node_id`` if present."""
        return self._entries.pop(node_id, None) is not None

    def replace_entries(self, descriptors: Iterable[NodeDescriptor]) -> None:
        """Replace the whole content (used by shuffle responses)."""
        self._entries.clear()
        for descriptor in descriptors:
            if descriptor.node_id != self.owner_id and len(self._entries) < self.capacity:
                self._entries[descriptor.node_id] = descriptor

    def age_all(self, increment: int = 1) -> None:
        """Increase the age of every descriptor (one shuffle round passed)."""
        self._entries = {
            node_id: descriptor.aged(increment) for node_id, descriptor in self._entries.items()
        }

    # ------------------------------------------------------------- queries

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def node_ids(self) -> List[str]:
        """Ids of all described nodes, sorted for determinism."""
        return sorted(self._entries)

    def descriptors(self) -> List[NodeDescriptor]:
        """All descriptors, sorted by node id."""
        return [self._entries[node_id] for node_id in sorted(self._entries)]

    def get(self, node_id: str) -> Optional[NodeDescriptor]:
        """Descriptor for ``node_id`` if present."""
        return self._entries.get(node_id)

    def oldest(self) -> Optional[NodeDescriptor]:
        """The descriptor with the highest age (ties broken by node id)."""
        if not self._entries:
            return None
        return max(self.descriptors(), key=lambda descriptor: (descriptor.age, descriptor.node_id))

    def sample(self, rng: random.Random, count: int, exclude: Iterable[str] = ()) -> List[str]:
        """Uniformly sample up to ``count`` distinct node ids from the view."""
        excluded = set(exclude) | {self.owner_id}
        candidates = [node_id for node_id in self.node_ids() if node_id not in excluded]
        if count >= len(candidates):
            return candidates
        return rng.sample(candidates, count)

    def sample_descriptors(self, rng: random.Random, count: int) -> List[NodeDescriptor]:
        """Uniformly sample up to ``count`` descriptors."""
        descriptors = self.descriptors()
        if count >= len(descriptors):
            return descriptors
        return rng.sample(descriptors, count)
