"""Tests for the gossip event buffer and its selection strategies."""

from __future__ import annotations

import random

import pytest

from repro.gossip import EventBuffer, SELECTION_STRATEGIES
from repro.pubsub import Event


def make_event(index: int, size: int = 1) -> Event:
    return Event(event_id=f"e{index}", publisher="p", attributes={"topic": "t"}, size=size)


class TestEventBuffer:
    def test_add_and_duplicate_rejection(self):
        buffer = EventBuffer(capacity=10)
        assert buffer.add(make_event(1), received_at=0.0)
        assert not buffer.add(make_event(1), received_at=1.0)
        assert len(buffer) == 1
        assert "e1" in buffer
        assert buffer.get("e1").event_id == "e1"
        assert buffer.get("missing") is None

    def test_capacity_eviction_prefers_oldest(self):
        buffer = EventBuffer(capacity=2, max_rounds=50)
        buffer.add(make_event(1), received_at=0.0)
        buffer.start_round()
        buffer.add(make_event(2), received_at=1.0)
        buffer.add(make_event(3), received_at=1.0)
        assert len(buffer) == 2
        assert "e1" not in buffer
        assert buffer.evictions == 1

    def test_round_expiration(self):
        buffer = EventBuffer(capacity=10, max_rounds=2)
        buffer.add(make_event(1), received_at=0.0)
        assert buffer.start_round() == 0
        assert buffer.start_round() == 0
        assert buffer.start_round() == 1
        assert len(buffer) == 0
        assert buffer.expirations == 1

    def test_select_random_is_bounded_and_unique(self):
        buffer = EventBuffer(capacity=20)
        for index in range(10):
            buffer.add(make_event(index), received_at=0.0)
        rng = random.Random(1)
        selection = buffer.select(4, rng, strategy="random")
        assert len(selection) == 4
        assert len({event.event_id for event in selection}) == 4
        assert buffer.select(100, rng, strategy="random")  # returns everything

    def test_select_newest_prefers_fresh_events(self):
        buffer = EventBuffer(capacity=20)
        buffer.add(make_event(1), received_at=0.0)
        buffer.start_round()
        buffer.add(make_event(2), received_at=1.0)
        rng = random.Random(1)
        assert [event.event_id for event in buffer.select(1, rng, strategy="newest")] == ["e2"]
        assert [event.event_id for event in buffer.select(1, rng, strategy="oldest")] == ["e1"]
        assert [event.event_id for event in buffer.select(1, rng, strategy="stale-first")] == ["e1"]

    def test_select_least_forwarded(self):
        buffer = EventBuffer(capacity=20)
        buffer.add(make_event(1), received_at=0.0)
        buffer.add(make_event(2), received_at=0.0)
        buffer.mark_forwarded(["e1"])
        rng = random.Random(1)
        assert [event.event_id for event in buffer.select(1, rng, strategy="least-forwarded")] == ["e2"]

    def test_unknown_strategy_rejected(self):
        buffer = EventBuffer()
        buffer.add(make_event(1), received_at=0.0)
        with pytest.raises(ValueError):
            buffer.select(1, random.Random(1), strategy="bogus")

    def test_select_zero_or_empty_returns_nothing(self):
        buffer = EventBuffer()
        assert buffer.select(3, random.Random(1)) == []
        buffer.add(make_event(1), received_at=0.0)
        assert buffer.select(0, random.Random(1)) == []

    def test_remove(self):
        buffer = EventBuffer()
        buffer.add(make_event(1), received_at=0.0)
        assert buffer.remove("e1")
        assert not buffer.remove("e1")

    def test_event_ids_sorted(self):
        buffer = EventBuffer()
        for index in (3, 1, 2):
            buffer.add(make_event(index), received_at=0.0)
        assert buffer.event_ids() == ["e1", "e2", "e3"]
        assert [event.event_id for event in buffer.events()] == ["e1", "e2", "e3"]

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            EventBuffer(capacity=0)
        with pytest.raises(ValueError):
            EventBuffer(max_rounds=0)

    def test_all_documented_strategies_work(self):
        buffer = EventBuffer()
        for index in range(5):
            buffer.add(make_event(index), received_at=0.0)
        rng = random.Random(2)
        for strategy in SELECTION_STRATEGIES:
            assert len(buffer.select(2, rng, strategy=strategy)) == 2
