"""Declarative experiment configuration.

Every benchmark and example describes its scenario with an
:class:`ExperimentConfig`: how many nodes, which dissemination system, which
interest and publication workload, how long to run, what to inject.  The
runner (:mod:`repro.experiments.runner`) turns a config into a finished
:class:`~repro.experiments.runner.ExperimentResult`, so the per-figure
benchmark files stay short and the parameters stay visible in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from ..faults.plan import jsonify as _deep_jsonify, tuplify as _deep_tuplify

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one simulated experiment.

    Attributes
    ----------
    name:
        Identifier used in tables (e.g. ``"fig1/fair-gossip"``).
    system:
        Which dissemination system to build; one of the names accepted by
        :func:`repro.experiments.scenarios.build_system` (``"gossip"``,
        ``"fair-gossip"``, ``"pushpull-gossip"``, ``"scribe"``,
        ``"splitstream"``, ``"dks"``, ``"brokers"``, ``"dam"``).
    nodes:
        Number of participants.
    seed:
        Master seed; two runs with equal configs produce identical results.
    topics / topic_exponent:
        Topic count and Zipf popularity exponent (0 = uniform).
    interest_model:
        ``"uniform"``, ``"zipf"``, ``"community"``, or ``"content"``.
    topics_per_node / max_topics_per_node:
        Interest sizing (meaning depends on the interest model).
    publication_rate:
        Events per time unit, published by ``publisher_fraction`` of nodes.
    duration:
        Length of the publication phase in time units; the run continues for
        ``drain_time`` more units so in-flight events settle.
    fanout / gossip_size / round_period:
        Gossip parameters (Figure 4's ``F``, ``N``, and the round length).
    alpha:
        Store fraction of the lazy-push system (the ALPHA of Algorithm
        3.10): the share of nodes that retain event payloads for pull
        recovery.  Ignored by every other system.
    membership:
        ``"cyclon"``, ``"full"``, or ``"lpbcast"`` (gossip systems only).
    loss_rate:
        Bernoulli message loss probability.
    churn_down_probability / churn_up_probability:
        Per-round node churn probabilities (0 disables node churn).
    subscription_churn_rate:
        Subscribe/unsubscribe operations per time unit (0 disables).
    fault_churn_start / fault_churn_stop / fault_churn_period:
        Window and tick period of the node-churn fault entry (0 period
        means one gossip round; 0 stop means run end).
    fault_partition_at / fault_partition_heal_after / fault_partition_fraction:
        One transient network partition (``heal_after`` of 0 disables it).
    fault_perturb_start / fault_perturb_stop / fault_perturb_latency /
    fault_perturb_loss:
        Link-degradation window: additive delivery latency and extra loss.
    fault_plan:
        Free-form :class:`~repro.faults.plan.FaultSpec` entries (tuples of
        ``(field, value)`` pairs) appended to the compiled fault plan —
        what ``--fault plan.json`` feeds.  All ``fault_*`` fields are
        omitted from :meth:`to_dict` at their defaults so fault-free
        configs keep their historical cache keys.
    topology_domains / topology_bridges_per_domain / topology_bridge_policy /
    topology_cross_latency / topology_cross_loss / topology_assignment /
    topology_geo:
        Multi-domain topology (see :mod:`repro.topology`): domain count or
        explicit assignment, bridge federation policy, and the geo
        latency/loss matrix.  Like ``fault_*``, all topology fields are
        omitted from :meth:`to_dict` at their defaults so topology-free
        configs keep their historical cache keys.
    broker_count / stripes / delegates_per_root:
        Baseline-specific knobs.
    fairness_policy:
        ``"expressive"`` (Figure 3 weights) or ``"topic"`` (Figure 2 weights).
    adapt_fanout / adapt_payload:
        Fair-gossip lever switches (for ablations).
    selfish_fraction:
        Fraction of nodes replaced by the selfish attacker model.
    extra:
        Free-form additional parameters picked up by specific scenarios.
    """

    name: str = "experiment"
    system: str = "gossip"
    nodes: int = 128
    seed: int = 1
    topics: int = 16
    topic_exponent: float = 1.0
    interest_model: str = "zipf"
    topics_per_node: int = 2
    max_topics_per_node: int = 8
    publication_rate: float = 4.0
    publisher_fraction: float = 0.25
    duration: float = 40.0
    drain_time: float = 15.0
    fanout: int = 3
    gossip_size: int = 8
    round_period: float = 1.0
    alpha: float = 0.5
    membership: str = "cyclon"
    loss_rate: float = 0.0
    churn_down_probability: float = 0.0
    churn_up_probability: float = 0.5
    subscription_churn_rate: float = 0.0
    broker_count: int = 2
    stripes: int = 4
    delegates_per_root: int = 2
    fairness_policy: str = "expressive"
    adapt_fanout: bool = True
    adapt_payload: bool = True
    min_fanout: int = 1
    max_fanout: int = 12
    min_payload: int = 1
    max_payload: int = 32
    selfish_fraction: float = 0.0
    event_size: int = 1
    fault_churn_start: float = 0.0
    fault_churn_stop: float = 0.0
    fault_churn_period: float = 0.0
    fault_partition_at: float = 0.0
    fault_partition_heal_after: float = 0.0
    fault_partition_fraction: float = 0.5
    fault_perturb_start: float = 0.0
    fault_perturb_stop: float = 0.0
    fault_perturb_latency: float = 0.0
    fault_perturb_loss: float = 0.0
    fault_plan: Tuple[Tuple[Tuple[str, object], ...], ...] = ()
    topology_domains: int = 0
    topology_bridges_per_domain: int = 1
    topology_bridge_policy: str = "sha256"
    topology_cross_latency: float = 0.0
    topology_cross_loss: float = 0.0
    topology_assignment: Tuple[Tuple[str, str], ...] = ()
    topology_geo: Tuple[Tuple[str, str, float, float], ...] = ()
    extra: Tuple[Tuple[str, object], ...] = ()

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Return a copy with some fields replaced (sweep helper)."""
        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; inverse of :meth:`from_dict`.

        The ``extra`` tuple-of-pairs is emitted as a list of ``[key, value]``
        pairs (JSON has no tuples).  The canonical JSON encoding of this
        dictionary is what the result cache hashes, so the mapping must stay
        deterministic: plain field values only, no derived data.

        ``fault_*`` fields at their defaults are omitted entirely: a
        fault-free config therefore encodes byte-for-byte as it did before
        fault injection existed, which is what keeps historical cache keys
        (and cached artifacts) valid.
        """
        payload: Dict[str, object] = {}
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            if config_field.name == "extra":
                value = [[key, entry] for key, entry in value]
            elif config_field.name in ("fault_plan", "topology_assignment", "topology_geo"):
                if not value:
                    continue
                value = _deep_jsonify(value)
            elif (
                config_field.name.startswith(("fault_", "topology_"))
                or config_field.name == "alpha"
            ):
                # ``alpha`` (lazy-push store fraction) follows the fault_*
                # rule: omitted at its default so configs that never touch
                # it keep their historical cache keys.
                if value == config_field.default:
                    continue
            payload[config_field.name] = value
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise ``ValueError`` so stale cache artifacts written by
        an incompatible schema fail loudly instead of being misread.
        """
        known = {config_field.name for config_field in fields(ExperimentConfig)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown config fields {sorted(unknown)}")
        values = dict(payload)
        if "extra" in values:
            values["extra"] = tuple((key, entry) for key, entry in values["extra"])
        for structured in ("fault_plan", "topology_assignment", "topology_geo"):
            if structured in values:
                values[structured] = _deep_tuplify(values[structured])
        return ExperimentConfig(**values)

    def extra_dict(self) -> Dict[str, object]:
        """The free-form extras as a dictionary."""
        return dict(self.extra)

    def spec(self):
        """This config decomposed into a nested :class:`StackSpec`.

        The flat config remains the canonical cache identity;
        ``config.spec().to_config() == config`` holds for every config (the
        mapping is a field-for-field bijection, see
        :mod:`repro.registry.specs`).
        """
        from ..registry.specs import StackSpec

        return StackSpec.from_config(self)

    @property
    def total_time(self) -> float:
        """Publication phase plus drain time."""
        return self.duration + self.drain_time

    def node_ids(self) -> Tuple[str, ...]:
        """The participant names used by every scenario."""
        return tuple(f"node-{index:03d}" for index in range(self.nodes))

    def publisher_ids(self) -> Tuple[str, ...]:
        """The subset of nodes allowed to publish."""
        count = max(1, int(self.nodes * self.publisher_fraction))
        return self.node_ids()[:count]
