"""Parameter sweeps: run the same experiment across a grid of values.

The paper's open questions are mostly of the form "how does X behave as Y
varies" (reliability vs fanout, fairness vs interest skew, convergence vs
churn).  This module has two halves:

* **grid expansion** — :func:`sweep_configs`, :func:`compare_configs`, and
  :func:`grid_configs` turn a base config plus a parameter grid into the
  list of concrete :class:`ExperimentConfig` points, with optional per-point
  seed derivation (:func:`repro.sim.rng.derive_seed`) so grid points are
  statistically decorrelated yet fully deterministic;
* **serial execution** — :func:`sweep` and :func:`compare` run those points
  in-process, which is what small tests and examples want.

For parallel execution and result caching over the same grids, use
:class:`repro.experiments.executor.ParallelSweepExecutor`, which consumes
the expansion helpers unchanged — so parallel runs execute exactly the same
configs (and therefore produce bit-identical results) as serial ones.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..analysis.tables import Table
from ..sim.rng import derive_seed
from .config import ExperimentConfig
from .runner import ExperimentResult, run_experiment

__all__ = [
    "sweep",
    "compare",
    "results_table",
    "sweep_configs",
    "compare_configs",
    "grid_configs",
]


def sweep_configs(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence,
    rename: Optional[Callable[[object], str]] = None,
    reseed: bool = False,
) -> List[ExperimentConfig]:
    """Expand one parameter axis into concrete configs.

    The experiment name is suffixed with the value so rows stay identifiable
    in tables; ``rename`` customises that suffix.  With ``reseed`` each point
    gets ``seed=derive_seed(base.seed, point_name)`` instead of sharing the
    base seed, decorrelating the points without losing determinism.  A sweep
    *of* ``seed`` itself ignores ``reseed`` — the swept values are the seeds.
    """
    configs: List[ExperimentConfig] = []
    for value in values:
        label = rename(value) if rename is not None else str(value)
        name = f"{base.name}/{parameter}={label}"
        overrides = {parameter: value, "name": name}
        if reseed and parameter != "seed":
            overrides["seed"] = derive_seed(base.seed, name)
        configs.append(base.with_overrides(**overrides))
    return configs


def compare_configs(base: ExperimentConfig, systems: Sequence[str]) -> List[ExperimentConfig]:
    """Expand a cross-system comparison (the Figure 1 shape) into configs."""
    return [
        base.with_overrides(system=system, name=f"{base.name}/{system}")
        for system in systems
    ]


def grid_configs(
    base: ExperimentConfig,
    parameters: Mapping[str, Sequence],
    reseed: bool = False,
) -> List[ExperimentConfig]:
    """Expand a multi-axis cartesian grid into configs.

    ``parameters`` maps field names to value lists; points are emitted in
    row-major order of the mapping's iteration order, and each point's name
    lists every coordinate (``base/f=2,loss_rate=0.1``).  ``reseed`` is
    ignored when ``seed`` is itself a grid axis.
    """
    reseed = reseed and "seed" not in parameters
    names = list(parameters)
    configs: List[ExperimentConfig] = [base]
    for parameter in names:
        expanded: List[ExperimentConfig] = []
        for config in configs:
            for value in parameters[parameter]:
                expanded.append(config.with_overrides(**{parameter: value}))
        configs = expanded
    finished: List[ExperimentConfig] = []
    for config in configs:
        label = ",".join(f"{parameter}={getattr(config, parameter)}" for parameter in names)
        name = f"{base.name}/{label}"
        overrides: Dict[str, object] = {"name": name}
        if reseed:
            overrides["seed"] = derive_seed(base.seed, name)
        finished.append(config.with_overrides(**overrides))
    return finished


def sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence,
    rename: Optional[Callable[[object], str]] = None,
    keep_system: bool = False,
) -> List[ExperimentResult]:
    """Run ``base`` once per value of ``parameter``, serially in-process."""
    return [
        run_experiment(config, keep_system=keep_system)
        for config in sweep_configs(base, parameter, values, rename=rename)
    ]


def compare(
    base: ExperimentConfig,
    systems: Sequence[str],
    keep_system: bool = False,
) -> List[ExperimentResult]:
    """Run the same scenario on several dissemination systems."""
    return [
        run_experiment(config, keep_system=keep_system)
        for config in compare_configs(base, systems)
    ]


def results_table(results: Sequence[ExperimentResult], title: str = "") -> Table:
    """Tabulate the headline numbers of several results."""
    table = Table(
        [
            "name",
            "system",
            "nodes",
            "delivery_ratio",
            "mean_rounds",
            "ratio_jain",
            "ratio_spread",
            "wasted_share",
            "contribution_jain",
            "total_messages",
        ],
        title=title,
    )
    for result in results:
        report = result.fairness.report
        table.add_row(
            name=result.config.name,
            system=result.config.system,
            nodes=result.config.nodes,
            delivery_ratio=result.reliability.delivery_ratio,
            mean_rounds=result.reliability.mean_rounds,
            ratio_jain=report.ratio_jain,
            ratio_spread=report.ratio_spread,
            wasted_share=report.wasted_share,
            contribution_jain=report.contribution_jain,
            total_messages=result.total_messages,
        )
    return table
