"""Unified fault injection for both execution worlds.

One declarative :class:`FaultPlan` (composable :class:`FaultSpec` entries —
crash/recover/leave schedules, continuous churn, transient partitions,
link-level latency/loss perturbation) drives instability experiments on the
discrete-event simulator *and* the live asyncio runtime: the
:class:`FaultController` actuates the plan against whichever
scheduler/network/registry triple it is handed, and every stochastic entry
draws from a named :class:`~repro.sim.rng.RngRegistry` stream so simulator
runs stay byte-identical per seed.

Typical wiring::

    from repro.faults import FaultController, FaultPlan

    plan = FaultPlan.from_file("plan.json").validate(node_ids=ids)
    controller = FaultController(simulator, network, system.registry, plan)
    controller.start()

The imperative injectors (:class:`CrashSchedule`, :class:`ChurnInjector`,
:class:`PartitionInjector`) remain available for hand-wired experiments;
``repro.sim.failure`` is a compatibility shim over this package.
"""

from .controller import FaultController
from .injectors import ChurnInjector, CrashEvent, CrashSchedule, PartitionInjector
from .plan import FAULT_KINDS, PLAN_SCHEMA, FaultPlan, FaultPlanError, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "PLAN_SCHEMA",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "FaultController",
    "CrashEvent",
    "CrashSchedule",
    "ChurnInjector",
    "PartitionInjector",
]
