"""Post-run analysis: fairness summaries, reliability/latency, text tables."""

from .fairness_report import (
    NodeFairnessRow,
    SystemFairnessSummary,
    compare_systems,
    fairness_table_from_snapshot,
    summarise_fairness,
)
from .reliability import (
    EventReliability,
    ReliabilityReport,
    latency_summary_from_snapshot,
    measure_reliability,
)
from .tables import Table, format_mapping, format_table

__all__ = [
    "NodeFairnessRow",
    "SystemFairnessSummary",
    "summarise_fairness",
    "fairness_table_from_snapshot",
    "compare_systems",
    "EventReliability",
    "ReliabilityReport",
    "measure_reliability",
    "latency_summary_from_snapshot",
    "Table",
    "format_table",
    "format_mapping",
]
