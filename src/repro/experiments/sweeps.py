"""Parameter sweeps: run the same experiment across a grid of values.

The paper's open questions are mostly of the form "how does X behave as Y
varies" (reliability vs fanout, fairness vs interest skew, convergence vs
churn).  :func:`sweep` runs one experiment per parameter value and collects
the summary rows; :func:`compare` runs the same config across several
systems, which is the shape of the Figure 1 comparison.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..analysis.tables import Table
from .config import ExperimentConfig
from .runner import ExperimentResult, run_experiment

__all__ = ["sweep", "compare", "results_table"]


def sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence,
    rename: Optional[Callable[[object], str]] = None,
    keep_system: bool = False,
) -> List[ExperimentResult]:
    """Run ``base`` once per value of ``parameter``.

    The experiment name is suffixed with the value so rows stay identifiable
    in tables; ``rename`` customises that suffix.
    """
    results: List[ExperimentResult] = []
    for value in values:
        label = rename(value) if rename is not None else str(value)
        config = base.with_overrides(**{parameter: value, "name": f"{base.name}/{parameter}={label}"})
        results.append(run_experiment(config, keep_system=keep_system))
    return results


def compare(
    base: ExperimentConfig,
    systems: Sequence[str],
    keep_system: bool = False,
) -> List[ExperimentResult]:
    """Run the same scenario on several dissemination systems."""
    results: List[ExperimentResult] = []
    for system in systems:
        config = base.with_overrides(system=system, name=f"{base.name}/{system}")
        results.append(run_experiment(config, keep_system=keep_system))
    return results


def results_table(results: Sequence[ExperimentResult], title: str = "") -> Table:
    """Tabulate the headline numbers of several results."""
    table = Table(
        [
            "name",
            "system",
            "nodes",
            "delivery_ratio",
            "mean_rounds",
            "ratio_jain",
            "ratio_spread",
            "wasted_share",
            "contribution_jain",
            "total_messages",
        ],
        title=title,
    )
    for result in results:
        report = result.fairness.report
        table.add_row(
            name=result.config.name,
            system=result.config.system,
            nodes=result.config.nodes,
            delivery_ratio=result.reliability.delivery_ratio,
            mean_rounds=result.reliability.mean_rounds,
            ratio_jain=report.ratio_jain,
            ratio_spread=report.ratio_spread,
            wasted_share=report.wasted_share,
            contribution_jain=report.contribution_jain,
            total_messages=result.total_messages,
        )
    return table
