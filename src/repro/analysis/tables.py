"""Plain-text table rendering for benchmark and example output.

The benchmarks print the same kind of rows the paper's figures would carry
(per-protocol fairness indices, per-parameter reliability curves).  No
plotting library is assumed; tables render as aligned monospace text which
`pytest -s` and the example scripts write to stdout and EXPERIMENTS.md
quotes verbatim.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_mapping", "Table"]

Cell = Union[str, int, float]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table.

    Column widths adapt to the longest cell; floats are formatted with the
    given precision.  Returns the table as a single string (no trailing
    newline) so callers can ``print`` or log it.
    """
    rendered_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, Cell], precision: int = 3, title: Optional[str] = None) -> str:
    """Render a flat ``name -> value`` mapping as a two-column table."""
    rows = [(key, mapping[key]) for key in mapping]
    return format_table(["metric", "value"], rows, precision=precision, title=title)


class Table:
    """Incrementally built table with named columns.

    Benchmarks create one :class:`Table`, add a row per configuration, and
    print it at the end; the row dictionaries are also returned to
    pytest-benchmark's ``extra_info`` for machine-readable capture.
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: List[Dict[str, Cell]] = []

    def add_row(self, **values: Cell) -> Dict[str, Cell]:
        """Add a row; missing columns render as empty strings."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; declared {self.columns}")
        self.rows.append(dict(values))
        return self.rows[-1]

    def render(self, precision: int = 3) -> str:
        """Render the accumulated rows."""
        materialised = [
            [row.get(column, "") for column in self.columns] for row in self.rows
        ]
        return format_table(self.columns, materialised, precision=precision, title=self.title)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; inverse of :meth:`from_dict`.

        Used by the CLI's ``--json`` artifact output and by the result cache,
        so a table can be re-rendered without re-running the experiments.
        """
        return {
            "columns": list(self.columns),
            "title": self.title,
            "rows": [dict(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Table":
        """Rebuild a table from :meth:`to_dict` output."""
        table = cls(payload["columns"], title=payload.get("title", ""))
        for row in payload.get("rows", []):
            table.add_row(**row)
        return table

    def __str__(self) -> str:
        return self.render()
