"""Tests for the network model and the process abstraction."""

from __future__ import annotations

import pytest

from repro.sim import (
    BernoulliLoss,
    ConstantLatency,
    LogNormalLatency,
    Message,
    Network,
    NoLoss,
    Process,
    ProcessRegistry,
    Simulator,
    UniformLatency,
)


class Recorder(Process):
    """Minimal process that records every message it receives."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []
        self.timer_fires = 0

    def on_message(self, message: Message) -> None:
        self.received.append(message)

    def on_timer(self, name: str) -> None:
        self.timer_fires += 1


def make_pair(simulator, network):
    a = Recorder("a", simulator, network)
    b = Recorder("b", simulator, network)
    a.start()
    b.start()
    return a, b


class TestNetwork:
    def test_message_is_delivered_after_latency(self, simulator):
        network = Network(simulator, latency_model=ConstantLatency(0.5))
        a, b = make_pair(simulator, network)
        a.send("b", "ping", payload={"n": 1})
        simulator.run()
        assert len(b.received) == 1
        assert b.received[0].payload == {"n": 1}
        assert simulator.now == pytest.approx(0.5)

    def test_send_to_unregistered_node_is_dropped(self, simulator, network):
        a = Recorder("a", simulator, network)
        a.start()
        a.send("ghost", "ping")
        simulator.run()
        assert network.stats.dropped_dead == 1
        assert network.stats.delivered == 0

    def test_dead_recipient_drops_message(self, simulator, network):
        a, b = make_pair(simulator, network)
        b.crash()
        a.send("b", "ping")
        simulator.run()
        assert b.received == []
        assert network.stats.delivered == 0

    def test_loss_model_drops_fraction(self, simulator):
        network = Network(simulator, loss_model=BernoulliLoss(1.0))
        a, b = make_pair(simulator, network)
        for _ in range(10):
            a.send("b", "ping")
        simulator.run()
        assert network.stats.lost == 10
        assert b.received == []

    def test_no_loss_delivers_everything(self, simulator):
        network = Network(simulator, loss_model=NoLoss())
        a, b = make_pair(simulator, network)
        for _ in range(10):
            a.send("b", "ping")
        simulator.run()
        assert len(b.received) == 10

    def test_partition_blocks_cross_group_traffic(self, simulator, network):
        a, b = make_pair(simulator, network)
        network.set_partition({"a": 0, "b": 1})
        a.send("b", "ping")
        simulator.run()
        assert b.received == []
        assert network.stats.dropped_partition == 1
        network.clear_partition()
        a.send("b", "ping")
        simulator.run()
        assert len(b.received) == 1

    def test_broadcast_sends_one_message_per_recipient(self, simulator, network):
        a = Recorder("a", simulator, network)
        b = Recorder("b", simulator, network)
        c = Recorder("c", simulator, network)
        for process in (a, b, c):
            process.start()
        network.broadcast("a", ["b", "c"], "hello", payload=1)
        simulator.run()
        assert len(b.received) == 1 and len(c.received) == 1
        assert network.stats.sent == 2

    def test_stats_track_kinds_and_bytes(self, simulator, network):
        a, b = make_pair(simulator, network)
        a.send("b", "gossip", size=5)
        a.send("b", "gossip", size=3)
        a.send("b", "control", size=1)
        simulator.run()
        assert network.stats.sent_by_kind["gossip"] == 2
        assert network.stats.sent_by_kind["control"] == 1
        assert network.stats.bytes_sent == 9

    def test_delivery_hook_invoked(self, simulator, network):
        seen = []
        network.add_delivery_hook(lambda message, at: seen.append((message.kind, at)))
        a, b = make_pair(simulator, network)
        a.send("b", "ping")
        simulator.run()
        assert seen and seen[0][0] == "ping"

    def test_latency_models_produce_values_in_range(self, simulator):
        rng = simulator.rng.stream("latency-test")
        uniform = UniformLatency(0.1, 0.2)
        lognormal = LogNormalLatency(median=0.1, sigma=0.3, cap=1.0)
        for _ in range(100):
            assert 0.1 <= uniform.sample(rng, "a", "b") <= 0.2
            assert 0.0 < lognormal.sample(rng, "a", "b") <= 1.0

    def test_latency_model_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)

    def test_set_alive_unknown_node_raises(self, network):
        with pytest.raises(KeyError):
            network.set_alive("nobody", True)


class TestProcess:
    def test_start_is_idempotent(self, simulator, network):
        process = Recorder("a", simulator, network)
        process.start()
        process.start()
        assert process.alive

    def test_crash_stops_timers_and_reception(self, simulator, network):
        a, b = make_pair(simulator, network)
        b.add_timer("tick", 1.0)
        simulator.run(until=2.0)
        assert b.timer_fires == 2
        b.crash()
        a.send("b", "ping")
        simulator.run(until=6.0)
        assert b.timer_fires == 2
        assert b.received == []

    def test_recover_resumes_reception(self, simulator, network):
        a, b = make_pair(simulator, network)
        b.crash()
        b.recover()
        a.send("b", "ping")
        simulator.run()
        assert len(b.received) == 1

    def test_crashed_process_cannot_send(self, simulator, network):
        a, b = make_pair(simulator, network)
        a.crash()
        assert a.send("b", "ping") is None
        simulator.run()
        assert b.received == []

    def test_leave_unregisters_from_network(self, simulator, network):
        a, b = make_pair(simulator, network)
        b.leave()
        assert "b" not in network.known_nodes()
        a.send("b", "ping")
        simulator.run()
        assert network.stats.dropped_dead == 1

    def test_timer_replacement_stops_previous(self, simulator, network):
        process = Recorder("a", simulator, network)
        process.start()
        process.add_timer("tick", 1.0)
        process.add_timer("tick", 10.0)
        simulator.run(until=5.0)
        assert process.timer_fires == 0

    def test_stop_timer(self, simulator, network):
        process = Recorder("a", simulator, network)
        process.start()
        process.add_timer("tick", 1.0)
        simulator.run(until=2.0)
        process.stop_timer("tick")
        simulator.run(until=10.0)
        assert process.timer_fires == 2
        assert process.get_timer("tick") is None

    def test_hooks_called_on_lifecycle(self, simulator, network):
        calls = []

        class Hooked(Process):
            def on_start(self):
                calls.append("start")

            def on_crash(self):
                calls.append("crash")

            def on_recover(self):
                calls.append("recover")

            def on_leave(self):
                calls.append("leave")

        process = Hooked("h", simulator, network)
        process.start()
        process.crash()
        process.recover()
        process.leave()
        assert calls == ["start", "crash", "recover", "leave", "crash"]


class TestProcessRegistry:
    def test_add_and_lookup(self, simulator, network):
        registry = ProcessRegistry()
        process = Recorder("a", simulator, network)
        registry.add(process)
        assert "a" in registry
        assert registry.get("a") is process
        assert len(registry) == 1

    def test_duplicate_rejected(self, simulator, network):
        registry = ProcessRegistry()
        registry.add(Recorder("a", simulator, network))
        with pytest.raises(ValueError):
            registry.add(Recorder("a", simulator, Network(simulator)))

    def test_alive_filtering(self, simulator, network):
        registry = ProcessRegistry()
        a = Recorder("a", simulator, network)
        b = Recorder("b", simulator, network)
        registry.add(a)
        registry.add(b)
        a.start()
        assert registry.alive_ids() == ["a"]
        assert [process.node_id for process in registry.alive()] == ["a"]

    def test_remove(self, simulator, network):
        registry = ProcessRegistry()
        registry.add(Recorder("a", simulator, network))
        registry.remove("a")
        assert "a" not in registry
        assert registry.ids() == []
