"""Command-line experiment orchestration: ``python -m repro ...``.

Subcommands
-----------
``run``            run one named scenario (with optional field overrides)
``sweep``          run a scenario across one parameter axis
``compare``        run a scenario across several dissemination systems
``list-scenarios`` show the named-scenario registry
``describe``       show a scenario's resolved spec or a component's schema
``report``         render fairness/reliability/latency tables from artifacts
``trace``          reconstruct per-event infection trees from a --trace stream
``campaign``       run a declarative experiment campaign incrementally
                   (``campaign status SPEC.json`` shows fresh/stale marks)
``serve``          run a *live* cluster on a real transport (asyncio runtime)
``loadgen``        drive a live cluster at a target events/sec

``run`` additionally accepts ``--telemetry jsonl:out/metrics.jsonl`` (and
friends; repeatable) to stream periodic telemetry snapshots during the run;
``report`` then renders tables from that snapshot stream, from any
``--json`` result artifact, or from a cached result — no re-run needed.

The first four orchestrate deterministic simulator experiments; ``serve``
and ``loadgen`` run the same protocol stack on the live runtime
(:mod:`repro.runtime.cli`) where time is wall-clock and transports are real.

Every experiment-running subcommand shares the same orchestration options:
``--workers`` fans uncached grid points out over worker processes,
``--cache-dir``/``--no-cache`` control the content-addressed result cache,
``--set key=value`` overrides any config field — by dotted spec path into
the nested component specs (``system.fanout=5``, ``membership.kind=lpbcast``)
or by legacy flat name (``fanout=5``) — and ``--json`` writes the full
result artifacts for downstream analysis.
Because experiments are deterministic, ``--workers N`` produces
bit-identical artifacts for every ``N``, and a repeated invocation is served
entirely from the cache (reported in the trailing status line).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from ..analysis.tables import Table
from ..registry import (
    PATH_TO_FLAT,
    RegistryError,
    all_registries,
    parse_scalar,
    parse_spec_overrides,
    resolve_spec_path,
    workload_kind,
)
from ..registry.base import suggest
from ..runtime.cli import add_runtime_subcommands
from .cache import ARTIFACT_SCHEMA, DEFAULT_CACHE_DIR, ResultCache
from .config import ExperimentConfig
from .executor import ParallelSweepExecutor
from .runner import ExperimentResult, run_experiment
from .scenarios import SYSTEM_NAMES, get_scenario, iter_scenarios, scenario_names, system_names
from .sweeps import results_table

__all__ = ["main", "build_parser"]

def _resolve_config(args: argparse.Namespace) -> ExperimentConfig:
    """Scenario plus common flags plus ``--set`` overrides, in that order.

    ``--set`` keys are dotted spec paths (``system.fanout``) or legacy flat
    field names (``fanout``); they are applied through the nested
    :class:`~repro.registry.specs.StackSpec` and converted back, which never
    changes the cache identity of an untouched field (the flat/nested
    mapping is a bijection).
    """
    try:
        config = get_scenario(args.scenario).config
    except KeyError as error:
        # str(KeyError) wraps the message in quotes; unwrap for clean CLI output.
        raise SystemExit(error.args[0])
    overrides: Dict[str, object] = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.nodes is not None:
        overrides["nodes"] = args.nodes
    if args.system is not None:
        overrides["system"] = args.system
    if overrides:
        config = config.with_overrides(**overrides)
    if args.set:
        try:
            config = config.spec().with_values(parse_spec_overrides(args.set)).to_config()
        except RegistryError as error:
            raise SystemExit(str(error))
    _validate_fault_config(config)
    _validate_topology_config(config)
    return config


def _validate_topology_config(config: ExperimentConfig) -> None:
    """Fail a bad topology (from --set or a merged --topology file) as a
    clean CLI error before any experiment builds or workers spawn.

    Compiling the domain map here catches everything the spec can get
    wrong — bad domain counts, unknown bridge policies, assignments naming
    nodes outside the run — with the same did-you-mean messages
    ``build_stack`` would raise mid-run.
    """
    from ..topology import TopologyError, compile_domain_map

    topology = config.spec().topology
    if not topology.enabled:
        return
    try:
        compile_domain_map(topology, config.node_ids())
    except TopologyError as error:
        raise SystemExit(str(error))


def _validate_fault_config(config: ExperimentConfig) -> None:
    """Fail a bad fault plan (from --set or merged --fault entries) as a
    clean CLI error before any experiment builds or workers spawn.

    The node universe is deliberately NOT pinned here: plans may target a
    system's infra nodes (``broker-0``, rendezvous nodes), which only exist
    once the system is built — ``run_experiment`` validates against the
    built registry and its error flows through :func:`_run_clean`.
    """
    from ..faults import FaultPlan, FaultPlanError

    try:
        FaultPlan.from_flat(config).validate(total_time=config.total_time)
    except FaultPlanError as error:
        raise SystemExit(str(error))


def _build_executor(args: argparse.Namespace) -> ParallelSweepExecutor:
    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return ParallelSweepExecutor(workers=args.workers, cache=cache)


def _emit_results(
    args: argparse.Namespace,
    executor: Optional[ParallelSweepExecutor],
    results: List[ExperimentResult],
    title: str,
) -> None:
    """Print the result table and status line; optionally write the artifact."""
    print(results_table(results, title=title).render())
    if executor is not None and executor.last_report is not None:
        print(executor.last_report.describe())
    if args.json:
        artifact = {
            "schema": ARTIFACT_SCHEMA,
            "results": [result.to_dict() for result in results],
        }
        parent = os.path.dirname(args.json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote {len(results)} result artifact(s) to {args.json}")


def _cmd_run(args: argparse.Namespace) -> int:
    config = _resolve_config(args)
    if getattr(args, "fault", None):
        # The plan entries become part of the flat config (fault_plan), so
        # they feed the cache identity like any other physics parameter —
        # and the very same JSON file drives `serve --fault` live.
        from ..faults import FaultPlan, FaultPlanError

        try:
            plan = FaultPlan.from_file(args.fault).validate(
                total_time=config.total_time
            )
        except FaultPlanError as error:
            raise SystemExit(str(error))
        config = config.with_overrides(
            fault_plan=config.fault_plan + plan.entry_pairs()
        )
        # The file validated alone; the merge with the scenario's own fault
        # entries (e.g. overlapping partition windows) must too.
        _validate_fault_config(config)
    if getattr(args, "topology", None):
        # Like --fault: the file's fields become flat topology_* config
        # fields, so a topology feeds the cache identity and the same JSON
        # drives `serve --topology` live.
        from ..topology import TopologyError, TopologySpec

        try:
            topology = TopologySpec.from_file(args.topology)
        except TopologyError as error:
            raise SystemExit(str(error))
        config = config.with_overrides(**topology.to_flat())
        _validate_topology_config(config)
    # Validate the telemetry wiring before building the whole stack so a
    # typo'd sink spec (or a dangling --telemetry-period) fails as a clean
    # CLI error, not a traceback after the simulation ran (shared with
    # serve/loadgen).
    from ..runtime.cli import parse_telemetry_sinks, parse_tracer

    sinks = parse_telemetry_sinks(args)
    tracer = parse_tracer(args)
    if sinks or tracer is not None:
        # Telemetry sinks hold open files and are not picklable, so a
        # telemetry-enabled run executes in-process and bypasses the cache
        # (the snapshot stream is the artifact being produced).  The same
        # holds for tracing: the trace JSONL is the artifact, and tracing
        # is not part of the config, so cached results must not satisfy a
        # traced run.
        try:
            result = _run_clean(
                lambda: run_experiment(
                    config,
                    snapshot_sinks=sinks,
                    snapshot_period=args.telemetry_period,
                    tracer=tracer,
                )
            )
        finally:
            if tracer is not None:
                tracer.close()
        _emit_results(args, None, [result], title=f"run — {config.name}")
        for sink in args.telemetry or ():
            print(f"telemetry sink: {sink}")
        if tracer is not None:
            print(
                f"trace: {tracer.spans_emitted} span(s) "
                f"at sample rate {tracer.sample_rate} -> {args.trace}"
            )
        return 0
    executor = _build_executor(args)
    results = _run_clean(lambda: executor.run_many([config]))
    _emit_results(args, executor, results, title=f"run — {config.name}")
    return 0


def _run_clean(execute):
    """Run an executor call, turning FaultPlanError into a clean CLI error.

    Swept grid points can carry fault values the base config never had
    (``sweep --param faults.churn.down_probability --values 1.5``), so the
    up-front ``_validate_fault_config`` cannot catch everything.
    """
    from ..faults import FaultPlanError

    try:
        return execute()
    except (FaultPlanError, RegistryError) as error:
        # RegistryError covers build-time topology rejections (e.g. a sweep
        # over system.kind hitting a non-gossip system with topology on).
        raise SystemExit(str(error))


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        path = resolve_spec_path(args.param)
    except RegistryError as error:
        raise SystemExit(str(error))
    if path in ("extra", "faults.plan", "topology.assignment", "topology.geo"):
        raise SystemExit(f"config field {path!r} is structured and cannot be swept")
    config = _resolve_config(args)
    spec = config.spec()
    # Route each value through the spec so type coercion (int → float for
    # float-typed fields) matches what --set would produce.
    values = [
        spec.with_value(path, parse_scalar(value)).get(path)
        for value in args.values.split(",")
        if value != ""
    ]
    if not values:
        raise SystemExit("--values must name at least one value")
    parameter = PATH_TO_FLAT[path]
    executor = _build_executor(args)
    results = _run_clean(
        lambda: executor.sweep(config, parameter, values, reseed=args.reseed)
    )
    _emit_results(
        args, executor, results, title=f"sweep — {config.name} over {path}={values}"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    systems = [system.strip() for system in args.systems.split(",") if system.strip()]
    known = system_names()
    unknown = [system for system in systems if system not in known]
    if unknown:
        raise SystemExit(
            f"unknown systems {unknown}{suggest(unknown[0], known)}; "
            f"registered systems: {', '.join(known)}"
        )
    config = _resolve_config(args)
    executor = _build_executor(args)
    results = _run_clean(lambda: executor.compare(config, systems))
    _emit_results(
        args, executor, results, title=f"compare — {config.name} across {', '.join(systems)}"
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    name = args.name
    registries = all_registries()
    if name in scenario_names():
        scenario = get_scenario(name)
        spec = scenario.spec
        print(f"scenario {scenario.name}: {scenario.description}")
        print()
        print("resolved spec (override any path with --set path=value):")
        for line in spec.describe().splitlines():
            print(f"  {line}")
        print()
        print("components:")
        component_kinds = {
            "system": spec.system.kind,
            "membership": spec.membership.kind,
            "interest": spec.interest.kind,
            "workload": workload_kind(spec),
            "policy": spec.policy.kind,
        }
        for section, kind in component_kinds.items():
            try:
                described = registries[section].get(kind).describe()
            except RegistryError as error:
                described = f"{kind}\n  ({error})"
            print(f"  [{section}]")
            for line in described.splitlines():
                print(f"  {line}")
        return 0

    matches = [
        (section, registry.get(name))
        for section, registry in registries.items()
        if name in registry
    ]
    if matches:
        for section, entry in matches:
            print(f"[{section}]")
            print(entry.describe())
        return 0

    known = list(scenario_names()) + [
        component for registry in registries.values() for component in registry.names()
    ]
    raise SystemExit(
        f"unknown scenario or component {name!r}{suggest(name, known)}; "
        f"scenarios: {', '.join(scenario_names())}; "
        f"components: {', '.join(sorted(set(known) - set(scenario_names())))}"
    )


def _cmd_report(args: argparse.Namespace) -> int:
    """Render fairness/reliability/latency tables from a stored artifact."""
    from ..telemetry.report import load_report_source, render_report

    try:
        source = load_report_source(args.artifact)
    except ValueError as error:
        raise SystemExit(str(error))
    print(render_report(source, max_rows=args.max_rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Reconstruct infection trees from a ``--trace`` span stream."""
    from ..telemetry.report import load_report_source
    from ..tracing import analyze_spans, render_trace

    try:
        source = load_report_source(args.artifact)
    except ValueError as error:
        raise SystemExit(str(error))
    if source.kind != "trace":
        raise SystemExit(
            f"artifact {args.artifact!r} contains no trace spans; expected the "
            "JSON-lines stream written by run/serve/loadgen --trace "
            f"(this looks like a {source.kind!r} artifact — try `repro report`)"
        )
    try:
        rendered = render_trace(
            analyze_spans(source.spans),
            event=args.event,
            max_events=args.max_events,
            max_rows=args.max_rows,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    print(rendered)
    return 0


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    table = Table(["name", "system", "nodes", "description"], title="registered scenarios")
    for scenario in iter_scenarios():
        table.add_row(
            name=scenario.name,
            system=scenario.config.system,
            nodes=scenario.config.nodes,
            description=scenario.description,
        )
    print(table.render())
    return 0


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "scenario",
        nargs="?",
        default="base",
        help="named scenario to start from (see list-scenarios; default: base)",
    )
    parser.add_argument("--workers", type=int, default=1, help="worker processes (default: 1)")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default: $REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument("--json", default=None, metavar="PATH", help="write result artifacts as JSON")
    parser.add_argument("--seed", type=int, default=None, help="override the master seed")
    parser.add_argument("--nodes", type=int, default=None, help="override the node count")
    parser.add_argument(
        "--system", default=None, choices=SYSTEM_NAMES, help="override the dissemination system"
    )
    parser.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="override any config field by dotted spec path (system.fanout=5, "
        "membership.kind=lpbcast) or legacy flat name (fanout=5); repeatable",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, sweep, and compare fairness/reliability experiments "
        "with multiprocess fan-out and a content-addressed result cache.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one scenario")
    _add_common_options(run_parser)
    run_parser.add_argument(
        "--fault",
        default=None,
        metavar="PLAN.json",
        help="inject a declarative fault plan (crash/churn/partition/perturb "
        "entries; the same file drives `serve --fault` live); entries become "
        "part of the config and its cache key",
    )
    run_parser.add_argument(
        "--topology",
        default=None,
        metavar="TOPO.json",
        help="load a multi-domain topology spec (domains, bridge policy, geo "
        "latency/loss matrix; the same file drives `serve --topology` live); "
        "fields become part of the config and its cache key",
    )
    run_parser.add_argument(
        "--telemetry",
        action="append",
        metavar="SINK",
        help="stream periodic telemetry snapshots to a sink during the run "
        "(jsonl:PATH, csv:PATH, prom:PATH, memory); repeatable; implies an "
        "in-process, cache-bypassing run",
    )
    run_parser.add_argument(
        "--telemetry-period",
        type=float,
        default=None,
        metavar="UNITS",
        help="snapshot period in simulated time units (default: 5.0)",
    )
    run_parser.add_argument(
        "--trace",
        default=None,
        metavar="TRACE.jsonl",
        help="record causal dissemination spans to a JSON-lines file "
        "(implies an in-process, cache-bypassing run; render with "
        "`python -m repro trace TRACE.jsonl`)",
    )
    run_parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="fraction of published events to trace, decided "
        "deterministically per event id (default with --trace: 1.0)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser("sweep", help="sweep one parameter axis")
    _add_common_options(sweep_parser)
    sweep_parser.add_argument(
        "--param",
        required=True,
        help="config field to sweep, as dotted spec path (system.fanout) or flat name (fanout)",
    )
    sweep_parser.add_argument(
        "--values", required=True, help="comma-separated values (parsed as int/float/bool/str)"
    )
    sweep_parser.add_argument(
        "--reseed",
        action="store_true",
        help="derive a distinct deterministic seed per grid point",
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    compare_parser = subparsers.add_parser("compare", help="compare dissemination systems")
    _add_common_options(compare_parser)
    compare_parser.add_argument(
        "--systems",
        required=True,
        help=f"comma-separated system names from {list(SYSTEM_NAMES)}",
    )
    compare_parser.set_defaults(handler=_cmd_compare)

    list_parser = subparsers.add_parser("list-scenarios", help="show the scenario registry")
    list_parser.set_defaults(handler=_cmd_list_scenarios)

    describe_parser = subparsers.add_parser(
        "describe",
        help="show a scenario's resolved spec and component schemas, or one component's schema",
    )
    describe_parser.add_argument("name", help="scenario or component name (e.g. smoke, fair-gossip)")
    describe_parser.set_defaults(handler=_cmd_describe)

    report_parser = subparsers.add_parser(
        "report",
        help="render fairness/reliability/latency tables from a stored artifact "
        "(telemetry JSON-lines stream, --json results, cache entry, or runtime artifact)",
    )
    report_parser.add_argument(
        "artifact",
        help="path to the artifact: a telemetry .jsonl stream, a --json results "
        "file, a .repro-cache entry, or a serve/loadgen --json artifact",
    )
    report_parser.add_argument(
        "--max-rows",
        type=int,
        default=10,
        help="per-table row cap for per-node breakdowns (default: 10)",
    )
    report_parser.set_defaults(handler=_cmd_report)

    trace_parser = subparsers.add_parser(
        "trace",
        help="reconstruct per-event infection trees and dissemination "
        "statistics from a --trace span stream",
    )
    trace_parser.add_argument(
        "artifact",
        help="path to a trace JSON-lines stream written by run/serve/loadgen --trace",
    )
    trace_parser.add_argument(
        "--event",
        default=None,
        metavar="EVENT_ID",
        help="render the infection tree of one traced event only",
    )
    trace_parser.add_argument(
        "--max-events",
        type=int,
        default=3,
        metavar="N",
        help="how many infection trees to render (default: 3)",
    )
    trace_parser.add_argument(
        "--max-rows",
        type=int,
        default=10,
        help="row cap for the per-event table (default: 10)",
    )
    trace_parser.set_defaults(handler=_cmd_trace)

    from ..campaign.cli import add_campaign_subcommand

    add_campaign_subcommand(subparsers)

    add_runtime_subcommands(subparsers)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` (and by the CLI smoke tests)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
