"""Virtual clock for the discrete-event simulator.

The clock only ever moves forward, and only the scheduler advances it.  Time
is a float measured in abstract "time units"; gossip protocols typically use
one unit per gossip round, while the network model uses fractions of a unit
for per-link latency.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


def _validated_start(start: float) -> float:
    """Validate a clock start time; shared by ``__init__`` and ``reset``."""
    if start < 0:
        raise ValueError("start time must be non-negative")
    return float(start)


class VirtualClock:
    """Monotonically increasing simulated time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = _validated_start(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises
        ------
        ValueError
            If ``timestamp`` is earlier than the current time; the simulator
            never travels backwards.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, requested={timestamp}"
            )
        self._now = float(timestamp)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, typically between independent simulation runs."""
        self._now = _validated_start(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now!r})"
