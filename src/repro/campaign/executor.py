"""Incremental campaign execution over the parallel sweep executor.

:class:`CampaignExecutor` compiles a validated
:class:`~repro.campaign.spec.CampaignSpec` into concrete grid points,
computes per-point staleness from the content-addressed result cache
(config hash unchanged ⇒ cache hit, never re-run), and drives a
re-planning loop:

1. evaluate every selected target's connector tree against the current
   node states; *demand* the services it still needs (``ONE`` demands a
   single alternative at a time, preferring one whose points are already
   fully cached — the short-circuit);
2. run every demanded service whose dependencies are satisfied on the
   shared :class:`~repro.experiments.executor.ParallelSweepExecutor`
   (points fan out over its worker pool; cached points load from disk);
3. render every target whose connector is now satisfied (the standard
   results table or the full fairness/latency report, plus a
   ``--json``-shaped result artifact), and re-plan.

The loop terminates when no node makes progress; services never demanded
(unchosen ``ONE`` alternatives) are marked *skipped*.  Every run writes a
:class:`~repro.campaign.manifest.RunManifest` with per-target provenance —
config hashes, cache hit/miss counts, cache-entry provenance, wall time.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import __version__ as _CODE_VERSION
from ..experiments.cache import ResultCache, config_hash
from ..experiments.config import ExperimentConfig
from ..experiments.executor import ParallelSweepExecutor
from ..experiments.runner import ExperimentResult
from ..experiments.scenarios import get_scenario
from ..experiments.sweeps import compare_configs, grid_configs
from ..registry import PATH_TO_FLAT, RegistryError, resolve_spec_path
from ..registry.base import suggest
from .graph import CampaignGraph, compile_graph
from .manifest import RunManifest, PointRecord, ServiceRecord, TargetRecord
from .spec import CampaignError, CampaignSpec, Connector, ServiceSpec, TargetSpec

__all__ = ["CampaignExecutor", "expand_service"]

#: Node states used by the planning loop.
PENDING = "pending"
DONE = "done"
FAILED = "failed"
SKIPPED = "skipped"


def expand_service(service: ServiceSpec) -> List[ExperimentConfig]:
    """Expand one service into its concrete grid points.

    Expansion order: scenario base → ``set`` overrides → ``compare``
    (across systems) → ``sweep`` axes plus the ``seeds`` shorthand (a
    cartesian grid).  All value routing goes through the nested
    :class:`~repro.registry.specs.StackSpec`, so types are coerced exactly
    as the CLI's ``--set``/``--sweep`` would and cache identities match
    points produced by hand-invoked runs.
    """
    base = get_scenario(service.scenario).config
    if service.set:
        spec = base.spec()
        for key, value in service.set:
            spec = spec.with_value(key, value)
        base = spec.to_config()
    configs = [base]
    if service.compare:
        configs = [
            expanded
            for config in configs
            for expanded in compare_configs(config, service.compare)
        ]
    axes: List[Tuple[str, Sequence[object]]] = list(service.sweep)
    if service.seeds:
        axes.append(("seed", service.seeds))
    if axes:
        template = configs[0].spec()
        flat_axes: Dict[str, Sequence[object]] = {}
        for axis, values in axes:
            path = resolve_spec_path(axis)
            flat_axes[PATH_TO_FLAT[path]] = [
                template.with_value(path, value).get(path) for value in values
            ]
        configs = [
            expanded
            for config in configs
            for expanded in grid_configs(config, flat_axes, reseed=service.reseed)
        ]
    return configs


class CampaignExecutor:
    """Plan and run one campaign incrementally.

    Parameters
    ----------
    spec:
        A validated campaign spec.
    executor:
        The sweep executor services are scheduled onto; its cache (if any)
        is what staleness is computed from.
    out_dir:
        Where target artifacts and ``manifest.json`` land
        (default ``out/campaign/<campaign name>``).
    targets:
        Optional target subset to build (ancestors included); unknown
        names fail with a did-you-mean :class:`CampaignError`.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        executor: Optional[ParallelSweepExecutor] = None,
        out_dir: Optional[str] = None,
        targets: Optional[Sequence[str]] = None,
    ) -> None:
        self.spec = spec
        self.executor = executor or ParallelSweepExecutor(cache=ResultCache())
        self.cache: Optional[ResultCache] = self.executor.cache
        self.out_dir = out_dir or os.path.join("out", "campaign", spec.name)
        self.graph: CampaignGraph = compile_graph(spec)
        known = spec.target_names()
        for name in targets or ():
            if name not in known:
                raise CampaignError(
                    f"unknown target {name!r}{suggest(name, known)}; "
                    f"targets: {', '.join(known)}"
                )
        self.selected_targets: List[str] = list(targets) if targets else list(known)
        self._needed = self.graph.restricted_to(self.selected_targets)
        #: name -> expanded grid points (computed once; spec is immutable).
        self.points: Dict[str, List[ExperimentConfig]] = {
            service.name: expand_service(service)
            for service in spec.services
            if service.name in self._needed
        }

    # ------------------------------------------------------------ staleness

    def stale_counts(self) -> Dict[str, Tuple[int, int]]:
        """``service -> (fresh points, stale points)`` from the cache."""
        counts: Dict[str, Tuple[int, int]] = {}
        for name, configs in self.points.items():
            fresh = sum(1 for config in configs if self._is_cached(config))
            counts[name] = (fresh, len(configs) - fresh)
        return counts

    def _is_cached(self, config: ExperimentConfig) -> bool:
        return self.cache is not None and self.cache.fresh(config)

    def _fully_fresh(self, child: Union[str, Connector]) -> bool:
        if isinstance(child, Connector):
            return all(self._fully_fresh(grand) for grand in child.children)
        return all(self._is_cached(config) for config in self.points.get(child, ()))

    # ------------------------------------------------------- connector logic

    def _child_status(self, child: Union[str, Connector], states: Dict[str, str]) -> str:
        if isinstance(child, Connector):
            statuses = [self._child_status(grand, states) for grand in child.children]
            if child.op == "one":
                if DONE in statuses:
                    return DONE
                if all(status == FAILED for status in statuses):
                    return FAILED
                return PENDING
            if FAILED in statuses:
                return FAILED
            if all(status == DONE for status in statuses):
                return DONE
            return PENDING
        state = states[child]
        if state in (DONE, FAILED):
            return state
        return PENDING

    def _demand(self, child: Union[str, Connector], states: Dict[str, str]) -> List[str]:
        """Services that should run *now* to make progress under ``child``."""
        if not isinstance(child, Connector):
            return [child] if states[child] == PENDING else []
        if child.op == "one":
            if self._child_status(child, states) != PENDING:
                return []
            candidates = [
                grand
                for grand in child.children
                if self._child_status(grand, states) != FAILED
            ]
            if not candidates:
                return []
            # The short-circuit: a fully cached alternative wins over an
            # earlier-listed cold one — nothing needs to execute for it.
            chosen = next(
                (grand for grand in candidates if self._fully_fresh(grand)),
                candidates[0],
            )
            return self._demand(chosen, states)
        demanded: List[str] = []
        for grand in child.children:
            demanded.extend(self._demand(grand, states))
        return demanded

    def _collect(
        self,
        child: Union[str, Connector],
        states: Dict[str, str],
        results: Dict[str, List[ExperimentResult]],
    ) -> List[ExperimentResult]:
        if isinstance(child, Connector):
            if child.op == "one":
                for grand in child.children:
                    if self._child_status(grand, states) == DONE:
                        return self._collect(grand, states, results)
                return []
            collected: List[ExperimentResult] = []
            for grand in child.children:
                collected.extend(self._collect(grand, states, results))
            return collected
        return results.get(child, [])

    def _used_services(
        self, child: Union[str, Connector], states: Dict[str, str]
    ) -> List[str]:
        """The service names a satisfied connector actually consumed."""
        if isinstance(child, Connector):
            if child.op == "one":
                for grand in child.children:
                    if self._child_status(grand, states) == DONE:
                        return self._used_services(grand, states)
                return []
            used: List[str] = []
            for grand in child.children:
                used.extend(self._used_services(grand, states))
            return used
        return [child]

    # ------------------------------------------------------------- execution

    def run(self, dry_run: bool = False) -> RunManifest:
        """Execute (or plan) the campaign; returns the run manifest."""
        started = time.perf_counter()
        manifest = RunManifest(campaign=self.spec.name, version=_CODE_VERSION)
        states: Dict[str, str] = {
            node: PENDING for node in self.graph.order if node in self._needed
        }
        results: Dict[str, List[ExperimentResult]] = {}
        dependency_map = self.graph.dependency_map()
        targets_by_name = {target.name: target for target in self.spec.targets}

        while True:
            progressed = False

            # Demand services from every unsatisfied selected target, then
            # close over dependencies so `after` prerequisites run too.
            demanded: List[str] = []
            for name in self.selected_targets:
                if states.get(name) == PENDING:
                    demanded.extend(self._demand(targets_by_name[name].inputs, states))
            closure: List[str] = []
            frontier = list(dict.fromkeys(demanded))
            while frontier:
                node = frontier.pop(0)
                if node in closure or node not in states:
                    continue
                closure.append(node)
                frontier.extend(dependency_map.get(node, ()))

            for name in self.graph.order:
                if name not in closure or name not in self.points:
                    continue
                if states[name] != PENDING:
                    continue
                deps = dependency_map.get(name, ())
                active = [dep for dep in deps if dep in states]
                if any(states[dep] == FAILED for dep in active):
                    states[name] = FAILED
                    manifest.services[name] = ServiceRecord(
                        name=name,
                        status=FAILED,
                        error="dependency failed: "
                        + ", ".join(dep for dep in active if states[dep] == FAILED),
                    )
                    progressed = True
                    continue
                if not all(states[dep] == DONE for dep in active):
                    continue
                progressed = True
                if dry_run:
                    states[name] = DONE
                    results[name] = []
                    manifest.services[name] = self._planned_record(name)
                else:
                    states[name] = self._run_service(name, manifest, results)

            # Render every needed target whose connector resolved (a target
            # can also be a service's `after` prerequisite, so unselected
            # ancestors render too).
            for name in self.graph.order:
                if name not in targets_by_name or states.get(name) != PENDING:
                    continue
                target = targets_by_name[name]
                status = self._child_status(target.inputs, states)
                if status == PENDING:
                    continue
                progressed = True
                if status == FAILED:
                    states[name] = FAILED
                    manifest.targets[name] = TargetRecord(
                        name=name,
                        status=FAILED,
                        inputs=target.inputs.service_names(),
                        error="input service(s) failed",
                    )
                    continue
                states[name] = DONE
                if dry_run:
                    manifest.targets[name] = TargetRecord(
                        name=name,
                        status=DONE,
                        inputs=self._used_services(target.inputs, states),
                    )
                else:
                    manifest.targets[name] = self._render_target(
                        target, states, results
                    )

            if progressed:
                manifest.waves += 1
            else:
                break

        for name, state in states.items():
            if state != PENDING:
                continue
            if name in self.points:
                manifest.services.setdefault(
                    name, ServiceRecord(name=name, status=SKIPPED)
                )
            else:
                manifest.targets.setdefault(
                    name,
                    TargetRecord(
                        name=name,
                        status=SKIPPED,
                        inputs=targets_by_name[name].inputs.service_names(),
                    ),
                )

        if self.cache is not None:
            manifest.cache_stats = self.cache.stats.as_dict()
        manifest.wall_seconds = time.perf_counter() - started
        if not dry_run:
            os.makedirs(self.out_dir, exist_ok=True)
            manifest.write(os.path.join(self.out_dir, "manifest.json"))
        return manifest

    def _planned_record(self, name: str) -> ServiceRecord:
        """Dry-run record: what would run, what the cache already covers."""
        record = ServiceRecord(name=name, status=DONE)
        for config in self.points[name]:
            record.points.append(
                PointRecord(
                    name=config.name,
                    config_hash=config_hash(config),
                    cached=self._is_cached(config),
                )
            )
        return record

    def _run_service(
        self,
        name: str,
        manifest: RunManifest,
        results: Dict[str, List[ExperimentResult]],
    ) -> str:
        configs = self.points[name]
        started = time.perf_counter()
        try:
            computed = self.executor.run_many(configs)
        except (RegistryError, ValueError) as error:
            manifest.services[name] = ServiceRecord(
                name=name, status=FAILED, error=str(error)
            )
            return FAILED
        results[name] = computed
        report = self.executor.last_report
        hit_flags = report.hit_flags if report is not None else ()
        record = ServiceRecord(
            name=name,
            status=DONE,
            elapsed_seconds=report.elapsed_seconds if report is not None else 0.0,
        )
        for index, config in enumerate(configs):
            cached = bool(hit_flags[index]) if index < len(hit_flags) else False
            provenance: Tuple[Tuple[str, object], ...] = ()
            if self.cache is not None:
                stored = self.cache.provenance(config)
                if stored:
                    provenance = tuple(
                        (key, stored[key])
                        for key in ("version", "created_at")
                        if key in stored
                    )
            record.points.append(
                PointRecord(
                    name=config.name,
                    config_hash=config_hash(config),
                    cached=cached,
                    provenance=provenance,
                )
            )
        manifest.services[name] = record
        return DONE

    def _render_target(
        self,
        target: TargetSpec,
        states: Dict[str, str],
        results: Dict[str, List[ExperimentResult]],
    ) -> TargetRecord:
        import json

        from ..experiments.cache import ARTIFACT_SCHEMA
        from ..experiments.sweeps import results_table
        from ..telemetry.report import render_results

        collected = self._collect(target.inputs, states, results)
        os.makedirs(self.out_dir, exist_ok=True)
        json_name = f"{target.name}.json"
        text_name = f"{target.name}.txt"
        artifact = {
            "schema": ARTIFACT_SCHEMA,
            "results": [result.to_dict() for result in collected],
        }
        with open(os.path.join(self.out_dir, json_name), "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, sort_keys=True, indent=2)
            handle.write("\n")
        title = target.title or f"{self.spec.name} — {target.name}"
        if target.kind == "report":
            text = render_results(collected)
        else:
            text = results_table(collected, title=title).render()
        with open(os.path.join(self.out_dir, text_name), "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
        return TargetRecord(
            name=target.name,
            status=DONE,
            inputs=self._used_services(target.inputs, states),
            outputs=[text_name, json_name],
            config_hashes=[config_hash(result.config) for result in collected],
        )
