"""The discrete-event simulation engine.

The engine owns a priority queue of timestamped callbacks and a
:class:`~repro.sim.clock.VirtualClock`.  Protocol code never sleeps or spins:
it schedules future work (a timer tick, a message arrival) and returns.  The
engine pops events in timestamp order, advances the clock, and invokes the
callbacks.  Ties are broken by insertion order so runs are fully
deterministic for a given seed.

The engine is deliberately minimal: everything network- or process-related
lives in :mod:`repro.sim.network` and :mod:`repro.sim.node`, which are built
on top of :meth:`Simulator.schedule`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .clock import VirtualClock
from .rng import RngRegistry

__all__ = ["Simulator", "ScheduledEvent", "PeriodicTimer", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


@dataclass(order=True)
class _QueueEntry:
    timestamp: float
    sequence: int
    event: "ScheduledEvent" = field(compare=False)


@dataclass
class ScheduledEvent:
    """A single scheduled callback.

    Attributes
    ----------
    timestamp:
        Simulated time at which the callback fires.
    action:
        Zero-argument callable invoked when the event fires.
    label:
        Human-readable tag used in traces and error messages.
    cancelled:
        Set via :meth:`cancel`; cancelled events are skipped when popped.
    """

    timestamp: float
    action: Callable[[], None]
    label: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the attached :class:`RngRegistry`.
    start_time:
        Initial value of the virtual clock.
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.clock = VirtualClock(start_time)
        self.rng = RngRegistry(seed)
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------ scheduling

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, action, label)

    def schedule_at(
        self, timestamp: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` to run at absolute time ``timestamp``."""
        if timestamp < self.now:
            raise SimulationError(
                f"cannot schedule at {timestamp}, current time is {self.now}"
            )
        event = ScheduledEvent(timestamp=timestamp, action=action, label=label)
        entry = _QueueEntry(timestamp=timestamp, sequence=next(self._sequence), event=event)
        heapq.heappush(self._queue, entry)
        return event

    def schedule_periodic(
        self,
        period: float,
        action: Callable[[], None],
        label: str = "",
        initial_delay: Optional[float] = None,
        jitter: float = 0.0,
    ) -> "PeriodicTimer":
        """Schedule ``action`` every ``period`` units until the timer is stopped.

        ``jitter`` adds a uniform random offset in ``[0, jitter)`` to each
        firing, drawn from the ``"periodic-timers"`` stream; gossip protocols
        use it to avoid artificial round synchronisation across nodes.
        """
        if period <= 0:
            raise SimulationError("period must be positive")
        timer = PeriodicTimer(self, period, action, label=label, jitter=jitter)
        timer.start(initial_delay if initial_delay is not None else period)
        return timer

    # --------------------------------------------------------------- running

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue was
        empty (or contained only cancelled events).
        """
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.event.cancelled:
                continue
            self.clock.advance_to(entry.timestamp)
            self._running = True
            try:
                entry.event.action()
            finally:
                self._running = False
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time.  The clock is
            left at ``until`` (if given) so post-run measurements see the full
            window.  ``None`` runs until the queue drains.
        max_events:
            Safety valve against runaway schedules; ``None`` means unlimited.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_entry = self._peek()
            if next_entry is None:
                break
            if until is not None and next_entry.timestamp > until:
                break
            if self.step():
                executed += 1
        if until is not None and until > self.now:
            self.clock.advance_to(until)
        return executed

    def _peek(self) -> Optional[_QueueEntry]:
        while self._queue:
            entry = self._queue[0]
            if entry.event.cancelled:
                heapq.heappop(self._queue)
                continue
            return entry
        return None


class PeriodicTimer:
    """Repeating timer driven by a :class:`Simulator`.

    The timer reschedules itself after each firing; calling :meth:`stop`
    cancels the pending occurrence and stops the cycle.
    """

    def __init__(
        self,
        simulator: Simulator,
        period: float,
        action: Callable[[], None],
        label: str = "",
        jitter: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError("period must be positive")
        if jitter < 0:
            raise SimulationError("jitter must be non-negative")
        self._simulator = simulator
        self._period = period
        self._action = action
        self._label = label or "periodic"
        self._jitter = jitter
        self._pending: Optional[ScheduledEvent] = None
        self._stopped = True
        self.fire_count = 0

    @property
    def period(self) -> float:
        """Current period between firings."""
        return self._period

    @period.setter
    def period(self, value: float) -> None:
        if value <= 0:
            raise SimulationError("period must be positive")
        self._period = value

    @property
    def running(self) -> bool:
        """Whether the timer will keep firing."""
        return not self._stopped

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Arm the timer; the first firing happens after ``initial_delay``."""
        self._stopped = False
        delay = self._period if initial_delay is None else initial_delay
        self._schedule(delay)

    def stop(self) -> None:
        """Cancel any pending firing and stop rescheduling."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule(self, delay: float) -> None:
        offset = 0.0
        if self._jitter:
            offset = self._simulator.rng.stream("periodic-timers").uniform(0.0, self._jitter)
        self._pending = self._simulator.schedule(delay + offset, self._fire, label=self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._action()
        if not self._stopped:
            self._schedule(self._period)
