"""Tests for failure injection, trace recording, and metric primitives."""

from __future__ import annotations

import pytest

from repro.sim import (
    ChurnInjector,
    CrashSchedule,
    Histogram,
    MetricsRegistry,
    Network,
    PartitionInjector,
    Process,
    ProcessRegistry,
    Simulator,
    TraceRecorder,
)
from repro.sim.metrics import percentile


class Dummy(Process):
    pass


def build_population(simulator, network, count=10):
    registry = ProcessRegistry()
    for index in range(count):
        process = Dummy(f"n{index}", simulator, network)
        process.start()
        registry.add(process)
    return registry


class TestCrashSchedule:
    def test_crash_and_recover_at_scheduled_times(self, simulator, network):
        registry = build_population(simulator, network, 3)
        schedule = CrashSchedule(simulator, registry)
        schedule.add(1.0, "n0", "crash")
        schedule.add(2.0, "n0", "recover")
        simulator.run(until=1.5)
        assert not registry.get("n0").alive
        simulator.run(until=2.5)
        assert registry.get("n0").alive

    def test_leave_removes_from_registry(self, simulator, network):
        registry = build_population(simulator, network, 2)
        schedule = CrashSchedule(simulator, registry)
        schedule.add(1.0, "n1", "leave")
        simulator.run(until=2.0)
        assert "n1" not in registry

    def test_unknown_action_rejected(self, simulator, network):
        registry = build_population(simulator, network, 1)
        schedule = CrashSchedule(simulator, registry)
        with pytest.raises(ValueError):
            schedule.add(1.0, "n0", "explode")

    def test_trace_records_events(self, simulator, network):
        registry = build_population(simulator, network, 1)
        trace = TraceRecorder()
        schedule = CrashSchedule(simulator, registry, trace=trace)
        schedule.add(1.0, "n0", "crash")
        simulator.run(until=2.0)
        assert trace.count("churn", "n0") == 1


class TestChurnInjector:
    def test_churn_takes_nodes_down_and_back(self, simulator, network):
        registry = build_population(simulator, network, 30)
        injector = ChurnInjector(
            simulator, registry, period=1.0, down_probability=0.5, up_probability=0.5
        )
        injector.start()
        simulator.run(until=10.0)
        assert injector.crashes > 0
        assert injector.recoveries > 0

    def test_protected_nodes_never_crash(self, simulator, network):
        registry = build_population(simulator, network, 10)
        injector = ChurnInjector(
            simulator,
            registry,
            period=1.0,
            down_probability=1.0,
            up_probability=0.0,
            protected=["n0"],
        )
        injector.start()
        simulator.run(until=5.0)
        assert registry.get("n0").alive
        assert not registry.get("n1").alive

    def test_stop_halts_churn(self, simulator, network):
        registry = build_population(simulator, network, 10)
        injector = ChurnInjector(simulator, registry, period=1.0, down_probability=1.0)
        injector.start()
        simulator.run(until=1.0)
        crashes = injector.crashes
        injector.stop()
        simulator.run(until=5.0)
        assert injector.crashes == crashes

    def test_invalid_probabilities_rejected(self, simulator, network):
        registry = build_population(simulator, network, 1)
        with pytest.raises(ValueError):
            ChurnInjector(simulator, registry, down_probability=1.5)


class TestPartitionInjector:
    def test_partition_and_heal(self, simulator, network):
        build_population(simulator, network, 4)
        injector = PartitionInjector(simulator, network)
        injector.split_in_two(["n0", "n1", "n2", "n3"], time=1.0, heal_after=2.0)
        simulator.run(until=1.5)
        assert network._same_partition("n0", "n1")
        assert not network._same_partition("n0", "n3")
        simulator.run(until=4.0)
        assert network._same_partition("n0", "n3")
        assert injector.partitions_installed == 1

    def test_invalid_fraction_rejected(self, simulator, network):
        injector = PartitionInjector(simulator, network)
        with pytest.raises(ValueError):
            injector.split_in_two(["a", "b"], time=1.0, heal_after=1.0, fraction=1.5)

    def test_invalid_heal_after_rejected(self, simulator, network):
        injector = PartitionInjector(simulator, network)
        with pytest.raises(ValueError):
            injector.partition_at(1.0, {"a": 1}, heal_after=0.0)

    def test_messages_dropped_across_partition_and_flow_after_heal(self, simulator, network):
        build_population(simulator, network, 2)
        injector = PartitionInjector(simulator, network)
        injector.partition_at(1.0, {"n0": 0, "n1": 1}, heal_after=2.0)
        simulator.run(until=1.5)
        network.send("n0", "n1", "ping")
        simulator.run(until=2.0)
        assert network.stats.dropped_partition == 1
        assert network.stats.delivered == 0
        simulator.run(until=3.5)  # healed at t=3
        network.send("n0", "n1", "ping")
        simulator.run(until=4.0)
        assert network.stats.dropped_partition == 1
        assert network.stats.delivered == 1

    def test_nodes_absent_from_assignment_default_to_group_zero(self, simulator, network):
        build_population(simulator, network, 3)
        injector = PartitionInjector(simulator, network)
        injector.partition_at(1.0, {"n1": 1}, heal_after=10.0)
        simulator.run(until=1.5)
        # n0 and n2 are unassigned, hence both in group 0 and connected.
        assert network._same_partition("n0", "n2")
        assert not network._same_partition("n0", "n1")

    def test_overlapping_partitions_last_installed_wins(self, simulator, network):
        build_population(simulator, network, 2)
        injector = PartitionInjector(simulator, network)
        injector.partition_at(1.0, {"n0": 0, "n1": 1}, heal_after=10.0)
        injector.partition_at(2.0, {"n0": 0, "n1": 0}, heal_after=10.0)
        simulator.run(until=2.5)
        assert injector.partitions_installed == 2
        assert network._same_partition("n0", "n1")

    def test_split_in_two_respects_fraction(self, simulator, network):
        build_population(simulator, network, 4)
        injector = PartitionInjector(simulator, network)
        injector.split_in_two(["n0", "n1", "n2", "n3"], time=1.0, heal_after=5.0, fraction=0.25)
        simulator.run(until=1.5)
        # One node (the first) is cut off; the remaining three stay together.
        assert not network._same_partition("n0", "n1")
        assert network._same_partition("n1", "n2")
        assert network._same_partition("n2", "n3")


class TestTraceRecorder:
    def test_records_and_filters(self):
        trace = TraceRecorder()
        trace.record(1.0, "publish", node="a", event="e1")
        trace.record(2.0, "deliver", node="b", event="e1")
        trace.record(3.0, "deliver", node="b", event="e2")
        assert len(trace) == 3
        assert len(trace.by_category("deliver")) == 2
        assert len(trace.by_node("b")) == 2
        assert trace.count("deliver", node="b") == 2

    def test_disabled_recorder_keeps_nothing(self):
        trace = TraceRecorder(enabled=False)
        assert trace.record(1.0, "publish") is None
        assert len(trace) == 0

    def test_listener_notified(self):
        trace = TraceRecorder()
        seen = []
        trace.add_listener(lambda record: seen.append(record.category))
        trace.record(1.0, "publish")
        assert seen == ["publish"]

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1.0, "publish")
        trace.clear()
        assert len(trace) == 0


class TestMetrics:
    def test_counter_increments_and_rejects_negative(self):
        registry = MetricsRegistry()
        registry.increment("sent", node="a", amount=3)
        registry.increment("sent", node="a")
        assert registry.counter_value("sent", "a") == 4
        with pytest.raises(ValueError):
            registry.counter("sent", "a").increment(-1)

    def test_counter_total_and_per_node(self):
        registry = MetricsRegistry()
        registry.increment("sent", node="a", amount=2)
        registry.increment("sent", node="b", amount=3)
        assert registry.counter_total("sent") == 5
        assert registry.per_node_counter("sent") == {"a": 2, "b": 3}

    def test_gauge_set(self):
        registry = MetricsRegistry()
        registry.gauge("fanout", "a").set(4)
        registry.gauge("fanout", "a").set(2)
        assert registry.per_node_gauge("fanout") == {"a": 2}

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0

    def test_empty_histogram_summary_is_zeroes(self):
        summary = Histogram().summary()
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_percentile_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_names_and_reset(self):
        registry = MetricsRegistry()
        registry.increment("sent")
        registry.gauge("fanout").set(1)
        registry.observe("latency", 0.3)
        names = registry.names()
        assert names["counters"] == ["sent"]
        assert names["gauges"] == ["fanout"]
        assert names["histograms"] == ["latency"]
        registry.reset()
        assert registry.counter_total("sent") == 0
