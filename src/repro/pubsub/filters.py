"""Subscription filters — the interest function I(p, e) of the paper.

Section 2 defines two levels of expressiveness:

* **topic-based** — a filter with a single ``topic`` attribute and no
  conditions (:class:`TopicFilter`);
* **content-based** — a filter specifying several attributes and conditions
  that must all hold (:class:`ContentFilter` built from
  :class:`AttributeCondition` predicates).

Composite filters (:class:`AndFilter`, :class:`OrFilter`, :class:`NotFilter`)
let workloads express richer interests, and :class:`InterestFunction` bundles
a process's complete set of filters into the paper's ``ISINTERESTED(e)``
predicate used by the gossip algorithm of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .events import Event, TOPIC_ATTRIBUTE

__all__ = [
    "Filter",
    "TopicFilter",
    "AttributeCondition",
    "ContentFilter",
    "AndFilter",
    "OrFilter",
    "NotFilter",
    "MatchAllFilter",
    "MatchNoneFilter",
    "InterestFunction",
    "filter_from_dict",
]


class Filter:
    """Base class for all filters.

    Subclasses implement :meth:`matches`; the ``filter_id`` property gives a
    stable identifier used by subscription tables and by the fairness
    accounting, which charges processes per placed filter (Figure 2).
    """

    def matches(self, event: Event) -> bool:
        """Whether the event satisfies this filter."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; inverse of :func:`filter_from_dict`."""
        raise NotImplementedError

    @property
    def filter_id(self) -> str:
        """Stable identifier; equal filters share an id."""
        return repr(self)

    @property
    def topics(self) -> Tuple[str, ...]:
        """Topics this filter pins down exactly, if any (for routing)."""
        return ()

    def __call__(self, event: Event) -> bool:
        return self.matches(event)


@dataclass(frozen=True)
class TopicFilter(Filter):
    """Filter with a single attribute (the topic) and no conditions."""

    topic: str

    def matches(self, event: Event) -> bool:
        return event.attribute(TOPIC_ATTRIBUTE) == self.topic

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "topic", "topic": self.topic}

    @property
    def filter_id(self) -> str:
        return f"topic:{self.topic}"

    @property
    def topics(self) -> Tuple[str, ...]:
        return (self.topic,)


#: Comparison operators allowed in attribute conditions.
_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda left, right: left == right,
    "!=": lambda left, right: left != right,
    "<": lambda left, right: left < right,
    "<=": lambda left, right: left <= right,
    ">": lambda left, right: left > right,
    ">=": lambda left, right: left >= right,
    "in": lambda left, right: left in right,
    "contains": lambda left, right: right in left,
    "prefix": lambda left, right: str(left).startswith(str(right)),
}


@dataclass(frozen=True)
class AttributeCondition:
    """A single ``attribute <operator> value`` predicate.

    An event must *provide* the attribute for the condition to hold, matching
    the paper's definition ("provides all attributes specified by the filter
    and satisfies the corresponding conditions").
    """

    attribute: str
    operator: str
    value: Any

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise ValueError(
                f"unsupported operator {self.operator!r}; expected one of {sorted(_OPERATORS)}"
            )

    def holds_for(self, event: Event) -> bool:
        """Evaluate the condition against an event."""
        if self.attribute not in event.attributes:
            return False
        actual = event.attributes[self.attribute]
        try:
            return _OPERATORS[self.operator](actual, self.value)
        except TypeError:
            # Incomparable types (e.g. string vs number) simply do not match.
            return False

    def describe(self) -> str:
        """Human-readable form used in filter ids and reports."""
        return f"{self.attribute}{self.operator}{self.value!r}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (values must be JSON scalars)."""
        return {"attribute": self.attribute, "operator": self.operator, "value": self.value}

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "AttributeCondition":
        """Rebuild a condition from :meth:`to_dict` output."""
        return AttributeCondition(
            attribute=payload["attribute"],
            operator=payload["operator"],
            value=payload["value"],
        )


@dataclass(frozen=True)
class ContentFilter(Filter):
    """Conjunction of attribute conditions (the paper's expressive filter)."""

    conditions: Tuple[AttributeCondition, ...] = ()
    name: str = ""

    @staticmethod
    def build(name: str = "", **equalities: Any) -> "ContentFilter":
        """Shorthand for an equality-only content filter."""
        conditions = tuple(
            AttributeCondition(attribute, "==", value) for attribute, value in sorted(equalities.items())
        )
        return ContentFilter(conditions=conditions, name=name)

    def matches(self, event: Event) -> bool:
        return all(condition.holds_for(event) for condition in self.conditions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "content",
            "name": self.name,
            "conditions": [condition.to_dict() for condition in self.conditions],
        }

    @property
    def filter_id(self) -> str:
        body = "&".join(condition.describe() for condition in self.conditions)
        return f"content:{self.name}:{body}" if self.name else f"content:{body}"

    @property
    def topics(self) -> Tuple[str, ...]:
        pinned = tuple(
            str(condition.value)
            for condition in self.conditions
            if condition.attribute == TOPIC_ATTRIBUTE and condition.operator == "=="
        )
        return pinned


@dataclass(frozen=True)
class AndFilter(Filter):
    """Matches when every child filter matches."""

    children: Tuple[Filter, ...]

    def matches(self, event: Event) -> bool:
        return all(child.matches(event) for child in self.children)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "and", "children": [child.to_dict() for child in self.children]}

    @property
    def filter_id(self) -> str:
        return "and(" + ",".join(child.filter_id for child in self.children) + ")"

    @property
    def topics(self) -> Tuple[str, ...]:
        pinned: List[str] = []
        for child in self.children:
            pinned.extend(child.topics)
        return tuple(pinned)


@dataclass(frozen=True)
class OrFilter(Filter):
    """Matches when at least one child filter matches."""

    children: Tuple[Filter, ...]

    def matches(self, event: Event) -> bool:
        return any(child.matches(event) for child in self.children)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "or", "children": [child.to_dict() for child in self.children]}

    @property
    def filter_id(self) -> str:
        return "or(" + ",".join(child.filter_id for child in self.children) + ")"

    @property
    def topics(self) -> Tuple[str, ...]:
        # An OR only pins topics down when *every* branch pins one.
        branch_topics = [child.topics for child in self.children]
        if all(branch_topics):
            flattened: List[str] = []
            for topics in branch_topics:
                flattened.extend(topics)
            return tuple(flattened)
        return ()


@dataclass(frozen=True)
class NotFilter(Filter):
    """Matches when the child filter does not."""

    child: Filter

    def matches(self, event: Event) -> bool:
        return not self.child.matches(event)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "not", "child": self.child.to_dict()}

    @property
    def filter_id(self) -> str:
        return f"not({self.child.filter_id})"


@dataclass(frozen=True)
class MatchAllFilter(Filter):
    """Matches every event — models a process interested in everything."""

    def matches(self, event: Event) -> bool:
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "all"}

    @property
    def filter_id(self) -> str:
        return "all"


@dataclass(frozen=True)
class MatchNoneFilter(Filter):
    """Matches nothing — a pure forwarder with no interest of its own."""

    def matches(self, event: Event) -> bool:
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "none"}

    @property
    def filter_id(self) -> str:
        return "none"


def filter_from_dict(payload: Mapping[str, Any]) -> Filter:
    """Rebuild a filter from its :meth:`Filter.to_dict` form.

    Used by the experiment result artifacts to round-trip interest
    assignments through JSON.  Dispatches on the ``kind`` discriminator.
    """
    kind = payload.get("kind")
    if kind == "topic":
        return TopicFilter(topic=payload["topic"])
    if kind == "content":
        return ContentFilter(
            conditions=tuple(
                AttributeCondition.from_dict(condition) for condition in payload.get("conditions", ())
            ),
            name=payload.get("name", ""),
        )
    if kind == "and":
        return AndFilter(children=tuple(filter_from_dict(child) for child in payload["children"]))
    if kind == "or":
        return OrFilter(children=tuple(filter_from_dict(child) for child in payload["children"]))
    if kind == "not":
        return NotFilter(child=filter_from_dict(payload["child"]))
    if kind == "all":
        return MatchAllFilter()
    if kind == "none":
        return MatchNoneFilter()
    raise ValueError(f"unknown filter kind {kind!r}")


class InterestFunction:
    """A process's complete interest: the union of its active filters.

    This is the paper's ``I(p, e)`` / ``ISINTERESTED(e)``: an event is
    interesting if at least one active filter matches it.  The object tracks
    filter additions and removals so the fairness accounting can charge per
    placed filter (§5, fairness aspect 2).
    """

    def __init__(self, filters: Optional[Iterable[Filter]] = None) -> None:
        self._filters: Dict[str, Filter] = {}
        for subscription_filter in filters or ():
            self.add(subscription_filter)

    def add(self, subscription_filter: Filter) -> bool:
        """Add a filter; returns ``False`` if an equal filter was present."""
        key = subscription_filter.filter_id
        if key in self._filters:
            return False
        self._filters[key] = subscription_filter
        return True

    def remove(self, subscription_filter: Filter) -> bool:
        """Remove a filter; returns ``False`` if it was not present."""
        return self._filters.pop(subscription_filter.filter_id, None) is not None

    def clear(self) -> None:
        """Drop every filter (full unsubscribe)."""
        self._filters.clear()

    def is_interested(self, event: Event) -> bool:
        """The paper's ``ISINTERESTED(e)``."""
        return any(subscription_filter.matches(event) for subscription_filter in self._filters.values())

    def matching_filters(self, event: Event) -> List[Filter]:
        """All active filters matched by the event."""
        return [
            subscription_filter
            for subscription_filter in self._filters.values()
            if subscription_filter.matches(event)
        ]

    @property
    def filters(self) -> List[Filter]:
        """Snapshot of the active filters."""
        return list(self._filters.values())

    @property
    def filter_count(self) -> int:
        """Number of active filters (the ``# filters`` term of Figure 2)."""
        return len(self._filters)

    @property
    def topics(self) -> List[str]:
        """Topics pinned by the active filters (duplicates removed, sorted)."""
        names = set()
        for subscription_filter in self._filters.values():
            names.update(subscription_filter.topics)
        return sorted(names)

    def __contains__(self, subscription_filter: Filter) -> bool:
        return subscription_filter.filter_id in self._filters

    def __len__(self) -> int:
        return len(self._filters)
