"""Geo link profile: the domain matrix as per-link latency/loss effects.

A :class:`GeoLinkProfile` is what the topology layer installs on a network
fabric (``network.set_link_profile(profile)``).  Both fabrics consult it on
their send paths: the effects of a message are those of the (unordered)
domain pair of its endpoints — extra latency added on top of the base
latency model, extra Bernoulli loss drawn from the profile's own named RNG
stream.

The profile is *physics installed at build time* and deliberately separate
from the fault layer's global perturbation (``set_perturbation``): a
:class:`~repro.faults.controller.FaultController` tearing down clears the
perturbation but must not strip a run's geography.  Validation, however, is
one code path — every resolved link is checked by the same
:func:`~repro.sim.network.validate_link_perturbation` the global actuator
uses.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..sim.network import validate_link_perturbation
from .domains import DomainMap
from .spec import TopologyError

__all__ = ["GeoLinkProfile"]

_NO_EFFECTS: Tuple[float, float] = (0.0, 0.0)


class GeoLinkProfile:
    """Per-link latency/loss effects resolved from a :class:`DomainMap`.

    Parameters
    ----------
    domain_map:
        The compiled topology.
    rng:
        Named random stream for loss draws (for example
        ``scheduler.rng.stream("topology-geo")``).  Required whenever any
        resolved link has a non-zero loss rate; loss-free profiles never
        draw, so the topology layer leaves every pre-existing draw sequence
        untouched.
    """

    def __init__(self, domain_map: DomainMap, rng: Optional[random.Random] = None) -> None:
        self._domain_of = domain_map.domain_of
        self.rng = rng
        effects: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for index, domain_a in enumerate(domain_map.domains):
            for domain_b in domain_map.domains[index:]:
                latency, loss = domain_map.link(domain_a, domain_b)
                try:
                    validate_link_perturbation(latency, loss, rng)
                except ValueError as error:
                    raise TopologyError(
                        f"invalid geo link {domain_a}<->{domain_b}: {error}"
                    ) from None
                if (latency, loss) != _NO_EFFECTS:
                    effects[(domain_a, domain_b)] = (latency, loss)
        self._effects = effects

    def effects(self, sender: str, recipient: str) -> Tuple[float, float]:
        """``(extra_latency, loss_rate)`` for one message between two nodes.

        Nodes outside the domain map (infrastructure endpoints, late
        joiners) see no geo effects.
        """
        domain_a = self._domain_of.get(sender)
        if domain_a is None:
            return _NO_EFFECTS
        domain_b = self._domain_of.get(recipient)
        if domain_b is None:
            return _NO_EFFECTS
        if domain_a > domain_b:
            domain_a, domain_b = domain_b, domain_a
        return self._effects.get((domain_a, domain_b), _NO_EFFECTS)

    @property
    def has_loss(self) -> bool:
        """Whether any resolved link can drop messages."""
        return any(loss > 0.0 for _, loss in self._effects.values())
