"""Trace analysis: infection trees and dissemination statistics from spans.

Backs ``python -m repro trace``.  Input is a span stream (from a
:class:`~repro.tracing.spans.MemoryTraceSink` or a JSON-lines trace
artifact); output is per-event infection trees (who infected whom, hop by
hop, including drops and pull recoveries) plus the aggregate numbers the
paper's dissemination claims are phrased in: hop-count distribution, path
latency, redundancy ratio (duplicate receives per delivery), and recovery
attribution (eager push vs pull).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .spans import (
    BRIDGE_HOP,
    DELIVER,
    DIGEST_ADVERT,
    DROP,
    DUPLICATE,
    PUBLISH,
    PULL_RECOVER,
    RECEIVE,
    RELAY,
    SpanRecord,
)

__all__ = ["EventTrace", "TraceAnalysis", "analyze_spans", "render_trace"]


@dataclass
class EventTrace:
    """All spans of one traced event, indexed for tree reconstruction."""

    trace_id: str
    spans: List[SpanRecord] = field(default_factory=list)

    def _index(self) -> None:
        self.by_id: Dict[int, SpanRecord] = {span.span_id: span for span in self.spans}
        self.children: Dict[int, List[SpanRecord]] = {}
        for span in self.spans:
            if span.parent_id is not None:
                self.children.setdefault(span.parent_id, []).append(span)
        for siblings in self.children.values():
            siblings.sort(key=lambda span: (span.ts, span.span_id))

    @property
    def root(self) -> Optional[SpanRecord]:
        """The ``publish`` span (the infection tree's root), if present."""
        for span in self.spans:
            if span.kind == PUBLISH:
                return span
        return None

    def kind_count(self, kind: str) -> int:
        return sum(1 for span in self.spans if span.kind == kind)

    def delivered_nodes(self) -> List[str]:
        """Nodes whose application saw the event, in delivery order."""
        return [span.node for span in self.spans if span.kind == DELIVER]

    def reaches_root(self, span: SpanRecord) -> bool:
        """Whether the span's parent chain ends at the ``publish`` root."""
        seen: Set[int] = set()
        current: Optional[SpanRecord] = span
        while current is not None:
            if current.kind == PUBLISH:
                return True
            if current.span_id in seen or current.parent_id is None:
                return False
            seen.add(current.span_id)
            current = self.by_id.get(current.parent_id)
        return False

    def unreachable_deliveries(self) -> List[SpanRecord]:
        """Deliver spans that do not chain back to the publish root."""
        return [
            span
            for span in self.spans
            if span.kind == DELIVER and not self.reaches_root(span)
        ]

    def delivery_latencies(self) -> List[float]:
        """Per-delivery ``deliver.ts - publish.ts`` (empty without a root)."""
        root = self.root
        if root is None:
            return []
        return [span.ts - root.ts for span in self.spans if span.kind == DELIVER]

    def pull_recovered_nodes(self) -> List[str]:
        """Nodes whose first copy of the payload arrived via a pull reply."""
        return [span.node for span in self.spans if span.kind == PULL_RECOVER]


@dataclass
class TraceAnalysis:
    """Per-event traces plus stream-wide aggregates."""

    events: Dict[str, EventTrace]
    total_spans: int

    def event_ids(self) -> List[str]:
        return list(self.events)

    def totals(self) -> Dict[str, float]:
        """Aggregate dissemination numbers over every traced event."""
        deliveries = duplicates = drops = recoveries = relays = adverts = bridge_hops = 0
        hop_counts: List[int] = []
        latencies: List[float] = []
        drop_reasons: Dict[str, int] = {}
        for event in self.events.values():
            deliveries += event.kind_count(DELIVER)
            duplicates += event.kind_count(DUPLICATE)
            recoveries += event.kind_count(PULL_RECOVER)
            relays += event.kind_count(RELAY)
            adverts += event.kind_count(DIGEST_ADVERT)
            bridge_hops += event.kind_count(BRIDGE_HOP)
            latencies.extend(event.delivery_latencies())
            for span in event.spans:
                if span.kind == DELIVER:
                    hop_counts.append(span.hops)
                elif span.kind == DROP:
                    drops += 1
                    reason = str(span.details.get("reason", "?"))
                    drop_reasons[reason] = drop_reasons.get(reason, 0) + 1
        eager = deliveries - sum(
            1
            for event in self.events.values()
            for span in event.spans
            if span.kind == DELIVER
            and span.parent_id is not None
            and event.by_id.get(span.parent_id) is not None
            and event.by_id[span.parent_id].kind == PULL_RECOVER
        )
        totals: Dict[str, float] = {
            "events_traced": len(self.events),
            "spans": self.total_spans,
            "deliveries": deliveries,
            "duplicate_receives": duplicates,
            "redundancy_ratio": duplicates / deliveries if deliveries else 0.0,
            "relays": relays,
            "digest_adverts": adverts,
            "bridge_hops": bridge_hops,
            "drops": drops,
            "pull_recoveries": recoveries,
            "deliveries_via_eager": eager,
            "deliveries_via_pull": deliveries - eager,
        }
        if hop_counts:
            hop_counts.sort()
            totals["hops_mean"] = sum(hop_counts) / len(hop_counts)
            totals["hops_p50"] = hop_counts[len(hop_counts) // 2]
            totals["hops_max"] = hop_counts[-1]
        if latencies:
            latencies.sort()
            totals["latency_mean"] = sum(latencies) / len(latencies)
            totals["latency_p95"] = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
            totals["latency_max"] = latencies[-1]
        for reason, count in sorted(drop_reasons.items()):
            totals[f"drops_{reason}"] = count
        return totals


def analyze_spans(spans: Sequence[SpanRecord]) -> TraceAnalysis:
    """Group a span stream by trace and index each event's infection tree."""
    events: Dict[str, EventTrace] = {}
    for span in spans:
        events.setdefault(span.trace_id, EventTrace(span.trace_id)).spans.append(span)
    for event in events.values():
        event.spans.sort(key=lambda span: (span.ts, span.span_id))
        event._index()
    # Present events in publication order (root ts, then id for orphans).
    ordered = sorted(
        events.values(),
        key=lambda event: (
            event.root.ts if event.root is not None else float("inf"),
            event.trace_id,
        ),
    )
    return TraceAnalysis(
        events={event.trace_id: event for event in ordered},
        total_spans=len(spans),
    )


# ---------------------------------------------------------------- rendering


def _span_line(span: SpanRecord) -> str:
    parts = [f"{span.kind} @{span.node} t={span.ts:.3f}"]
    if span.kind in (RECEIVE, DUPLICATE, PULL_RECOVER, DROP):
        parts.append(f"hop {span.hops}")
    extras = []
    for key in ("peer", "via", "reason", "message_kind", "fanout", "domain", "to_domain"):
        if key in span.details:
            extras.append(f"{key}={span.details[key]}")
    if extras:
        parts.append("(" + ", ".join(extras) + ")")
    return " ".join(parts)


def _render_subtree(event: EventTrace, span: SpanRecord, prefix: str, lines: List[str]) -> None:
    children = event.children.get(span.span_id, [])
    for index, child in enumerate(children):
        last = index == len(children) - 1
        branch = "└─ " if last else "├─ "
        lines.append(prefix + branch + _span_line(child))
        _render_subtree(event, child, prefix + ("   " if last else "│  "), lines)


def render_event_tree(event: EventTrace) -> str:
    """One event's infection tree as an indented text tree."""
    lines: List[str] = []
    root = event.root
    if root is None:
        lines.append(f"trace {event.trace_id} — no publish span (orphan fragments)")
        roots = [span for span in event.spans if span.parent_id not in event.by_id]
    else:
        lines.append(
            f"trace {event.trace_id} — published by {root.node} at t={root.ts:.3f}"
        )
        roots = [root]
    for span in roots:
        if root is None or span is not root:
            lines.append(_span_line(span))
        _render_subtree(event, span, "", lines)
    return "\n".join(lines)


def render_trace(
    analysis: TraceAnalysis,
    event: Optional[str] = None,
    max_events: int = 3,
    max_rows: int = 10,
) -> str:
    """Per-event trees plus aggregate tables (the ``repro trace`` output)."""
    from ..analysis.tables import Table, format_mapping

    if not analysis.events:
        return "(no spans in trace)"
    sections: List[str] = []

    if event is not None:
        selected = analysis.events.get(event)
        if selected is None:
            known = ", ".join(list(analysis.events)[:max_rows])
            raise ValueError(
                f"trace has no event {event!r}; traced events include: {known}"
            )
        sections.append(render_event_tree(selected))
    elif max_events <= 0:
        # Aggregate-only mode (`repro report` on a trace stream).
        sections.append(
            f"{len(analysis.events)} traced event(s); render infection trees "
            "with `python -m repro trace ARTIFACT`"
        )
    else:
        for trace in list(analysis.events.values())[:max_events]:
            sections.append(render_event_tree(trace))
        if len(analysis.events) > max_events:
            sections.append(
                f"... {len(analysis.events) - max_events} more traced event(s); "
                "use --event ID or --max-events to see them"
            )

    per_event = Table(
        [
            "event",
            "publisher",
            "deliveries",
            "duplicates",
            "drops",
            "pulls",
            "max_hops",
            "max_latency",
        ],
        title="per-event dissemination",
    )
    for trace in list(analysis.events.values())[:max_rows]:
        root = trace.root
        latencies = trace.delivery_latencies()
        hops = [span.hops for span in trace.spans if span.kind == DELIVER]
        per_event.add_row(
            event=trace.trace_id,
            publisher=root.node if root is not None else "?",
            deliveries=trace.kind_count(DELIVER),
            duplicates=trace.kind_count(DUPLICATE),
            drops=trace.kind_count(DROP),
            pulls=trace.kind_count(PULL_RECOVER),
            max_hops=max(hops) if hops else 0,
            max_latency=max(latencies) if latencies else 0.0,
        )
    sections.append(per_event.render())
    sections.append(format_mapping(analysis.totals(), title="trace aggregates"))
    return "\n\n".join(sections)
