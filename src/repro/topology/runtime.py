"""Per-run topology state attached to a built system.

:func:`~repro.registry.builtins.build_stack` compiles the spec, installs the
geo profile, scopes membership, and starts the bridge router; the resulting
handles are bundled into a :class:`TopologyRuntime` and attached to the
system object (``system.topology``).  Downstream consumers reach the
compiled map through it: the fault layer resolves domain-level partitions,
the telemetry collectors tag per-node instruments with their domain, and the
report layer labels its per-domain tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .bridge import BridgeRouter
from .domains import DomainMap
from .geo import GeoLinkProfile

__all__ = ["TopologyRuntime"]


@dataclass
class TopologyRuntime:
    """Handles of an active multi-domain topology on one run."""

    domain_map: DomainMap
    router: BridgeRouter
    geo: Optional[GeoLinkProfile] = None

    def domain(self, node_id: str) -> Optional[str]:
        """Domain of ``node_id`` (``None`` outside the map)."""
        return self.domain_map.domain(node_id)
