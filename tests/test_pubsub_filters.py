"""Tests for filters and the interest function (the paper's I(p, e))."""

from __future__ import annotations

import pytest

from repro.pubsub import (
    AndFilter,
    AttributeCondition,
    ContentFilter,
    Event,
    InterestFunction,
    MatchAllFilter,
    MatchNoneFilter,
    NotFilter,
    OrFilter,
    TopicFilter,
)


def make_event(**attributes) -> Event:
    return Event(event_id=f"e-{sorted(attributes.items())}", publisher="p", attributes=attributes)


class TestTopicFilter:
    def test_matches_same_topic_only(self):
        news = TopicFilter("news")
        assert news.matches(make_event(topic="news"))
        assert not news.matches(make_event(topic="sports"))
        assert not news.matches(make_event(price=3))

    def test_filter_id_and_topics(self):
        news = TopicFilter("news")
        assert news.filter_id == "topic:news"
        assert news.topics == ("news",)

    def test_callable_form(self):
        assert TopicFilter("news")(make_event(topic="news"))


class TestAttributeCondition:
    @pytest.mark.parametrize(
        "operator,value,attribute_value,expected",
        [
            ("==", 5, 5, True),
            ("==", 5, 6, False),
            ("!=", 5, 6, True),
            ("<", 5, 4, True),
            ("<=", 5, 5, True),
            (">", 5, 6, True),
            (">=", 5, 4, False),
            ("in", ("a", "b"), "a", True),
            ("in", ("a", "b"), "c", False),
            ("contains", "ab", "xaby", True),
            ("prefix", "foo", "foobar", True),
            ("prefix", "bar", "foobar", False),
        ],
    )
    def test_operators(self, operator, value, attribute_value, expected):
        condition = AttributeCondition("x", operator, value)
        assert condition.holds_for(make_event(x=attribute_value)) is expected

    def test_missing_attribute_never_matches(self):
        condition = AttributeCondition("x", "==", 1)
        assert not condition.holds_for(make_event(y=1))

    def test_incomparable_types_do_not_match(self):
        condition = AttributeCondition("x", "<", 5)
        assert not condition.holds_for(make_event(x="a string"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            AttributeCondition("x", "~=", 1)

    def test_describe(self):
        assert AttributeCondition("x", ">=", 3).describe() == "x>=3"


class TestContentFilter:
    def test_all_conditions_must_hold(self):
        filter_ = ContentFilter(
            conditions=(
                AttributeCondition("category", "==", "metals"),
                AttributeCondition("level", ">=", 5),
            )
        )
        assert filter_.matches(make_event(category="metals", level=7))
        assert not filter_.matches(make_event(category="metals", level=3))
        assert not filter_.matches(make_event(category="energy", level=7))

    def test_empty_filter_matches_everything(self):
        assert ContentFilter().matches(make_event(anything=1))

    def test_build_shorthand(self):
        filter_ = ContentFilter.build(category="metals", level=5)
        assert filter_.matches(make_event(category="metals", level=5))
        assert not filter_.matches(make_event(category="metals", level=6))

    def test_topics_pinned_by_equality_on_topic(self):
        filter_ = ContentFilter(
            conditions=(AttributeCondition("topic", "==", "news"),)
        )
        assert filter_.topics == ("news",)
        assert ContentFilter.build(level=3).topics == ()

    def test_filter_ids_are_stable_and_distinct(self):
        first = ContentFilter.build(category="a")
        second = ContentFilter.build(category="a")
        third = ContentFilter.build(category="b")
        assert first.filter_id == second.filter_id
        assert first.filter_id != third.filter_id


class TestCompositeFilters:
    def test_and_or_not(self):
        news = TopicFilter("news")
        urgent = ContentFilter.build(priority="high")
        both = AndFilter(children=(news, urgent))
        either = OrFilter(children=(news, urgent))
        negated = NotFilter(child=news)
        event_news_high = make_event(topic="news", priority="high")
        event_news_low = make_event(topic="news", priority="low")
        event_other = make_event(topic="sports", priority="low")
        assert both.matches(event_news_high)
        assert not both.matches(event_news_low)
        assert either.matches(event_news_low)
        assert not either.matches(event_other)
        assert negated.matches(event_other)
        assert not negated.matches(event_news_low)

    def test_match_all_and_none(self):
        assert MatchAllFilter().matches(make_event(x=1))
        assert not MatchNoneFilter().matches(make_event(x=1))

    def test_or_topics_only_when_all_branches_pin(self):
        pinned = OrFilter(children=(TopicFilter("a"), TopicFilter("b")))
        unpinned = OrFilter(children=(TopicFilter("a"), MatchAllFilter()))
        assert set(pinned.topics) == {"a", "b"}
        assert unpinned.topics == ()

    def test_and_topics_union(self):
        combined = AndFilter(children=(TopicFilter("a"), ContentFilter.build(level=1)))
        assert combined.topics == ("a",)


class TestInterestFunction:
    def test_union_of_filters(self):
        interest = InterestFunction([TopicFilter("news"), TopicFilter("sports")])
        assert interest.is_interested(make_event(topic="news"))
        assert interest.is_interested(make_event(topic="sports"))
        assert not interest.is_interested(make_event(topic="tech"))

    def test_duplicate_filters_counted_once(self):
        interest = InterestFunction()
        assert interest.add(TopicFilter("news"))
        assert not interest.add(TopicFilter("news"))
        assert interest.filter_count == 1

    def test_remove_and_clear(self):
        interest = InterestFunction([TopicFilter("news")])
        assert interest.remove(TopicFilter("news"))
        assert not interest.remove(TopicFilter("news"))
        interest.add(TopicFilter("a"))
        interest.add(TopicFilter("b"))
        interest.clear()
        assert interest.filter_count == 0
        assert not interest.is_interested(make_event(topic="a"))

    def test_matching_filters_and_topics(self):
        news = TopicFilter("news")
        high = ContentFilter.build(priority="high")
        interest = InterestFunction([news, high])
        matched = interest.matching_filters(make_event(topic="news", priority="high"))
        assert {f.filter_id for f in matched} == {news.filter_id, high.filter_id}
        assert interest.topics == ["news"]

    def test_contains_and_len(self):
        interest = InterestFunction([TopicFilter("news")])
        assert TopicFilter("news") in interest
        assert len(interest) == 1

    def test_empty_interest_matches_nothing(self):
        assert not InterestFunction().is_interested(make_event(topic="news"))
