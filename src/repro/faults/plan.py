"""Declarative fault plans: the vocabulary of instability.

The paper's experiments are defined by their *failure pattern* as much as by
their workload (§3.2, §5): churning participants, abrupt crashes, transient
partitions, and degraded links all impose maintenance cost that a fair
dissemination system must share.  A :class:`FaultPlan` captures one such
pattern declaratively — a tuple of composable :class:`FaultSpec` entries,
each with a start/stop window and a named RNG stream — so the *same* plan
JSON drives the discrete-event simulator and the live asyncio runtime (the
:class:`~repro.faults.controller.FaultController` does the driving).

Entry kinds
-----------
``crash`` / ``recover`` / ``leave``
    One-shot schedules: at time ``at``, apply the action to every node in
    ``nodes``.
``churn``
    Continuous random churn: every ``period`` units within ``[at, until]``,
    each alive node crashes with ``down_probability`` and each crashed node
    recovers with ``up_probability``; ``protected`` nodes never churn.
``partition``
    Transient split: at ``at`` install a partition (explicit ``groups``, a
    ``fraction`` split over the sorted node universe, or named topology
    ``domains`` when the run has a :mod:`repro.topology` domain map), heal
    ``heal_after`` units later.
``perturb``
    Link-level degradation within ``[at, until]``: add ``extra_latency`` to
    every delivery and drop each message with ``loss_rate``.

Determinism contract
--------------------
Every stochastic entry draws from a *named* stream of the engine's
:class:`~repro.sim.rng.RngRegistry` (``rng_stream``, defaulting to a name
derived from the entry's kind and position), never from the streams protocol
code uses — so adding a fault entry perturbs only its own draws, and two
serial runs of the same plan produce byte-identical traces.  An empty plan
schedules nothing and draws nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "PLAN_SCHEMA",
    "FaultPlanError",
    "FaultSpec",
    "FaultPlan",
    "jsonify",
    "tuplify",
]

#: Recognised entry kinds, in documentation order.
FAULT_KINDS = ("crash", "recover", "leave", "churn", "partition", "perturb")

#: Entry kinds that act on individual processes (need a process registry).
_NODE_KINDS = ("crash", "recover", "leave", "churn")

#: The FaultSpec fields each kind actually reads (beyond ``kind`` itself).
#: ``validate`` rejects entries setting anything else — a field the
#: controller ignores would otherwise let a plan silently mean less than
#: its author wrote (e.g. ``nodes`` on a ``perturb`` entry).
_KIND_FIELDS = {
    "crash": {"at", "nodes"},
    "recover": {"at", "nodes"},
    "leave": {"at", "nodes"},
    "churn": {
        "at",
        "until",
        "period",
        "down_probability",
        "up_probability",
        "protected",
        "rng_stream",
    },
    "partition": {"at", "heal_after", "fraction", "groups", "domains"},
    "perturb": {"at", "until", "extra_latency", "loss_rate", "rng_stream"},
}

#: Schema tag written into fault-plan JSON files.
PLAN_SCHEMA = "fault-plan/v1"


class FaultPlanError(ValueError):
    """An invalid or unsatisfiable fault plan (registry-style message)."""


def _suggest(name: str, candidates: Iterable[str]) -> str:
    # Lazy import keeps this package importable before repro.registry
    # finishes initialising (registry.specs imports this module).
    from ..registry.base import suggest

    return suggest(name, candidates)


def tuplify(value):
    """Deep list→tuple conversion (inverse of :func:`jsonify`).

    The one converter pair shared by every encoding of fault-plan entries:
    the JSON codec here, the ``faults.plan`` spec section, and the flat
    config's ``fault_plan`` field — so the three stay exact inverses of one
    another by construction.
    """
    if isinstance(value, (list, tuple)):
        return tuple(tuplify(entry) for entry in value)
    return value


def jsonify(value):
    """Deep tuple→list conversion for JSON encoding (see :func:`tuplify`)."""
    if isinstance(value, (list, tuple)):
        return [jsonify(entry) for entry in value]
    return value


@dataclass(frozen=True)
class FaultSpec:
    """One composable fault entry.

    Fields irrelevant to the chosen ``kind`` are carried at their defaults
    (the same convention as the component specs in
    :mod:`repro.registry.specs`), which keeps the JSON codec and the
    flat-config embedding trivial; :meth:`FaultPlan.validate` enforces the
    per-kind subset (:data:`_KIND_FIELDS`): an entry setting a field its
    kind does not read is rejected rather than silently meaning less than
    its author wrote.
    """

    kind: str = "crash"
    #: Window start in time units (one-shot kinds fire exactly here).
    at: float = 0.0
    #: Window end; ``0.0`` means "until the run ends / controller stops".
    until: float = 0.0
    #: Target nodes for ``crash`` / ``recover`` / ``leave``.
    nodes: Tuple[str, ...] = ()
    #: Churn tick period in time units.
    period: float = 1.0
    down_probability: float = 0.0
    up_probability: float = 0.5
    #: Nodes the churn entry never touches (publishers, anchors).
    protected: Tuple[str, ...] = ()
    #: Partition heal delay after ``at``.
    heal_after: float = 0.0
    #: Partition split: first ``fraction`` of the sorted node universe.
    fraction: float = 0.5
    #: Explicit partition assignment ``((node_id, group), ...)``; overrides
    #: ``fraction`` when non-empty.
    groups: Tuple[Tuple[str, int], ...] = ()
    #: Topology-domain partition: isolate the named domains of the run's
    #: :class:`~repro.topology.domains.DomainMap` from everything else.
    #: Resolved to a group map at install time by the controller; requires a
    #: topology and is mutually exclusive with ``groups``/``fraction``.
    domains: Tuple[str, ...] = ()
    #: Additive per-message delivery latency while the perturbation is live.
    extra_latency: float = 0.0
    #: Additional Bernoulli loss while the perturbation is live.
    loss_rate: float = 0.0
    #: Named RNG stream; empty picks ``fault-<index>-<kind>`` (the config
    #: compiler pins ``"churn"`` for flat-config churn, matching the legacy
    #: ``ChurnInjector`` byte for byte).
    rng_stream: str = ""

    # ------------------------------------------------------------- codecs

    def to_dict(self) -> Dict[str, object]:
        """Compact JSON form: ``kind`` plus every non-default field."""
        payload: Dict[str, object] = {"kind": self.kind}
        for spec_field in fields(self):
            if spec_field.name == "kind":
                continue
            value = getattr(self, spec_field.name)
            if value != spec_field.default:
                payload[spec_field.name] = jsonify(value)
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "FaultSpec":
        """Rebuild an entry; unknown fields raise :class:`FaultPlanError`."""
        if not isinstance(payload, Mapping):
            raise FaultPlanError(
                f"fault entry must be a mapping, got {type(payload).__name__}"
            )
        known = {spec_field.name for spec_field in fields(FaultSpec)}
        unknown = [key for key in payload if key not in known]
        if unknown:
            raise FaultPlanError(
                f"unknown fault entry fields {sorted(unknown)}"
                f"{_suggest(unknown[0], known)}; known fields: {', '.join(sorted(known))}"
            )
        defaults = {spec_field.name: spec_field.default for spec_field in fields(FaultSpec)}
        values = {}
        for key, value in payload.items():
            value = tuplify(value)
            default = defaults[key]
            # Type-check against the field's default so mistyped JSON (a
            # quoted number, a bare string where a list belongs) fails here
            # as a FaultPlanError, not as a raw TypeError downstream.
            # Integers are canonicalised into float-typed fields so the
            # same plan always embeds (and hashes) identically.
            if isinstance(default, float):
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise FaultPlanError(
                        f"fault entry field {key!r} must be a number, got {value!r}"
                    )
                value = float(value)
            elif isinstance(default, str) and not isinstance(value, str):
                raise FaultPlanError(
                    f"fault entry field {key!r} must be a string, got {value!r}"
                )
            elif isinstance(default, tuple):
                if not isinstance(value, tuple):
                    raise FaultPlanError(
                        f"fault entry field {key!r} must be a list, got {value!r}"
                    )
                if key in ("nodes", "protected", "domains"):
                    for element in value:
                        if not isinstance(element, str):
                            raise FaultPlanError(
                                f"fault entry field {key!r} must be a list of "
                                f"node ids, got element {element!r}"
                            )
                elif key == "groups":
                    for element in value:
                        if not (
                            isinstance(element, tuple)
                            and len(element) == 2
                            and isinstance(element[0], str)
                            and isinstance(element[1], int)
                            and not isinstance(element[1], bool)
                        ):
                            raise FaultPlanError(
                                "fault entry field 'groups' must be a list of "
                                f"[node_id, group] pairs, got element {element!r}"
                            )
            values[key] = value
        return FaultSpec(**values)

    def to_pairs(self) -> Tuple[Tuple[str, object], ...]:
        """Deterministic tuple-of-pairs encoding (flat-config embedding).

        Field order follows the dataclass, so two equal specs always encode
        identically — the property the result-cache key relies on.
        """
        pairs: List[Tuple[str, object]] = []
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "kind" or value != spec_field.default:
                pairs.append((spec_field.name, value))
        return tuple(pairs)

    @staticmethod
    def from_pairs(pairs: Sequence) -> "FaultSpec":
        """Inverse of :meth:`to_pairs` (also accepts the JSON list form)."""
        if isinstance(pairs, (str, Mapping)) or not isinstance(pairs, (list, tuple)):
            raise FaultPlanError(
                "fault plan entry must be a sequence of (field, value) "
                f"pairs, got {pairs!r}"
            )
        try:
            mapping = {key: value for key, value in pairs}
        except (TypeError, ValueError):
            raise FaultPlanError(
                "fault plan entry must be a sequence of (field, value) "
                f"pairs, got {pairs!r}"
            )
        return FaultSpec.from_dict(mapping)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated-on-demand sequence of fault entries."""

    entries: Tuple[FaultSpec, ...] = ()

    # ------------------------------------------------------------- queries

    def is_empty(self) -> bool:
        """Whether the plan schedules nothing at all."""
        return not self.entries

    def needs_registry(self) -> bool:
        """Whether any entry acts on processes (vs. the network only)."""
        return any(entry.kind in _NODE_KINDS for entry in self.entries)

    def needs_network(self) -> bool:
        """Whether any entry acts on the network fabric."""
        return any(entry.kind in ("partition", "perturb") for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------- codecs

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "schema": PLAN_SCHEMA,
            "faults": [entry.to_dict() for entry in self.entries],
        }

    @staticmethod
    def from_dict(payload) -> "FaultPlan":
        """Accepts ``{"faults": [...]}`` (schema optional) or a bare list."""
        if isinstance(payload, Mapping):
            schema = payload.get("schema", PLAN_SCHEMA)
            if schema != PLAN_SCHEMA:
                raise FaultPlanError(
                    f"unsupported fault plan schema {schema!r}; expected {PLAN_SCHEMA!r}"
                )
            unknown = [key for key in payload if key not in ("schema", "faults")]
            if unknown:
                raise FaultPlanError(
                    f"unknown fault plan fields {sorted(unknown)}"
                    f"{_suggest(unknown[0], ('schema', 'faults'))}; "
                    "known fields: faults, schema"
                )
            entries = payload.get("faults", [])
        else:
            entries = payload
        if not isinstance(entries, (list, tuple)):
            raise FaultPlanError(
                f"fault plan entries must be a list, got {type(entries).__name__}"
            )
        return FaultPlan(tuple(FaultSpec.from_dict(entry) for entry in entries))

    def to_json(self) -> str:
        """Canonical JSON text of the plan."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}")
        return FaultPlan.from_dict(payload)

    @staticmethod
    def from_file(path: str) -> "FaultPlan":
        """Load a plan from a JSON file (``--fault plan.json``)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise FaultPlanError(f"cannot read fault plan {path!r}: {error}")
        return FaultPlan.from_json(text)

    def entry_pairs(self) -> Tuple[Tuple[Tuple[str, object], ...], ...]:
        """The plan as tuple-of-pairs entries (flat-config embedding)."""
        return tuple(entry.to_pairs() for entry in self.entries)

    @staticmethod
    def from_entry_pairs(pairs_entries: Sequence) -> "FaultPlan":
        """Inverse of :meth:`entry_pairs`."""
        return FaultPlan(tuple(FaultSpec.from_pairs(pairs) for pairs in pairs_entries))

    # -------------------------------------------------------- flat adapter

    @staticmethod
    def from_flat(config) -> "FaultPlan":
        """Compile the fault-relevant fields of a flat config into a plan.

        ``config`` is duck-typed (an
        :class:`~repro.experiments.config.ExperimentConfig` or anything with
        the same attributes).  The churn entry reproduces the legacy
        ``ChurnInjector`` wiring exactly — same ``"churn"`` RNG stream, same
        period default (the gossip round), same protected publishers — so
        pre-existing churn configs keep their byte-identical traces.
        """
        entries: List[FaultSpec] = []
        if config.churn_down_probability > 0:
            entries.append(
                FaultSpec(
                    kind="churn",
                    at=config.fault_churn_start,
                    until=config.fault_churn_stop,
                    period=config.fault_churn_period or config.round_period,
                    down_probability=config.churn_down_probability,
                    up_probability=config.churn_up_probability,
                    protected=tuple(config.publisher_ids()),
                    rng_stream="churn",
                )
            )
        elif (
            config.fault_churn_start
            or config.fault_churn_stop
            or config.fault_churn_period
        ):
            # A tuned-but-disabled entry would silently measure a calmer
            # run than the config says (while still changing its cache
            # key); refuse instead.
            raise FaultPlanError(
                "fault_churn_start/stop/period are set but "
                "churn_down_probability is 0, so no churn would run; set "
                "faults.churn.down_probability too"
            )
        if config.fault_partition_heal_after > 0:
            entries.append(
                FaultSpec(
                    kind="partition",
                    at=config.fault_partition_at,
                    heal_after=config.fault_partition_heal_after,
                    fraction=config.fault_partition_fraction,
                )
            )
        elif config.fault_partition_at or config.fault_partition_fraction != 0.5:
            raise FaultPlanError(
                "fault_partition_at/fraction are set but "
                "fault_partition_heal_after is 0, so no partition would be "
                "installed; set faults.partition.heal_after too"
            )
        if config.fault_perturb_latency > 0 or config.fault_perturb_loss > 0:
            entries.append(
                FaultSpec(
                    kind="perturb",
                    at=config.fault_perturb_start,
                    until=config.fault_perturb_stop,
                    extra_latency=config.fault_perturb_latency,
                    loss_rate=config.fault_perturb_loss,
                    rng_stream="fault-perturb",
                )
            )
        elif config.fault_perturb_start or config.fault_perturb_stop:
            raise FaultPlanError(
                "fault_perturb_start/stop are set but both "
                "fault_perturb_latency and fault_perturb_loss are 0, so no "
                "perturbation would apply; set faults.perturb.extra_latency "
                "or faults.perturb.loss_rate too"
            )
        for pairs in config.fault_plan:
            entries.append(FaultSpec.from_pairs(pairs))
        return FaultPlan(tuple(entries))

    # ---------------------------------------------------------- validation

    def validate(
        self,
        node_ids: Optional[Sequence[str]] = None,
        total_time: Optional[float] = None,
    ) -> "FaultPlan":
        """Fail fast on an invalid or unsatisfiable plan.

        ``node_ids`` (when known) pins the node universe: entries naming
        unknown nodes are rejected here, at build time, instead of being
        skipped at fire time.  ``total_time`` (when known) rejects entries
        that cannot fire before the run ends.  Returns ``self`` so call
        sites can chain.  Raises :class:`FaultPlanError`.
        """
        universe = set(node_ids) if node_ids is not None else None
        for index, entry in enumerate(self.entries):
            where = f"fault entry #{index} ({entry.kind!r})"
            if entry.kind not in FAULT_KINDS:
                raise FaultPlanError(
                    f"{where}: unknown fault kind{_suggest(entry.kind, FAULT_KINDS)}; "
                    f"known kinds: {', '.join(FAULT_KINDS)}"
                )
            read = _KIND_FIELDS[entry.kind]
            ignored = [
                spec_field.name
                for spec_field in fields(entry)
                if spec_field.name != "kind"
                and spec_field.name not in read
                and getattr(entry, spec_field.name) != spec_field.default
            ]
            if ignored:
                raise FaultPlanError(
                    f"{where}: field(s) {sorted(ignored)} are not read by kind "
                    f"{entry.kind!r}; it only reads: {', '.join(sorted(read))}"
                )
            if entry.at < 0:
                raise FaultPlanError(f"{where}: 'at' must be non-negative, got {entry.at}")
            if entry.until < 0 or (entry.until > 0 and entry.until < entry.at):
                raise FaultPlanError(
                    f"{where}: 'until' must be 0 (open-ended) or >= 'at', got {entry.until}"
                )
            if total_time is not None and entry.at > total_time:
                raise FaultPlanError(
                    f"{where}: starts at {entry.at} but the run ends at {total_time}; "
                    "the entry can never fire"
                )
            if entry.kind in ("crash", "recover", "leave"):
                if not entry.nodes:
                    raise FaultPlanError(f"{where}: 'nodes' must name at least one node")
                self._check_nodes(where, entry.nodes, universe)
            elif entry.kind == "churn":
                if entry.period <= 0:
                    raise FaultPlanError(f"{where}: 'period' must be positive, got {entry.period}")
                for name in ("down_probability", "up_probability"):
                    value = getattr(entry, name)
                    if not 0.0 <= value <= 1.0:
                        raise FaultPlanError(
                            f"{where}: {name!r} must be within [0, 1], got {value}"
                        )
                self._check_nodes(where, entry.protected, universe)
            elif entry.kind == "partition":
                if entry.heal_after <= 0:
                    raise FaultPlanError(
                        f"{where}: 'heal_after' must be positive, got {entry.heal_after}"
                    )
                if entry.domains:
                    # Domain names resolve against the run's topology at
                    # install time (the controller holds the DomainMap);
                    # here we only reject ambiguous combinations.
                    if entry.groups:
                        raise FaultPlanError(
                            f"{where}: 'domains' and 'groups' are mutually "
                            "exclusive; name domains or spell out groups, not both"
                        )
                elif entry.groups:
                    self._check_nodes(where, [node for node, _ in entry.groups], universe)
                elif not 0.0 < entry.fraction < 1.0:
                    raise FaultPlanError(
                        f"{where}: 'fraction' must be strictly between 0 and 1, "
                        f"got {entry.fraction}"
                    )
            elif entry.kind == "perturb":
                if entry.extra_latency < 0:
                    raise FaultPlanError(
                        f"{where}: 'extra_latency' must be non-negative, got {entry.extra_latency}"
                    )
                if not 0.0 <= entry.loss_rate <= 1.0:
                    raise FaultPlanError(
                        f"{where}: 'loss_rate' must be within [0, 1], got {entry.loss_rate}"
                    )
        # The network applies one partition map and one perturbation at a
        # time (install overwrites, lift/heal clears unconditionally), so
        # overlapping same-kind windows would silently measure the wrong
        # physics.  Reject them here instead.
        self._check_no_window_overlap(
            "partition",
            [
                (index, entry.at, entry.at + entry.heal_after)
                for index, entry in enumerate(self.entries)
                if entry.kind == "partition"
            ],
        )
        self._check_no_window_overlap(
            "perturb",
            [
                (index, entry.at, entry.until if entry.until > 0 else float("inf"))
                for index, entry in enumerate(self.entries)
                if entry.kind == "perturb"
            ],
        )
        return self

    @staticmethod
    def _check_no_window_overlap(kind: str, windows) -> None:
        ordered = sorted(windows, key=lambda window: (window[1], window[2]))
        for (index_a, _, end_a), (index_b, start_b, _) in zip(ordered, ordered[1:]):
            if start_b < end_a:
                raise FaultPlanError(
                    f"fault entries #{index_a} and #{index_b}: overlapping "
                    f"{kind} windows; the network applies one {kind} at a "
                    "time, so stagger the entries instead"
                )

    @staticmethod
    def _check_nodes(where: str, nodes, universe) -> None:
        if universe is None:
            return
        unknown = sorted(set(nodes) - universe)
        if unknown:
            raise FaultPlanError(
                f"{where}: unknown node ids {unknown}"
                f"{_suggest(unknown[0], universe)}; the run has {len(universe)} nodes"
            )

    # ------------------------------------------------------------- helpers

    def with_entry(self, entry: FaultSpec) -> "FaultPlan":
        """Copy with one entry appended."""
        return replace(self, entries=self.entries + (entry,))

    def describe(self) -> str:
        """Readable one-line-per-entry listing."""
        if not self.entries:
            return "(empty fault plan)"
        lines = []
        for index, entry in enumerate(self.entries):
            detail = ", ".join(
                f"{key}={value!r}" for key, value in entry.to_pairs() if key != "kind"
            )
            lines.append(f"#{index} {entry.kind}: {detail or '(defaults)'}")
        return "\n".join(lines)
