"""Tests for the component registry and the declarative StackSpec.

Covers the back-compat contract of the construction redesign:

* nested ``to_dict``/``from_dict`` round-trips and the flat↔nested bijection
  (``StackSpec.from_config(c).to_config() == c`` for every config);
* the legacy flat-dict adapter: a PR-1 cache artifact's config dict loads
  through ``StackSpec.from_dict`` and resolves to the *identical* cache key
  (pinned sha256 literals);
* pinned experiment results for two scenarios — the registry-driven build
  path must be bit-identical to the pre-redesign ``if/elif`` ladder;
* registry error messages (did-you-mean on unknown components and paths);
* the CLI's dotted ``--set``/``--sweep``/``describe`` surface;
* the churn-without-registry warning in ``run_experiment``;
* spec-mode ``NodeHost``: gossip and a non-gossip baseline running live
  from the same StackSpec the simulator uses.
"""

from __future__ import annotations

import asyncio
import hashlib
import json

import pytest

from repro.experiments import (
    ExperimentConfig,
    StackSpec,
    config_hash,
    get_scenario,
    iter_scenarios,
    run_experiment,
)
from repro.experiments.cli import main as cli_main
from repro.gossip import GossipSystem
from repro.registry import (
    INTEREST,
    MEMBERSHIP,
    POLICIES,
    SYSTEMS,
    Param,
    RegistryError,
    build_interest_model,
    build_popularity,
    parse_spec_overrides,
    resolve_config_key,
)
from repro.runtime.host import NodeHost
from repro.runtime.transport import MemoryTransport
from repro.sim.rng import RngRegistry

# --------------------------------------------------------------------------
# Pinned pre-redesign values (computed on the PR-2 tree, before the registry
# existed).  If these change, cached PR-1/PR-2 artifacts stop resolving and
# the redesign is NOT behavior-preserving.
# --------------------------------------------------------------------------

SMOKE_CONFIG_HASH = "1cf8fcce9dce9547b8ba7d369156e39045a0194e020f154fe35dce71c1866442"
SMOKE_RESULT_SHA = "01218cc91332987a1658984959b634132ff53df4f721c9e5ed5f40b989f78d83"
SMOKE_BROKERS_CONFIG_HASH = "65d5faff74bf5437fbe010ef5bee2c2dfe13bc5d18f14a10e5d79e8f79120753"
SMOKE_BROKERS_RESULT_SHA = "f57d57153497c6feab047314705f8fb4bc3fa773c2cd43fbdb7a39d8fc531a63"


def _smoke_config() -> ExperimentConfig:
    return get_scenario("smoke").config


def _smoke_brokers_config() -> ExperimentConfig:
    return _smoke_config().with_overrides(system="brokers", name="smoke-brokers")


def _result_sha(result) -> str:
    blob = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TestSpecRoundTrips:
    def test_flat_nested_bijection_for_every_scenario(self):
        for scenario in iter_scenarios():
            spec = StackSpec.from_config(scenario.config)
            assert spec.to_config() == scenario.config, scenario.name

    def test_nested_dict_round_trip(self):
        for scenario in iter_scenarios():
            spec = scenario.spec
            payload = spec.to_dict()
            json.dumps(payload)  # must be JSON-serializable
            assert StackSpec.from_dict(payload) == spec, scenario.name

    def test_defaults_agree_with_flat_config_defaults(self):
        assert StackSpec.from_config(ExperimentConfig()) == StackSpec()

    def test_extra_survives_both_encodings(self):
        config = ExperimentConfig(extra=(("buffer_capacity", 64), ("note", "x")))
        spec = StackSpec.from_config(config)
        assert spec.extra_dict() == {"buffer_capacity": 64, "note": "x"}
        assert StackSpec.from_dict(spec.to_dict()).to_config() == config

    def test_dotted_get_and_with_value(self):
        spec = StackSpec()
        assert spec.get("system.fanout") == 3
        assert spec.with_value("system.fanout", 7).system.fanout == 7
        # legacy flat names are path aliases
        assert spec.with_value("fanout", 7) == spec.with_value("system.fanout", 7)
        # int → float widening for float-typed fields
        assert spec.with_value("duration", 5).duration == 5.0
        assert isinstance(spec.with_value("duration", 5).duration, float)


class TestLegacyFlatAdapter:
    def test_pr1_artifact_config_dict_loads_and_keeps_cache_key(self):
        # Exactly what a PR-1 cache artifact carries in its "config" field.
        legacy = _smoke_config().to_dict()
        spec = StackSpec.from_dict(legacy)
        assert spec == _smoke_config().spec()
        assert config_hash(spec.to_config()) == SMOKE_CONFIG_HASH
        assert config_hash(ExperimentConfig.from_dict(legacy)) == SMOKE_CONFIG_HASH

    def test_legacy_and_nested_dicts_resolve_identically(self):
        for config in (_smoke_config(), _smoke_brokers_config()):
            from_legacy = StackSpec.from_dict(config.to_dict())
            from_nested = StackSpec.from_dict(StackSpec.from_config(config).to_dict())
            assert from_legacy == from_nested
            assert config_hash(from_legacy.to_config()) == config_hash(config)

    def test_spec_round_trip_never_perturbs_cache_keys(self):
        for scenario in iter_scenarios():
            assert config_hash(scenario.spec.to_config()) == config_hash(scenario.config)


class TestPinnedResults:
    """The registry build path is bit-identical to the pre-redesign ladder."""

    def test_smoke_result_unchanged(self):
        assert config_hash(_smoke_config()) == SMOKE_CONFIG_HASH
        assert _result_sha(run_experiment(_smoke_config())) == SMOKE_RESULT_SHA

    def test_smoke_brokers_result_unchanged(self):
        config = _smoke_brokers_config()
        assert config_hash(config) == SMOKE_BROKERS_CONFIG_HASH
        assert _result_sha(run_experiment(config)) == SMOKE_BROKERS_RESULT_SHA


class TestRegistryErrors:
    def test_unknown_system_suggests_and_lists(self):
        with pytest.raises(RegistryError) as excinfo:
            SYSTEMS.get("gosip")
        message = str(excinfo.value)
        assert "did you mean" in message and "'gossip'" in message
        assert "fair-gossip" in message  # full listing present

    def test_registry_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            MEMBERSHIP.get("bogus")

    def test_policy_aliases_resolve(self):
        assert POLICIES.get("figure2").name == "topic"
        assert POLICIES.get("topic-based").name == "topic"

    def test_unknown_dotted_path_suggests(self):
        with pytest.raises(RegistryError) as excinfo:
            StackSpec().with_value("system.fanoot", 5)
        assert "system.fanout" in str(excinfo.value)

    def test_unknown_nested_dict_field_suggests(self):
        with pytest.raises(RegistryError) as excinfo:
            StackSpec.from_dict({"system": {"kind": "gossip", "fanouts": 3}})
        assert "fanout" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError):
            SYSTEMS.register("gossip", lambda ctx: None)

    def test_duplicate_alias_rejected(self):
        # "figure2" is already an alias of the built-in "topic" policy; a new
        # component must not silently rebind it.
        with pytest.raises(RegistryError, match="figure2"):
            POLICIES.register("my-policy", lambda spec: None, aliases=("figure2",))
        assert "my-policy" not in POLICIES
        assert POLICIES.get("figure2").name == "topic"

    def test_parse_spec_overrides(self):
        overrides = parse_spec_overrides(["system.fanout=5", "membership.kind=lpbcast"])
        assert overrides == {"system.fanout": 5, "membership.kind": "lpbcast"}
        assert resolve_config_key("system.fanout") == "fanout"
        with pytest.raises(RegistryError):
            parse_spec_overrides(["extra=nope"])
        with pytest.raises(RegistryError):
            parse_spec_overrides(["no-equals-sign"])


class TestCliSurface:
    def test_describe_scenario(self, capsys):
        assert cli_main(["describe", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "system.kind = 'gossip'" in out
        assert "membership.kind = 'cyclon'" in out
        assert "parameters" in out

    def test_describe_component(self, capsys):
        assert cli_main(["describe", "fair-gossip"]) == 0
        out = capsys.readouterr().out
        assert "adapt_fanout" in out

    def test_describe_unknown_suggests(self):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["describe", "smoek"])
        assert "smoke" in str(excinfo.value)

    def test_set_accepts_dotted_paths(self, capsys):
        code = cli_main(
            [
                "run",
                "smoke",
                "--no-cache",
                "--set",
                "system.fanout=2",
                "--set",
                "membership.kind=lpbcast",
            ]
        )
        assert code == 0
        assert "smoke" in capsys.readouterr().out

    def test_set_unknown_dotted_path_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["run", "smoke", "--no-cache", "--set", "membership.kin=lpbcast"])
        assert "membership.kind" in str(excinfo.value)

    def test_sweep_accepts_dotted_param(self, capsys):
        code = cli_main(
            ["sweep", "smoke", "--no-cache", "--param", "system.fanout", "--values", "2,3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fanout=2" in out and "fanout=3" in out


class _NoRegistryGossip(GossipSystem):
    """A registered system without a process registry (churn cannot attach)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        del self.registry


class TestFaultPlanValidation:
    """An unsatisfiable fault plan fails fast instead of warning."""

    def test_requested_churn_without_registry_fails_fast(self):
        from repro.faults import FaultPlanError

        SYSTEMS.register(
            "no-registry-gossip",
            lambda ctx: _NoRegistryGossip(
                ctx.scheduler, ctx.network, list(ctx.node_ids)
            ),
            description="test-only",
        )
        try:
            config = _smoke_config().with_overrides(
                name="churny",
                system="no-registry-gossip",
                churn_down_probability=0.05,
                duration=2.0,
                drain_time=1.0,
            )
            with pytest.raises(FaultPlanError, match="no process registry"):
                run_experiment(config)
        finally:
            SYSTEMS.unregister("no-registry-gossip")

    def test_churn_with_registry_runs_cleanly(self, recwarn):
        config = _smoke_config().with_overrides(
            name="churny-ok", churn_down_probability=0.05, duration=2.0, drain_time=1.0
        )
        run_experiment(config)
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]


def _run_live_spec(kind: str, publications: int = 20) -> NodeHost:
    """Run a small spec-built cluster briefly on the memory transport."""

    async def scenario() -> NodeHost:
        spec = get_scenario("smoke").spec.with_values(
            {"nodes": 10, "system.kind": kind}
        )
        host = NodeHost(MemoryTransport(), seed=spec.seed, time_scale=20.0, spec=spec)
        await host.start()
        popularity = build_popularity(spec)
        model = build_interest_model(spec, popularity)
        interest = model.assign(
            list(spec.node_ids()), RngRegistry(spec.seed).stream("experiment-interest")
        )
        interest.apply(host)
        rng = RngRegistry(1234).stream("publications")
        for index in range(publications):
            host.publish(f"node-{index % 10:03d}", topic=popularity.sample(rng))
            await asyncio.sleep(0.005)
        await asyncio.sleep(0.4)
        await host.stop()
        return host

    return asyncio.run(scenario())


class TestSpecModeHost:
    """The same StackSpec builds the stack for the live runtime."""

    def test_gossip_scenario_runs_live(self):
        host = _run_live_spec("gossip")
        assert host.system is not None and host.system.name == "push-gossip"
        assert host.delivery_log.total_deliveries() > 0
        assert host.network.decode_errors == 0
        assert host.transport.frames_sent > 0

    def test_non_gossip_baseline_runs_live(self):
        host = _run_live_spec("brokers")
        assert host.delivery_log.total_deliveries() > 0
        assert host.network.decode_errors == 0
        # brokers are infrastructure: hosted (client) nodes exclude them
        assert all(node_id.startswith("node-") for node_id in host.node_ids())
        # the shared ledger sees broker work (fairness reads the real data)
        assert "broker-0" in host.ledger.node_ids()

    def test_spec_mode_rejects_manual_add_node(self):
        spec = get_scenario("smoke").spec
        host = NodeHost(MemoryTransport(), spec=spec)
        with pytest.raises(ValueError, match="StackSpec"):
            host.add_node("node-000")
