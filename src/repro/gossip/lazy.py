"""Two-phase lazy probabilistic broadcast with pull-based recovery.

The eager push protocol of Figure 4 keeps re-sending full events for their
whole buffer lifetime, so most of the payload traffic is redundant once a
message has infected a good share of the system.  The *lazy* variant (the
``LazyProbabilisticBroadcast`` lineage, Algorithm 3.10) splits dissemination
into two phases:

1. **Eager phase** — a freshly seen event is pushed with its full payload,
   but only for the few rounds an infection estimator says are needed to
   reach roughly half the system (``eager_push_rounds``: the push doubling
   time for the configured fanout, plus one round of slack).
2. **Recovery phase** — after that, only event *ids* circulate, in periodic
   digest messages.  A node that spots unknown ids in a digest issues a pull
   ``REQUEST`` and a node holding the payload answers with a ``REPLY``.

Only an **ALPHA fraction** of the nodes retain event payloads past the eager
phase (the *store set*, chosen deterministically by hashing node ids so both
engines and every run of a seed agree without coordination); everyone else
drops the payload when the eager budget is spent and keeps just the id.
Recovery requests are therefore directed at store nodes.  Per-node payload
memory is bounded by the store capacity, and aged ids are garbage-collected
after ``id_gc_rounds`` so neither the digests nor the stores grow with the
run length.

The node runs unmodified on the discrete-event simulator and on the live
runtime (it only uses the duck-typed ``simulator``/``network`` surface), and
its four message kinds have wire codecs so live clusters speak it over real
transports.  When a shared telemetry store is attached it records the
recovery counters (``lazy.pulls_issued`` / ``lazy.pulls_served`` /
``lazy.recoveries`` / ``lazy.events_saved``) and the phase gauges
(``lazy.hot_events`` for the eager phase, ``lazy.store_events`` /
``lazy.store_bytes`` for the store set) that ``repro report`` renders as the
recovery table.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..membership.lpbcast import LpbcastMembership
from ..pubsub.events import Event
from ..sim.network import Message
from ..tracing.context import TraceContext
from ..tracing.spans import DIGEST_ADVERT, RELAY
from .push import GossipMessage, PushGossipNode
from .pushpull import DigestMessage, PullRequest

__all__ = [
    "LazyPushGossipNode",
    "lazy_store_ids",
    "eager_push_rounds",
    "LAZY_PUSH_KIND",
    "LAZY_DIGEST_KIND",
    "LAZY_REQUEST_KIND",
    "LAZY_REPLY_KIND",
]

LAZY_PUSH_KIND = "gossip.lazy-push"
LAZY_DIGEST_KIND = "gossip.lazy-digest"
LAZY_REQUEST_KIND = "gossip.lazy-request"
LAZY_REPLY_KIND = "gossip.lazy-reply"


def lazy_store_ids(node_ids: Iterable[str], alpha: float) -> FrozenSet[str]:
    """The deterministic ALPHA-fraction store set for a node population.

    Nodes are ranked by the sha256 of their id and the first
    ``ceil(alpha * N)`` (at least one) are stores.  Hash ranking keeps the
    choice independent of the ``node-000..`` naming order — the publisher
    subset is a name prefix, and the store set must not correlate with it —
    while staying identical across engines, seeds, and processes.
    """
    if not 0.0 < float(alpha) <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
    ids = sorted(set(node_ids))
    if not ids:
        return frozenset()
    count = max(1, math.ceil(float(alpha) * len(ids)))
    ranked = sorted(ids, key=lambda node_id: hashlib.sha256(node_id.encode("utf-8")).hexdigest())
    return frozenset(ranked[:count])


def eager_push_rounds(population: int, fanout: int, target_fraction: float = 0.5) -> int:
    """Eager-phase budget: rounds until ~``target_fraction`` is infected.

    Push gossip infects roughly ``fanout``-fold more nodes per round, so the
    half-infection point is the base-``fanout`` log of half the population;
    one extra round of slack absorbs duplicate deliveries and message loss.
    """
    population = max(2, int(population))
    base = max(2, int(fanout))
    target = max(2.0, population * float(target_fraction))
    return max(1, math.ceil(math.log(target) / math.log(base))) + 1


class LazyPushGossipNode(PushGossipNode):
    """One participant of the two-phase lazy probabilistic broadcast.

    Extra parameters on top of :class:`PushGossipNode`:

    alpha:
        Store fraction in ``(0, 1]``.  Only used to derive defaults when
        ``store_ids`` is not supplied; the system factory normally passes
        the precomputed store set.
    store_ids:
        The deterministic store set (see :func:`lazy_store_ids`).  When
        ``None`` (standalone construction in unit tests) the node treats
        itself as a store so it can always serve its own pulls.
    population:
        Total node count, feeding the infection estimator.  Defaults to a
        small population when unknown.
    id_gc_rounds:
        Rounds an event id stays advertisable (and its payload stays in the
        store) before garbage collection; defaults to the buffer's
        ``max_rounds``.
    """

    def __init__(
        self,
        *args,
        alpha: float = 0.5,
        store_ids: Optional[Iterable[str]] = None,
        population: Optional[int] = None,
        id_gc_rounds: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 < float(alpha) <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = float(alpha)
        self.store_ids: FrozenSet[str] = (
            frozenset(store_ids) if store_ids is not None else frozenset((self.node_id,))
        )
        self.is_store = self.node_id in self.store_ids
        self.population = max(2, int(population)) if population else max(2, len(self.store_ids))
        self.eager_rounds = eager_push_rounds(self.population, max(1, self.fanout))
        self.id_gc_rounds = (
            int(id_gc_rounds) if id_gc_rounds else self.buffer.max_rounds
        )
        self.store_capacity = self.buffer.capacity
        #: Event payloads retained past the eager phase (store nodes only).
        self.store: "OrderedDict[str, Event]" = OrderedDict()
        #: id → rounds since first seen (insertion order = oldest first).
        self._id_age: "OrderedDict[str, int]" = OrderedDict()
        #: id → remaining eager-push rounds.
        self._hot_budget: Dict[str, int] = {}
        #: Ids per digest message (caps digest size on long runs).
        self.digest_cap = max(8, 4 * self.gossip_size)
        #: Digests go out every this many rounds — the recovery phase is
        #: deliberately slower than the eager phase, that is the bandwidth win.
        #: Phases are staggered per node (hash of the id) so some digests
        #: circulate every round even though each node only pays every other.
        self.digest_period = 2
        self._digest_phase = (
            int(hashlib.sha256(self.node_id.encode("utf-8")).hexdigest(), 16)
            % self.digest_period
        )
        #: Ids older than this stop being advertised; the default (the GC
        #: horizon itself) keeps every live id recoverable — a gap only
        #: becomes permanent once the id is garbage-collected everywhere.
        self.advert_rounds = self.id_gc_rounds
        #: id → rounds left before re-requesting it (duplicate-pull damping).
        self._pending_pull: Dict[str, int] = {}
        self.pull_retry_rounds = 1
        self.pulls_issued = 0
        self.pulls_served = 0
        self.recoveries = 0
        self.events_saved = 0
        if self.telemetry is not None:
            telemetry = self.telemetry
            self._pulls_issued_counter = telemetry.counter("lazy.pulls_issued", node=self.node_id)
            self._pulls_served_counter = telemetry.counter("lazy.pulls_served", node=self.node_id)
            self._recoveries_counter = telemetry.counter("lazy.recoveries", node=self.node_id)
            self._saved_counter = telemetry.counter("lazy.events_saved", node=self.node_id)
            self._hot_gauge = telemetry.gauge("lazy.hot_events", node=self.node_id)
            self._store_gauge = telemetry.gauge("lazy.store_events", node=self.node_id)
            self._store_bytes_gauge = telemetry.gauge("lazy.store_bytes", node=self.node_id)
        else:
            self._pulls_issued_counter = None
            self._pulls_served_counter = None
            self._recoveries_counter = None
            self._saved_counter = None
            self._hot_gauge = None
            self._store_gauge = None
            self._store_bytes_gauge = None

    # ----------------------------------------------------------- the round

    def execute_gossip_round(self) -> None:
        fanout = self.current_fanout()
        if fanout <= 0:
            return
        rng = self.simulator.rng.stream(f"gossip:{self.node_id}")
        neighbors = self.select_participants(fanout, rng)
        if not neighbors:
            return
        self._push_hot_events(neighbors)
        if (self.rounds_executed + self._digest_phase) % self.digest_period == 0:
            self._gossip_digest(neighbors)

    def _push_hot_events(self, neighbors: Sequence[str]) -> None:
        """Phase 1: full-payload push of events still inside their budget."""
        hot_ids = [
            event_id for event_id in self._id_age if self._hot_budget.get(event_id, 0) > 0
        ]
        # Newest first (ids are appended on first sight) up to the gossip size.
        hot_ids = hot_ids[-self.current_gossip_size():]
        events = [
            event
            for event in (self._event_payload(event_id) for event_id in hot_ids)
            if event is not None
        ]
        if not events:
            return
        digest = None
        if isinstance(self.membership, LpbcastMembership):
            digest = self.membership.digest_for_gossip()
        message = GossipMessage(
            events=tuple(events),
            sender_benefit_rate=self.benefit_rate(),
            membership_digest=digest,
        )
        self.buffer.mark_forwarded([event.event_id for event in events])
        trace = self._trace_contexts(events, RELAY, fanout=len(neighbors))
        for neighbor in neighbors:
            self.send(
                neighbor, LAZY_PUSH_KIND, payload=message, size=message.size, trace=trace
            )
        self.ledger.record_gossip_send(
            self.node_id,
            messages=len(neighbors),
            events=len(events) * len(neighbors),
            size=message.size * len(neighbors),
        )
        if self._messages_counter is not None:
            self._messages_counter.increment(len(neighbors))
            self._payload_histogram.observe(len(events))

    def _gossip_digest(self, neighbors: Sequence[str]) -> None:
        """Phase 2: advertise recently seen ids so receivers can pull gaps."""
        ids = [
            event_id
            for event_id, age in self._id_age.items()
            if age <= self.advert_rounds
        ][-self.digest_cap:]
        if not ids:
            return
        payload = DigestMessage(
            event_ids=tuple(ids), sender_benefit_rate=self.benefit_rate()
        )
        size = max(1, len(ids) // 4)
        trace = None
        if self.tracer is not None and self._trace_state:
            trace = self._trace_contexts_for_ids(
                ids, DIGEST_ADVERT, fanout=len(neighbors)
            )
        for neighbor in neighbors:
            self.send(neighbor, LAZY_DIGEST_KIND, payload=payload, size=size, trace=trace)
        self.ledger.record_gossip_send(
            self.node_id, messages=len(neighbors), events=0, size=size * len(neighbors)
        )

    def after_round(self) -> None:
        """Age ids, retire spent eager budgets, and garbage-collect."""
        expired: List[str] = []
        for event_id in self._id_age:
            self._id_age[event_id] += 1
            if self._id_age[event_id] > self.id_gc_rounds:
                expired.append(event_id)
        for event_id in list(self._hot_budget):
            self._hot_budget[event_id] -= 1
            if self._hot_budget[event_id] <= 0:
                del self._hot_budget[event_id]
                if not self.is_store:
                    # The eager phase is over: non-store nodes drop the
                    # payload and keep only the id for digests.
                    self.buffer.remove(event_id)
        for event_id in list(self._pending_pull):
            self._pending_pull[event_id] -= 1
            if self._pending_pull[event_id] <= 0:
                del self._pending_pull[event_id]
        for event_id in expired:
            del self._id_age[event_id]
            self._hot_budget.pop(event_id, None)
            self.store.pop(event_id, None)
            self.buffer.remove(event_id)
            # A garbage-collected id can no longer be relayed or advertised,
            # so its trace anchor is dead weight; dropping it bounds the
            # trace state the same way _id_age bounds the digests.
            self._trace_state.pop(event_id, None)
        if self._store_gauge is not None:
            self._hot_gauge.set(len(self._hot_budget))
            self._store_gauge.set(len(self.store))
            self._store_bytes_gauge.set(
                float(sum(event.size for event in self.store.values()))
            )

    # ------------------------------------------------------------ receiving

    def on_message(self, message: Message) -> None:
        if self.membership.handle(message):
            return
        if message.kind == LAZY_PUSH_KIND:
            self._handle_gossip(message)
        elif message.kind == LAZY_DIGEST_KIND:
            self._handle_lazy_digest(message)
        elif message.kind == LAZY_REQUEST_KIND:
            self._handle_pull_request(message)
        elif message.kind == LAZY_REPLY_KIND:
            self._handle_pull_reply(message)

    def _handle_lazy_digest(self, message: Message) -> None:
        payload: DigestMessage = message.payload
        self.observe_peer_benefit(message.sender, payload.sender_benefit_rate)
        unseen = [
            event_id
            for event_id in payload.event_ids
            if event_id not in self.seen_event_ids
        ]
        already_known = len(payload.event_ids) - len(unseen)
        if already_known:
            # Each known id advertised instead of re-pushed is payload the
            # eager protocol would have resent; the report's "bytes saved"
            # column reads this counter.
            self.events_saved += already_known
            if self._saved_counter is not None:
                self._saved_counter.increment(already_known)
        missing = tuple(
            event_id for event_id in unseen if event_id not in self._pending_pull
        )
        if not missing:
            return
        target = self._recovery_target(message.sender)
        if target is None:
            return
        for event_id in missing:
            self._pending_pull[event_id] = self.pull_retry_rounds
        self.pulls_issued += 1
        if self._pulls_issued_counter is not None:
            self._pulls_issued_counter.increment()
        self.send(
            target,
            LAZY_REQUEST_KIND,
            payload=PullRequest(event_ids=missing),
            size=max(1, len(missing) // 4),
        )

    def _recovery_target(self, sender: str) -> Optional[str]:
        """Who to pull from: the digest sender if it stores, else a store node."""
        if sender in self.store_ids:
            return sender
        candidates = sorted(self.store_ids - {self.node_id})
        if not candidates:
            return sender if sender != self.node_id else None
        rng = self.simulator.rng.stream(f"gossip:{self.node_id}")
        return rng.choice(candidates)

    def _handle_pull_request(self, message: Message) -> None:
        payload: PullRequest = message.payload
        events = [
            event
            for event in (self._event_payload(event_id) for event_id in payload.event_ids)
            if event is not None
        ]
        if not events:
            return
        reply = GossipMessage(events=tuple(events), sender_benefit_rate=self.benefit_rate())
        self.pulls_served += 1
        if self._pulls_served_counter is not None:
            self._pulls_served_counter.increment()
        # The reply's spans parent on *this* node's own trace state — the
        # requester may have learned the id from a third party's digest, but
        # the payload (and therefore the infection edge) comes from here.
        trace = self._trace_contexts(events, RELAY, via="pull", peer=message.sender)
        self.send(message.sender, LAZY_REPLY_KIND, payload=reply, size=reply.size, trace=trace)
        self.ledger.record_gossip_send(
            self.node_id, messages=1, events=len(events), size=reply.size
        )

    def _handle_pull_reply(self, message: Message) -> None:
        payload: GossipMessage = message.payload
        self.observe_peer_benefit(message.sender, payload.sender_benefit_rate)
        contexts = self._contexts_by_event(message) if message.trace else None
        recovered = 0
        for event in payload.events:
            if self._absorb_event(
                event,
                from_peer=message.sender,
                trace_ctx=None if contexts is None else contexts.get(event.event_id),
                recovered=True,
            ):
                recovered += 1
        if recovered:
            self.recoveries += recovered
            if self._recoveries_counter is not None:
                self._recoveries_counter.increment(recovered)

    # ----------------------------------------------------------- event state

    def _absorb_event(
        self,
        event: Event,
        from_peer: Optional[str] = None,
        trace_ctx: Optional[TraceContext] = None,
        recovered: bool = False,
    ) -> bool:
        if not super()._absorb_event(
            event, from_peer=from_peer, trace_ctx=trace_ctx, recovered=recovered
        ):
            return False
        self._pending_pull.pop(event.event_id, None)
        self._id_age[event.event_id] = 0
        self._hot_budget[event.event_id] = self.eager_rounds
        if self.is_store:
            self._store_put(event)
        return True

    def _store_put(self, event: Event) -> None:
        self.store[event.event_id] = event
        while len(self.store) > self.store_capacity:
            self.store.popitem(last=False)

    def _event_payload(self, event_id: str) -> Optional[Event]:
        """The full event if this node still holds it (buffer, then store)."""
        event = self.buffer.get(event_id)
        if event is not None:
            return event
        return self.store.get(event_id)
