"""Span records and trace sinks.

One :class:`SpanRecord` is one observation about one event at one node: it
was published, relayed, received, received again (``duplicate``), advertised
in a digest, recovered via pull, delivered to the application, or dropped by
the network.  Records stream into a :class:`TraceSink` as they happen; the
sinks mirror the telemetry sinks (bounded memory ring for tests and live
inspection, JSON-lines for artifacts the ``repro trace`` CLI reads back).

Determinism contract: span records contain only protocol time, sequential
span ids, and protocol identifiers — no wall time, no randomness — and the
JSON-lines encoding is canonical (sorted keys, fixed separators), so a
pinned-seed simulator run writes a byte-identical trace stream every time.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional

__all__ = [
    "TRACE_SCHEMA",
    "SPAN_KINDS",
    "PUBLISH",
    "RELAY",
    "RECEIVE",
    "DUPLICATE",
    "DIGEST_ADVERT",
    "PULL_RECOVER",
    "DELIVER",
    "DROP",
    "BRIDGE_HOP",
    "SpanRecord",
    "TraceSink",
    "MemoryTraceSink",
    "JsonlTraceSink",
    "read_spans_jsonl",
]

#: Schema tag written into every JSON-lines span record (sniffed by
#: ``repro report`` / ``repro trace`` to recognise trace artifacts).
TRACE_SCHEMA = "trace-span/v1"

# Span kinds, one per observable step of a dissemination.
PUBLISH = "publish"            # the event enters the system at its publisher
RELAY = "relay"                # a node pushes the payload onward (one span per round batch)
RECEIVE = "receive"            # first sight of the payload via eager push
DUPLICATE = "duplicate"        # redundant receive of an already-seen event
DIGEST_ADVERT = "digest-advert"  # the id was advertised in a lazy digest
PULL_RECOVER = "pull-recover"  # first sight of the payload via pull reply
DELIVER = "deliver"            # the application callback fired
DROP = "drop"                  # the network dropped a traced frame (loss/partition/dead)
BRIDGE_HOP = "topology.bridge"  # a bridge node relayed the event across a domain boundary

SPAN_KINDS = (
    PUBLISH,
    RELAY,
    RECEIVE,
    DUPLICATE,
    DIGEST_ADVERT,
    PULL_RECOVER,
    DELIVER,
    DROP,
    BRIDGE_HOP,
)


@dataclass(frozen=True)
class SpanRecord:
    """One tracing observation.

    Attributes
    ----------
    ts:
        Protocol time of the observation (simulated time on the simulator,
        scaled protocol time units on the live runtime).
    kind:
        One of :data:`SPAN_KINDS`.
    trace_id:
        The traced event's id (one trace per published event).
    span_id:
        Run-wide sequential id; parents reference it.
    node:
        The node the observation is about (drop spans use the intended
        recipient).
    parent_id:
        The causing span (``None`` only for ``publish`` roots and orphan
        receives whose context was not propagated).
    hops:
        Network hops the event had taken at this span.
    details:
        Small free-form extras (``peer``, ``via``, ``reason`` ...).
    """

    ts: float
    kind: str
    trace_id: str
    span_id: int
    node: str
    parent_id: Optional[int] = None
    hops: int = 0
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": TRACE_SCHEMA,
            "ts": self.ts,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "node": self.node,
            "hops": self.hops,
        }
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.details:
            payload["details"] = dict(self.details)
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "SpanRecord":
        return SpanRecord(
            ts=float(payload["ts"]),
            kind=str(payload["kind"]),
            trace_id=str(payload["trace_id"]),
            span_id=int(payload["span_id"]),
            node=str(payload["node"]),
            parent_id=(
                int(payload["parent_id"]) if payload.get("parent_id") is not None else None
            ),
            hops=int(payload.get("hops", 0)),
            details=dict(payload.get("details", {})),
        )


class TraceSink:
    """Destination for span records; implementations must not raise."""

    def emit(self, record: SpanRecord) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further emits are undefined."""


class MemoryTraceSink(TraceSink):
    """Bounded in-memory ring of the most recent spans (tests, live peeks)."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._records: "deque[SpanRecord]" = deque(maxlen=capacity)

    def emit(self, record: SpanRecord) -> None:
        self._records.append(record)

    def records(self) -> List[SpanRecord]:
        """The retained spans, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._records)


class JsonlTraceSink(TraceSink):
    """Appends one canonical JSON object per span to a text file.

    Canonical encoding (sorted keys, no extra whitespace) is what makes the
    byte-identical-reruns test meaningful: two runs of the same seed must
    produce the same bytes, not merely equivalent JSON.
    """

    def __init__(self, path: str) -> None:
        import os

        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def emit(self, record: SpanRecord) -> None:
        if self._handle is None:
            return
        self._handle.write(
            json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))
        )
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_spans_jsonl(path: str) -> List[SpanRecord]:
    """Load a JSON-lines span stream written by :class:`JsonlTraceSink`.

    Raises ``ValueError`` (with the offending line number) on lines that are
    not span records, so the CLI can turn it into a friendly error.
    """
    records: List[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as error:
                raise ValueError(f"{path}:{number}: not valid JSON: {error}") from None
            if not isinstance(payload, dict) or payload.get("schema") != TRACE_SCHEMA:
                raise ValueError(
                    f"{path}:{number}: not a {TRACE_SCHEMA} span record"
                )
            records.append(SpanRecord.from_dict(payload))
    return records
