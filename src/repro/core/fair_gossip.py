"""The fair gossip protocol — the paper's proposed research direction made concrete.

Section 5.2 sketches the mechanism: "if processes have a measure of their
benefit, a process would be able to choose its fanout accordingly and ensure
fair dissemination of events", and alternatively "adapt the number of events
contained in a gossip message".  :class:`FairGossipNode` extends the basic
push protocol of Figure 4 with both levers:

* each node measures its own benefit (interesting events delivered per
  round) and estimates the population's benefit from the rates piggybacked
  on received gossip messages (:class:`~repro.core.estimators.BenefitEstimator`);
* an :class:`~repro.core.adaptive_fanout.AdaptiveFanoutController` scales the
  node's fanout with its relative benefit;
* an :class:`~repro.core.adaptive_payload.AdaptivePayloadController` does the
  same for the number of events per gossip message;
* a :class:`~repro.core.policy.FairnessPolicy` decides which of the two
  levers are active and how benefit is defined (topic-based vs expressive).

The result: nodes that deliver many interesting events send more gossip
messages with larger payloads; nodes that benefit little fall back to the
configured floors, which keep the overlay connected (the reliability
requirement of challenges 3–4).

:class:`FairGossipSystem` is the drop-in replacement for
:class:`~repro.gossip.system.GossipSystem` used by examples and benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..gossip.push import PushGossipNode
from ..gossip.system import GossipSystem
from ..membership.base import MembershipProvider
from ..pubsub.interfaces import DeliveryLog
from ..sim.engine import Simulator
from ..sim.network import Network
from .accounting import WorkLedger
from .adaptive_fanout import AdaptiveFanoutController, FanoutSchedule
from .adaptive_payload import AdaptivePayloadController, PayloadSchedule
from .estimators import BenefitEstimator
from .policy import EXPRESSIVE_POLICY, FairnessPolicy

__all__ = ["FairGossipNode", "FairGossipSystem", "fair_node_kwargs"]


def fair_node_kwargs(
    *,
    fanout: int,
    gossip_size: int,
    round_period: float,
    min_fanout: int,
    max_fanout: int,
    min_payload: int,
    max_payload: int,
    policy: FairnessPolicy,
    adapt_fanout: bool = True,
    adapt_payload: bool = True,
) -> Dict:
    """Node kwargs for a :class:`FairGossipSystem` from scalar parameters.

    This is the protocol's own translation of a declarative spec (flat
    config fields or a ``SystemSpec``) into the schedule objects
    :class:`FairGossipNode` expects; the component registry's
    ``fair-gossip`` factory builds through it.
    """
    return {
        "fanout": fanout,
        "gossip_size": gossip_size,
        "round_period": round_period,
        "fanout_schedule": FanoutSchedule(
            base_fanout=fanout, min_fanout=min_fanout, max_fanout=max_fanout
        ),
        "payload_schedule": PayloadSchedule(
            base_payload=gossip_size, min_payload=min_payload, max_payload=max_payload
        ),
        "policy": policy,
        "adapt_fanout": adapt_fanout,
        "adapt_payload": adapt_payload,
    }


class FairGossipNode(PushGossipNode):
    """Push gossip node with benefit-driven fanout and payload adaptation.

    Parameters (in addition to :class:`PushGossipNode`)
    ----------
    fanout_schedule / payload_schedule:
        Allowed ranges for the two contribution levers; the ``base_*`` values
        play the role of Figure 4's static ``F`` and ``N``.
    policy:
        Fairness policy; its name is only used in reports but its
        ``minimum_share`` intent is honoured through the schedule floors.
    adapt_fanout / adapt_payload:
        Switches for ablation experiments (fanout-only, payload-only, both).
    own_alpha / peer_alpha / smoothing:
        Estimator and controller smoothing parameters.
    """

    def __init__(
        self,
        *args,
        fanout_schedule: Optional[FanoutSchedule] = None,
        payload_schedule: Optional[PayloadSchedule] = None,
        policy: FairnessPolicy = EXPRESSIVE_POLICY,
        adapt_fanout: bool = True,
        adapt_payload: bool = True,
        own_alpha: float = 0.3,
        peer_alpha: float = 0.1,
        smoothing: float = 0.5,
        **kwargs,
    ) -> None:
        fanout_schedule = fanout_schedule or FanoutSchedule(
            base_fanout=kwargs.get("fanout", 3) or 3
        )
        payload_schedule = payload_schedule or PayloadSchedule(
            base_payload=kwargs.get("gossip_size", 8) or 8
        )
        kwargs.setdefault("fanout", fanout_schedule.base_fanout)
        kwargs.setdefault("gossip_size", payload_schedule.base_payload)
        super().__init__(*args, **kwargs)
        self.policy = policy
        self.adapt_fanout = adapt_fanout
        self.adapt_payload = adapt_payload
        self.estimator = BenefitEstimator(own_alpha=own_alpha, peer_alpha=peer_alpha)
        controller_tags = {"node": self.node_id} if self.telemetry is not None else None
        self.fanout_controller = AdaptiveFanoutController(
            schedule=fanout_schedule,
            estimator=self.estimator,
            smoothing=smoothing,
            telemetry=self.telemetry,
            telemetry_tags=controller_tags,
        )
        self.payload_controller = AdaptivePayloadController(
            schedule=payload_schedule,
            estimator=self.estimator,
            smoothing=smoothing,
            telemetry=self.telemetry,
            telemetry_tags=controller_tags,
        )
        #: Pre-bound benefit gauges (telemetry's hot-path convention): the
        #: estimator exports every round, so avoid a facade lookup per call.
        self._benefit_gauges = None
        if self.telemetry is not None:
            self._benefit_gauges = (
                self.telemetry.gauge("benefit.own_rate", node=self.node_id),
                self.telemetry.gauge("benefit.population_rate", node=self.node_id),
                self.telemetry.gauge("benefit.relative", node=self.node_id),
            )
        self._deliveries_at_round_start = 0

    # -------------------------------------------------------- benefit signal

    def observe_peer_benefit(self, peer_id: str, benefit_rate: float) -> None:
        self.estimator.observe_peer_rate(benefit_rate)

    def benefit_rate(self) -> float:
        return self.estimator.own_rate

    # ------------------------------------------------------------ the levers

    def current_fanout(self) -> int:
        if not self.adapt_fanout:
            return self.fanout
        return self.fanout_controller.current_fanout

    def current_gossip_size(self) -> int:
        if not self.adapt_payload:
            return self.gossip_size
        return self.payload_controller.current_payload

    # ---------------------------------------------------------------- rounds

    def after_round(self) -> None:
        deliveries_this_round = len(self.delivered_event_ids) - self._deliveries_at_round_start
        self._deliveries_at_round_start = len(self.delivered_event_ids)
        backlog = len(self.buffer)
        if self.adapt_fanout:
            self.fanout_controller.observe_round(deliveries_this_round)
        if self.adapt_payload:
            self.payload_controller.observe_round(deliveries_this_round, backlog=backlog)
        if not self.adapt_fanout and not self.adapt_payload:
            # Keep the estimator warm even when both levers are frozen, so
            # ablation runs still report benefit rates.
            self.estimator.observe_own_round(deliveries_this_round)
        if self._benefit_gauges is not None:
            own_gauge, population_gauge, relative_gauge = self._benefit_gauges
            own_gauge.set(self.estimator.own_rate)
            population_gauge.set(self.estimator.population_rate)
            relative_gauge.set(self.estimator.relative_benefit())


class FairGossipSystem(GossipSystem):
    """Gossip system whose nodes run the fair (adaptive) protocol."""

    name = "fair-gossip"

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        node_ids: Sequence[str],
        membership_provider: Optional[MembershipProvider] = None,
        node_kwargs: Optional[Dict] = None,
        bootstrap_degree: int = 10,
        ledger: Optional[WorkLedger] = None,
        delivery_log: Optional[DeliveryLog] = None,
    ) -> None:
        super().__init__(
            simulator,
            network,
            node_ids,
            membership_provider=membership_provider,
            node_class=FairGossipNode,
            node_kwargs=node_kwargs,
            bootstrap_degree=bootstrap_degree,
            ledger=ledger,
            delivery_log=delivery_log,
        )
