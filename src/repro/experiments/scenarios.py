"""Scenario builders: turn an :class:`ExperimentConfig` into live objects.

The builders know how to construct every dissemination system in the
repository behind a single string name, how to pick the membership provider,
the interest model, and the fairness policy.  They are used by the runner
and directly by a few benchmarks that need finer control (for example the
selfish-node experiment, which swaps node classes for part of the
population).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..brokers import BrokerSystem
from ..core import (
    EXPRESSIVE_POLICY,
    TOPIC_BASED_POLICY,
    FairGossipSystem,
    FairnessPolicy,
    FanoutSchedule,
    PayloadSchedule,
)
from ..damulticast import DataAwareMulticastSystem
from ..dht import DksSystem, ScribeSystem, SplitStreamSystem
from ..gossip import GossipSystem, PushPullGossipNode
from ..membership import cyclon_provider, full_membership_provider, lpbcast_provider
from ..pubsub.topics import TopicHierarchy
from ..sim import BernoulliLoss, Network, NoLoss, Simulator
from ..workloads import (
    AttributeInterest,
    CommunityInterest,
    InterestAssignment,
    TopicPopularity,
    UniformInterest,
    ZipfInterest,
)
from .config import ExperimentConfig

__all__ = [
    "build_simulation",
    "build_membership_provider",
    "build_popularity",
    "build_interest",
    "build_system",
    "resolve_policy",
    "SYSTEM_NAMES",
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
]

#: Names accepted by :func:`build_system`.
SYSTEM_NAMES = (
    "gossip",
    "fair-gossip",
    "pushpull-gossip",
    "scribe",
    "splitstream",
    "dks",
    "brokers",
    "dam",
)


def build_simulation(config: ExperimentConfig) -> Tuple[Simulator, Network]:
    """Create the simulator and network described by the config."""
    simulator = Simulator(seed=config.seed)
    loss = BernoulliLoss(config.loss_rate) if config.loss_rate > 0 else NoLoss()
    network = Network(simulator, loss_model=loss)
    return simulator, network


def build_membership_provider(config: ExperimentConfig, network: Network):
    """Pick the membership provider named in the config."""
    if config.membership == "full":
        return full_membership_provider(network)
    if config.membership == "lpbcast":
        return lpbcast_provider()
    if config.membership == "cyclon":
        return cyclon_provider()
    raise ValueError(f"unknown membership {config.membership!r}")


def build_popularity(config: ExperimentConfig) -> TopicPopularity:
    """Topic popularity for the config (hierarchical for the dam system)."""
    if config.system == "dam":
        roots = max(2, config.topics // 4)
        children = max(2, config.topics // roots)
        return TopicPopularity.hierarchy(roots, children, exponent=config.topic_exponent)
    if config.topic_exponent <= 0:
        return TopicPopularity.uniform(config.topics)
    return TopicPopularity.zipf(config.topics, exponent=config.topic_exponent)


def build_interest(config: ExperimentConfig, popularity: TopicPopularity):
    """Interest model for the config."""
    if config.interest_model == "uniform":
        return UniformInterest(popularity, topics_per_node=config.topics_per_node)
    if config.interest_model == "zipf":
        return ZipfInterest(
            popularity,
            min_topics=1,
            max_topics=config.max_topics_per_node,
        )
    if config.interest_model == "community":
        return CommunityInterest(popularity, topics_per_node=config.topics_per_node)
    if config.interest_model == "content":
        return AttributeInterest(filters_per_node=config.topics_per_node)
    raise ValueError(f"unknown interest model {config.interest_model!r}")


def resolve_policy(config: ExperimentConfig) -> FairnessPolicy:
    """The fairness policy named in the config."""
    if config.fairness_policy in ("expressive", "figure3"):
        return EXPRESSIVE_POLICY
    if config.fairness_policy in ("topic", "topic-based", "figure2"):
        return TOPIC_BASED_POLICY
    raise ValueError(f"unknown fairness policy {config.fairness_policy!r}")


def build_system(
    config: ExperimentConfig,
    simulator: Simulator,
    network: Network,
    popularity: Optional[TopicPopularity] = None,
):
    """Build the dissemination system named by ``config.system``."""
    node_ids = list(config.node_ids())
    if config.system in ("gossip", "fair-gossip", "pushpull-gossip"):
        provider = build_membership_provider(config, network)
        node_kwargs = {
            "fanout": config.fanout,
            "gossip_size": config.gossip_size,
            "round_period": config.round_period,
        }
        if config.system == "fair-gossip":
            node_kwargs.update(
                {
                    "fanout_schedule": FanoutSchedule(
                        base_fanout=config.fanout,
                        min_fanout=config.min_fanout,
                        max_fanout=config.max_fanout,
                    ),
                    "payload_schedule": PayloadSchedule(
                        base_payload=config.gossip_size,
                        min_payload=config.min_payload,
                        max_payload=config.max_payload,
                    ),
                    "policy": resolve_policy(config),
                    "adapt_fanout": config.adapt_fanout,
                    "adapt_payload": config.adapt_payload,
                }
            )
            return FairGossipSystem(
                simulator,
                network,
                node_ids,
                membership_provider=provider,
                node_kwargs=node_kwargs,
            )
        if config.system == "pushpull-gossip":
            return GossipSystem(
                simulator,
                network,
                node_ids,
                membership_provider=provider,
                node_class=PushPullGossipNode,
                node_kwargs=node_kwargs,
            )
        return GossipSystem(
            simulator,
            network,
            node_ids,
            membership_provider=provider,
            node_kwargs=node_kwargs,
        )
    if config.system == "scribe":
        return ScribeSystem(simulator, network, node_ids)
    if config.system == "splitstream":
        return SplitStreamSystem(simulator, network, node_ids, stripes=config.stripes)
    if config.system == "dks":
        return DksSystem(simulator, network, node_ids)
    if config.system == "brokers":
        return BrokerSystem(simulator, network, node_ids, broker_count=config.broker_count)
    if config.system == "dam":
        hierarchy = TopicHierarchy(popularity.topics if popularity is not None else ())
        return DataAwareMulticastSystem(
            simulator,
            network,
            node_ids,
            hierarchy=hierarchy,
            fanout=config.fanout,
            delegates_per_root=config.delegates_per_root,
        )
    raise ValueError(f"unknown system {config.system!r}; expected one of {SYSTEM_NAMES}")


# ---------------------------------------------------------------------------
# Named-scenario registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A named, documented experiment configuration.

    The registry gives the CLI (``python -m repro list-scenarios``) and the
    benchmark suite a shared vocabulary of starting points; every scenario is
    just an :class:`ExperimentConfig` plus a description of what it models.
    """

    name: str
    description: str
    config: ExperimentConfig


_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(
    name: str, config: ExperimentConfig, description: str = "", replace: bool = False
) -> Scenario:
    """Add a scenario to the registry (``replace`` guards against typos)."""
    if name in _SCENARIOS and not replace:
        raise ValueError(f"scenario {name!r} is already registered")
    scenario = Scenario(name=name, description=description, config=config)
    _SCENARIOS[name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name; raises with the known names on a miss."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known scenarios: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_SCENARIOS)


def iter_scenarios() -> List[Scenario]:
    """Registered scenarios, in registration order."""
    return list(_SCENARIOS.values())


#: Baseline shared by most benchmarks: medium-sized system, Zipf topic
#: popularity, heterogeneous (Zipf) interest, moderate traffic.
_BASE = ExperimentConfig(
    name="base",
    nodes=96,
    topics=16,
    topic_exponent=1.0,
    interest_model="zipf",
    max_topics_per_node=6,
    publication_rate=4.0,
    duration=25.0,
    drain_time=15.0,
    fanout=4,
    gossip_size=8,
    seed=2007,
)

register_scenario(
    "base",
    _BASE,
    "Benchmark baseline: 96 nodes, 16 Zipf topics, skewed interest, moderate traffic",
)
register_scenario(
    "smoke",
    ExperimentConfig(
        name="smoke",
        nodes=24,
        topics=6,
        interest_model="zipf",
        max_topics_per_node=4,
        publication_rate=2.0,
        duration=6.0,
        drain_time=5.0,
        fanout=3,
        gossip_size=8,
        seed=7,
    ),
    "Tiny fast run (24 nodes, ~1s) for CLI smoke tests and quick sanity checks",
)
register_scenario(
    "fig1",
    _BASE.with_overrides(name="fig1", duration=20.0, drain_time=12.0),
    "Figure 1 workload: skewed interest for the cross-system fairness comparison",
)
register_scenario(
    "fig2-topic",
    _BASE.with_overrides(
        name="fig2",
        fairness_policy="topic",
        interest_model="zipf",
        max_topics_per_node=8,
        nodes=80,
        duration=20.0,
        drain_time=12.0,
    ),
    "Figure 2 workload: topic-based policy, subscription counts spread 1..8",
)
register_scenario(
    "fig3-expressive",
    _BASE.with_overrides(
        name="fig3",
        system="fair-gossip",
        interest_model="content",
        topics_per_node=2,
        fairness_policy="expressive",
        nodes=80,
        duration=20.0,
        drain_time=12.0,
    ),
    "Figure 3 workload: content-based filters, fanout/payload fairness levers",
)
register_scenario(
    "fig4-push",
    _BASE.with_overrides(
        name="fig4",
        system="gossip",
        interest_model="uniform",
        topics_per_node=2,
        topics=4,
        nodes=128,
        duration=15.0,
        drain_time=15.0,
        publication_rate=2.0,
    ),
    "Figure 4 workload: plain push gossip for fanout/loss reliability sweeps",
)
register_scenario(
    "churn",
    ExperimentConfig(
        name="churn",
        system="fair-gossip",
        nodes=64,
        topics=8,
        duration=20.0,
        drain_time=15.0,
        publication_rate=2.0,
        loss_rate=0.05,
        churn_down_probability=0.03,
        churn_up_probability=0.5,
        fanout=4,
        seed=13,
    ),
    "Stress run: fair gossip under 5% loss plus node churn (robustness check)",
)
register_scenario(
    "subscription-churn",
    ExperimentConfig(
        name="sub-churn",
        system="dks",
        nodes=48,
        topics=8,
        duration=15.0,
        drain_time=10.0,
        publication_rate=1.0,
        subscription_churn_rate=4.0,
        seed=17,
    ),
    "Subscription maintenance workload on the DKS grouping (who pays for churn)",
)
