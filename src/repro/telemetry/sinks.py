"""Pluggable snapshot sinks: ring buffer, JSON lines, CSV, Prometheus.

A sink receives every :class:`~repro.telemetry.snapshot.TelemetrySnapshot`
the :class:`~repro.telemetry.snapshot.SnapshotScheduler` emits.  The
``TelemetrySink`` protocol is two methods — ``emit(snapshot)`` and
``close()`` — so custom exporters (a metrics socket, a database writer) are
a dozen lines.  Sinks are addressable from the CLI via compact specs::

    --telemetry jsonl:out/metrics.jsonl
    --telemetry csv:out/metrics.csv
    --telemetry prom:out/metrics.prom
    --telemetry memory            (or memory:512 for a custom capacity)

JSON-lines output is the canonical archival format: one canonical-JSON
snapshot per line (sorted keys, no whitespace), so two deterministic runs
produce byte-identical streams and :func:`read_snapshots_jsonl` restores
the exact snapshots (``TelemetrySnapshot.from_dict(s.to_dict()) == s``).
"""

from __future__ import annotations

import collections
import csv
import json
import os
import tempfile
from typing import Deque, Dict, IO, List, Optional, Sequence

from .instruments import HistogramState
from .snapshot import TelemetrySnapshot

__all__ = [
    "DEFAULT_SNAPSHOT_PERIOD",
    "TelemetrySink",
    "MemorySink",
    "JsonlSink",
    "CsvSink",
    "PrometheusSink",
    "parse_sink_spec",
    "read_snapshots_jsonl",
    "render_prometheus",
]

#: Snapshot cadence used when nothing (spec or CLI) says otherwise, in
#: protocol time units.  Referenced by ``TelemetrySpec``, the experiment
#: runner, and the live host so the default cannot drift between them.
DEFAULT_SNAPSHOT_PERIOD = 5.0

try:  # Python < 3.8 has no typing.Protocol; degrade to a plain base class.
    from typing import Protocol, runtime_checkable

    @runtime_checkable
    class TelemetrySink(Protocol):
        """What a snapshot consumer must implement."""

        def emit(self, snapshot: TelemetrySnapshot) -> None:
            """Receive one snapshot."""

        def close(self) -> None:
            """Flush and release resources (idempotent)."""

except ImportError:  # pragma: no cover - ancient interpreters only

    class TelemetrySink:  # type: ignore[no-redef]
        def emit(self, snapshot: TelemetrySnapshot) -> None:
            raise NotImplementedError

        def close(self) -> None:
            raise NotImplementedError


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


class MemorySink:
    """Bounded in-memory ring buffer of the most recent snapshots."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._snapshots: Deque[TelemetrySnapshot] = collections.deque(maxlen=capacity)

    def emit(self, snapshot: TelemetrySnapshot) -> None:
        self._snapshots.append(snapshot)

    def close(self) -> None:  # ring buffers hold no resources
        pass

    @property
    def snapshots(self) -> List[TelemetrySnapshot]:
        """The retained snapshots, oldest first."""
        return list(self._snapshots)

    @property
    def latest(self) -> Optional[TelemetrySnapshot]:
        """The most recent snapshot (None before the first emit)."""
        return self._snapshots[-1] if self._snapshots else None


class JsonlSink:
    """One canonical-JSON snapshot per line; the archival format."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = None

    def emit(self, snapshot: TelemetrySnapshot) -> None:
        if self._handle is None:
            _ensure_parent(self.path)
            self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(
            json.dumps(snapshot.to_dict(), sort_keys=True, separators=(",", ":"))
        )
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_snapshots_jsonl(path: str) -> List[TelemetrySnapshot]:
    """Load every snapshot from a JSON-lines file written by :class:`JsonlSink`."""
    snapshots: List[TelemetrySnapshot] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                snapshots.append(TelemetrySnapshot.from_dict(json.loads(line)))
    return snapshots


def _metric_column(kind: str, name: str, tags) -> str:
    if not tags:
        return f"{kind}:{name}"
    rendered = ",".join(f"{key}={value}" for key, value in tags)
    return f"{kind}:{name}{{{rendered}}}"


class CsvSink:
    """Flat time-series CSV: one row per snapshot.

    Columns are fixed by the *first* snapshot (``sequence``, ``at``, one
    column per counter/gauge, and count/mean/p50/p95/p99 columns per
    histogram); metrics appearing later than the first snapshot are dropped
    from the CSV (the JSON-lines sink is the lossless format).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = None
        self._writer = None
        self._columns: List[str] = []

    def _columns_for(self, snapshot: TelemetrySnapshot) -> List[str]:
        columns = ["sequence", "at"]
        columns.extend(
            _metric_column("counter", name, tags) for name, tags, _ in snapshot.counters
        )
        columns.extend(
            _metric_column("gauge", name, tags) for name, tags, _ in snapshot.gauges
        )
        for name, tags, _ in snapshot.histograms:
            base = _metric_column("histogram", name, tags)
            columns.extend(
                f"{base}.{statistic}" for statistic in ("count", "mean", "p50", "p95", "p99")
            )
        return columns

    def emit(self, snapshot: TelemetrySnapshot) -> None:
        if self._handle is None:
            _ensure_parent(self.path)
            self._handle = open(self.path, "w", encoding="utf-8", newline="")
            self._writer = csv.writer(self._handle)
            self._columns = self._columns_for(snapshot)
            self._writer.writerow(self._columns)
        row: Dict[str, object] = {"sequence": snapshot.sequence, "at": snapshot.at}
        for name, tags, value in snapshot.counters:
            row[_metric_column("counter", name, tags)] = value
        for name, tags, value in snapshot.gauges:
            row[_metric_column("gauge", name, tags)] = value
        for name, tags, state in snapshot.histograms:
            base = _metric_column("histogram", name, tags)
            summary = state.summary()
            row[f"{base}.count"] = summary.count
            row[f"{base}.mean"] = summary.mean
            row[f"{base}.p50"] = summary.p50
            row[f"{base}.p95"] = summary.p95
            row[f"{base}.p99"] = summary.p99
        self._writer.writerow([row.get(column, "") for column in self._columns])

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _prometheus_name(name: str) -> str:
    sanitized = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prometheus_labels(tags, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(tags) + sorted((extra or {}).items())
    if not pairs:
        return ""
    escaped = ",".join(
        '{}="{}"'.format(key, str(value).replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in pairs
    )
    return "{" + escaped + "}"


def render_prometheus(snapshot: TelemetrySnapshot) -> str:
    """Prometheus text exposition (version 0.0.4) of one snapshot.

    Counters and gauges map directly; histograms are exposed summary-style
    (``_count``/``_sum`` plus ``quantile`` gauges computed from the bounded
    bucket state).  Usable as a file for ``node_exporter``'s textfile
    collector, or served over HTTP by anything that can read a file.
    """
    lines: List[str] = [
        f"# repro telemetry snapshot sequence={snapshot.sequence} at={snapshot.at}"
    ]
    typed_names = set()
    for name, tags, value in snapshot.counters:
        metric = _prometheus_name(name)
        if metric not in typed_names:
            lines.append(f"# TYPE {metric} counter")
            typed_names.add(metric)
        lines.append(f"{metric}{_prometheus_labels(tags)} {value}")
    for name, tags, value in snapshot.gauges:
        metric = _prometheus_name(name)
        if metric not in typed_names:
            lines.append(f"# TYPE {metric} gauge")
            typed_names.add(metric)
        lines.append(f"{metric}{_prometheus_labels(tags)} {value}")
    for name, tags, state in snapshot.histograms:
        metric = _prometheus_name(name)
        if metric not in typed_names:
            lines.append(f"# TYPE {metric} summary")
            typed_names.add(metric)
        summary = state.summary()
        for quantile, quantile_value in (
            ("0.5", summary.p50),
            ("0.95", summary.p95),
            ("0.99", summary.p99),
        ):
            labels = _prometheus_labels(tags, {"quantile": quantile})
            lines.append(f"{metric}{labels} {quantile_value}")
        lines.append(f"{metric}_count{_prometheus_labels(tags)} {state.count}")
        lines.append(f"{metric}_sum{_prometheus_labels(tags)} {state.total}")
    return "\n".join(lines) + "\n"


class PrometheusSink:
    """Maintains a Prometheus textfile with the latest snapshot.

    Each emit atomically replaces the file (temp file + rename), so a
    scraper never reads a torn exposition.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def emit(self, snapshot: TelemetrySnapshot) -> None:
        _ensure_parent(self.path)
        directory = os.path.dirname(self.path) or "."
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=directory, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(render_prometheus(snapshot))
            os.replace(handle.name, self.path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def close(self) -> None:  # the latest exposition stays on disk
        pass


def parse_sink_spec(spec: str):
    """Build a sink from a compact CLI spec (``kind`` or ``kind:argument``).

    Supported kinds: ``jsonl:PATH``, ``csv:PATH``, ``prom:PATH`` (alias
    ``prometheus:PATH``), and ``memory`` (optional ``memory:CAPACITY``).
    """
    kind, _, argument = spec.partition(":")
    kind = kind.strip().lower()
    argument = argument.strip()
    if kind not in ("memory", "jsonl", "csv", "prom", "prometheus"):
        raise ValueError(
            f"unknown telemetry sink kind {kind!r}; expected jsonl, csv, prom, or memory"
        )
    if kind == "memory":
        return MemorySink(capacity=int(argument)) if argument else MemorySink()
    if not argument:
        raise ValueError(
            f"telemetry sink {spec!r} needs a path, e.g. {kind}:out/metrics.{kind}"
        )
    if kind == "jsonl":
        return JsonlSink(argument)
    if kind == "csv":
        return CsvSink(argument)
    return PrometheusSink(argument)
