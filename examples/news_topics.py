#!/usr/bin/env python
"""Topic-based news dissemination with skewed popularity (§5.1 scenario).

A news service with 24 topics whose popularity follows a Zipf law: a few
topics (breaking news, sports) attract most subscribers and most traffic,
the tail barely any.  Compares classic gossip, fair gossip, and Scribe under
the *topic-based* fairness policy of Figure 2 (benefit counts both delivered
events and placed filters) and prints the paper-style comparison table.

Run with::

    python examples/news_topics.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.analysis import compare_systems, summarise_fairness
from repro.core import TOPIC_BASED_POLICY
from repro.experiments import ExperimentConfig, compare, results_table


def main() -> None:
    base = ExperimentConfig(
        name="news",
        nodes=96,
        topics=24,
        topic_exponent=1.2,          # strongly skewed topic popularity
        interest_model="zipf",       # subscription counts differ per reader
        max_topics_per_node=8,
        publication_rate=5.0,
        duration=25.0,
        drain_time=15.0,
        fairness_policy="topic",     # Figure 2 weights
        seed=42,
    )
    results = compare(base, ["gossip", "fair-gossip", "scribe"], keep_system=True)

    print(results_table(results, title="News workload — reliability and fairness").render())
    print()
    summaries = [
        summarise_fairness(result.system.ledger, TOPIC_BASED_POLICY, system_name=result.config.name)
        for result in results
    ]
    print(compare_systems(summaries))
    print()
    for result, summary in zip(results, summaries):
        exploited = summary.zero_benefit_contributors()
        print(
            f"{result.config.name}: {len(exploited)} nodes work without any benefit "
            f"(they forward news they never asked for)"
        )


if __name__ == "__main__":
    main()
