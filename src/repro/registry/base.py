"""Typed component registries.

A :class:`Registry` maps component names (``"fair-gossip"``, ``"cyclon"``,
``"zipf"`` ...) to a :class:`ComponentEntry`: a factory, a human-readable
description, and a parameter schema (:class:`Param` rows with defaults and
help text).  Five registries exist — ``system``, ``membership``,
``interest``, ``workload``, and ``policy`` (see
:mod:`repro.registry.builtins`) — and together they replace the hard-coded
``if/elif`` dispatch that used to live in
``repro.experiments.scenarios.build_system``.

Lookups of unknown names raise :class:`RegistryError` (a ``ValueError``
subclass, so legacy ``except ValueError`` call sites keep working) with a
did-you-mean suggestion and the full list of registered names.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Param", "ComponentEntry", "Registry", "RegistryError", "suggest"]


class RegistryError(ValueError):
    """Unknown component name or invalid component parameters."""


def suggest(name: str, candidates: Iterable[str]) -> str:
    """A ``did you mean`` clause for ``name`` against ``candidates`` ("" if none)."""
    matches = difflib.get_close_matches(name, list(candidates), n=3, cutoff=0.5)
    if not matches:
        return ""
    return f" — did you mean {', '.join(repr(match) for match in matches)}?"


@dataclass(frozen=True)
class Param:
    """One parameter a component reads from its spec section."""

    name: str
    default: object = None
    help: str = ""

    def describe(self) -> str:
        """One schema line for ``describe`` output."""
        text = f"{self.name} (default: {self.default!r})"
        if self.help:
            text += f" — {self.help}"
        return text


@dataclass(frozen=True)
class ComponentEntry:
    """A registered component: factory plus parameter schema."""

    name: str
    factory: Callable[..., Any]
    description: str = ""
    params: Tuple[Param, ...] = ()
    aliases: Tuple[str, ...] = ()

    def describe(self) -> str:
        """Multi-line schema listing (name, description, parameters)."""
        lines = [self.name + (f" (aliases: {', '.join(self.aliases)})" if self.aliases else "")]
        if self.description:
            lines.append(f"  {self.description}")
        if self.params:
            lines.append("  parameters:")
            lines.extend(f"    {param.describe()}" for param in self.params)
        else:
            lines.append("  parameters: (none)")
        return "\n".join(lines)


class Registry:
    """Name → :class:`ComponentEntry` mapping for one component role.

    Parameters
    ----------
    kind:
        Human-readable role name used in error messages (``"system"``,
        ``"membership"`` ...).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, ComponentEntry] = {}
        self._aliases: Dict[str, str] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., Any],
        description: str = "",
        params: Sequence[Param] = (),
        aliases: Sequence[str] = (),
        replace: bool = False,
    ) -> ComponentEntry:
        """Add a component; ``replace`` guards against accidental collisions."""
        if not replace and (name in self._entries or name in self._aliases):
            raise RegistryError(f"{self.kind} {name!r} is already registered")
        entry = ComponentEntry(
            name=name,
            factory=factory,
            description=description,
            params=tuple(params),
            aliases=tuple(aliases),
        )
        if not replace:
            for alias in entry.aliases:
                if alias in self._entries or alias in self._aliases:
                    raise RegistryError(
                        f"{self.kind} alias {alias!r} is already registered"
                    )
        self._entries[name] = entry
        for alias in entry.aliases:
            self._aliases[alias] = name
        return entry

    def unregister(self, name: str) -> None:
        """Remove a component (used by tests registering throwaway entries)."""
        entry = self._entries.pop(name, None)
        if entry is not None:
            for alias in entry.aliases:
                self._aliases.pop(alias, None)

    def get(self, name: str) -> ComponentEntry:
        """Look a component up by name or alias.

        Unknown names raise :class:`RegistryError` with a did-you-mean
        suggestion and the full list of registered components.
        """
        canonical = self._aliases.get(name, name)
        entry = self._entries.get(canonical)
        if entry is None:
            known = ", ".join(self.names())
            raise RegistryError(
                f"unknown {self.kind} {name!r}{suggest(name, self._known())}; "
                f"registered {self.kind}s: {known}"
            )
        return entry

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._aliases

    def names(self) -> List[str]:
        """Registered canonical names, in registration order."""
        return list(self._entries)

    def entries(self) -> List[ComponentEntry]:
        """Registered entries, in registration order."""
        return list(self._entries.values())

    def _known(self) -> List[str]:
        return list(self._entries) + list(self._aliases)
