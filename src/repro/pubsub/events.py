"""Events: the unit of information the system disseminates.

Section 2 of the paper models an event as carrying *attributes and
corresponding values* which are matched against filters.  Topic-based
selection is the degenerate case of a single ``topic`` attribute without
conditions, so a single :class:`Event` type serves both the topic-based and
the expressive (content-based) dissemination modes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["Event", "EventFactory", "TOPIC_ATTRIBUTE"]

#: Reserved attribute name that carries the topic for topic-based selection.
TOPIC_ATTRIBUTE = "topic"


@dataclass(frozen=True)
class Event:
    """An immutable published event.

    Attributes
    ----------
    event_id:
        Globally unique identifier (publisher id + a publisher-local
        sequence number is the usual scheme).
    publisher:
        Node id of the publishing process.
    attributes:
        Attribute/value mapping, including ``topic`` when the event belongs
        to a topic.  Values are restricted to hashable scalars so matching
        stays cheap.
    published_at:
        Simulated time of publication (used for latency/round measurements).
    size:
        Abstract payload size used by the payload-aware fairness accounting
        (Figure 3 weighs contribution by gossip message size).
    """

    event_id: str
    publisher: str
    attributes: Mapping[str, Any] = field(default_factory=dict)
    published_at: float = 0.0
    size: int = 1

    @property
    def topic(self) -> Optional[str]:
        """The event's topic, or ``None`` for purely content-based events."""
        value = self.attributes.get(TOPIC_ATTRIBUTE)
        return None if value is None else str(value)

    def attribute(self, name: str, default: Any = None) -> Any:
        """Return a single attribute value with an optional default."""
        return self.attributes.get(name, default)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "event_id": self.event_id,
            "publisher": self.publisher,
            "attributes": dict(self.attributes),
            "published_at": self.published_at,
            "size": self.size,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "Event":
        """Rebuild an event from :meth:`to_dict` output."""
        return Event(
            event_id=payload["event_id"],
            publisher=payload["publisher"],
            attributes=dict(payload.get("attributes", {})),
            published_at=float(payload.get("published_at", 0.0)),
            size=int(payload.get("size", 1)),
        )

    def with_time(self, published_at: float) -> "Event":
        """Return a copy stamped with a publication time."""
        return Event(
            event_id=self.event_id,
            publisher=self.publisher,
            attributes=dict(self.attributes),
            published_at=published_at,
            size=self.size,
        )

    def __hash__(self) -> int:
        return hash(self.event_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.event_id == other.event_id


class EventFactory:
    """Creates events with unique ids for a given publisher.

    The factory guarantees uniqueness by combining the publisher id with a
    local monotonically increasing sequence number, mirroring how real
    publish/subscribe clients generate event ids without coordination.
    """

    def __init__(self, publisher: str) -> None:
        self.publisher = publisher
        self._sequence = itertools.count()
        self._created = 0

    def create(
        self,
        attributes: Optional[Mapping[str, Any]] = None,
        topic: Optional[str] = None,
        published_at: float = 0.0,
        size: int = 1,
    ) -> Event:
        """Build a new event; ``topic`` is merged into the attribute map."""
        merged: Dict[str, Any] = dict(attributes or {})
        if topic is not None:
            merged[TOPIC_ATTRIBUTE] = topic
        sequence = next(self._sequence)
        self._created += 1
        return Event(
            event_id=f"{self.publisher}#{sequence}",
            publisher=self.publisher,
            attributes=merged,
            published_at=published_at,
            size=size,
        )

    @property
    def created_count(self) -> int:
        """Number of events created so far by this factory."""
        return self._created
