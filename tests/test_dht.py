"""Tests for the structured baselines: id space, Pastry routing, Scribe, SplitStream, DKS."""

from __future__ import annotations

import pytest

from repro.core import EXPRESSIVE_POLICY, evaluate_fairness
from repro.dht import DksSystem, IdSpace, PastryRouter, ScribeSystem, SplitStreamSystem
from repro.pubsub import ContentFilter, TopicFilter
from repro.sim import Network, Simulator


def make_ids(count):
    return [f"n{index:02d}" for index in range(count)]


class TestIdSpace:
    def test_hash_is_deterministic_and_in_range(self):
        space = IdSpace()
        first = space.hash_name("topic-a")
        assert first == space.hash_name("topic-a")
        assert 0 <= first < space.size

    def test_digit_extraction(self):
        space = IdSpace(bits=8, digit_bits=4)
        identifier = 0xA7
        assert space.digit(identifier, 0) == 0xA
        assert space.digit(identifier, 1) == 0x7
        with pytest.raises(ValueError):
            space.digit(identifier, 2)

    def test_shared_prefix_length(self):
        space = IdSpace(bits=16, digit_bits=4)
        assert space.shared_prefix_length(0xABCD, 0xABFF) == 2
        assert space.shared_prefix_length(0xABCD, 0xABCD) == 4
        assert space.shared_prefix_length(0x1BCD, 0xABCD) == 0

    def test_distance_is_circular(self):
        space = IdSpace(bits=8, digit_bits=4)
        assert space.distance(1, 255) == 2
        assert space.distance(0, 128) == 128

    def test_closest_breaks_ties_deterministically(self):
        space = IdSpace(bits=8, digit_bits=4)
        assert space.closest(10, [5, 15]) == 5
        assert space.closest(10, []) is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IdSpace(bits=10, digit_bits=4)
        with pytest.raises(ValueError):
            IdSpace(bits=0)


class TestPastryRouter:
    def test_route_reaches_root_with_logarithmic_hops(self):
        router = PastryRouter(make_ids(64))
        key = router.key_for("some-topic")
        result = router.route("n00", key)
        assert result.root == router.root_of(key)
        assert result.path[0] == "n00"
        assert result.path[-1] == result.root
        assert result.hops <= router.space.digits + router.leaf_set_size + 1

    def test_every_start_reaches_the_same_root(self):
        router = PastryRouter(make_ids(40))
        key = router.key_for("topic-x")
        roots = {router.route(start, key).root for start in make_ids(40)}
        assert len(roots) == 1

    def test_route_from_root_has_zero_hops(self):
        router = PastryRouter(make_ids(20))
        key = router.key_for("t")
        root = router.root_of(key)
        assert router.route(root, key).hops == 0
        assert router.next_hop(root, key) is None

    def test_dead_nodes_are_routed_around(self):
        router = PastryRouter(make_ids(30))
        key = router.key_for("t")
        original_root = router.root_of(key)
        router.set_alive(original_root, False)
        new_root = router.root_of(key)
        assert new_root != original_root
        result = router.route("n00" if "n00" != original_root else "n01", key)
        assert original_root not in result.path

    def test_distinct_identifiers_even_with_collisions(self):
        router = PastryRouter(make_ids(100))
        identifiers = [router.node_identifier(name) for name in make_ids(100)]
        assert len(set(identifiers)) == 100

    def test_unknown_node_rejected(self):
        router = PastryRouter(make_ids(5))
        with pytest.raises(KeyError):
            router.set_alive("stranger", True)
        with pytest.raises(ValueError):
            PastryRouter([])


def run_topic_workload(system, simulator, node_ids, topics=("a", "b", "c", "d"), publications=24):
    for index, node_id in enumerate(node_ids):
        system.subscribe(node_id, TopicFilter(topics[index % len(topics)]))
    events = []
    for index in range(publications):
        events.append(system.publish(node_ids[index % len(node_ids)], topic=topics[index % len(topics)]))
        simulator.run(until=simulator.now + 0.2)
    simulator.run(until=simulator.now + 20.0)
    return events


class TestScribeSystem:
    def build(self, count=32, seed=5):
        simulator = Simulator(seed=seed)
        network = Network(simulator)
        ids = make_ids(count)
        return ScribeSystem(simulator, network, ids), simulator, ids

    def test_all_subscribers_deliver(self):
        system, simulator, ids = self.build()
        run_topic_workload(system, simulator, ids)
        # every subscriber of topic t delivers every event on t: 32/4 subs * 24/4... compute via oracle
        expected = 0
        for event in system.delivery_log.event_ids():
            pass
        # Use the subscription table oracle directly.
        assert system.delivery_log.total_deliveries() == 24 * (32 // 4)

    def test_non_subscribers_do_not_deliver(self):
        system, simulator, ids = self.build(count=16, seed=6)
        system.subscribe(ids[0], TopicFilter("only"))
        system.publish(ids[5], topic="only")
        simulator.run(until=simulator.now + 10)
        assert system.delivery_log.nodes() == [ids[0]]

    def test_interior_nodes_forward_without_interest(self):
        system, simulator, ids = self.build(count=48, seed=7)
        topic = "hot"
        for node_id in ids[:24]:
            system.subscribe(node_id, TopicFilter(topic))
        for index in range(10):
            system.publish(ids[30], topic=topic)
            simulator.run(until=simulator.now + 0.5)
        simulator.run(until=simulator.now + 10)
        forwarders = system.pure_forwarders(topic)
        # With rendezvous routing there is almost always at least one node on
        # a join path that never subscribed -- the paper's unfairness witness.
        interior_work = sum(
            system.ledger.account(node_id).gossip_messages_sent for node_id in forwarders
        )
        assert forwarders
        assert interior_work >= 0

    def test_rendezvous_concentrates_contribution(self):
        system, simulator, ids = self.build(count=32, seed=8)
        run_topic_workload(system, simulator, ids)
        report = evaluate_fairness(
            EXPRESSIVE_POLICY.contributions(system.ledger),
            EXPRESSIVE_POLICY.benefits(system.ledger),
        )
        assert report.contribution_jain < 0.6  # load concentrates at roots

    def test_content_filter_rejected(self):
        system, _, ids = self.build(count=4, seed=9)
        with pytest.raises(TypeError):
            system.subscribe(ids[0], ContentFilter.build(level=1))

    def test_publish_requires_topic(self):
        system, _, ids = self.build(count=4, seed=10)
        with pytest.raises(ValueError):
            system.publish(ids[0], payload="x")

    def test_unsubscribe_prunes_tree(self):
        system, simulator, ids = self.build(count=16, seed=11)
        system.subscribe(ids[3], TopicFilter("t"))
        simulator.run(until=simulator.now + 5)
        system.unsubscribe(ids[3], TopicFilter("t"))
        simulator.run(until=simulator.now + 5)
        system.publish(ids[0], topic="t")
        simulator.run(until=simulator.now + 5)
        assert system.delivery_log.delivery_count(ids[3]) == 0

    def test_rendezvous_lookup(self):
        system, _, ids = self.build(count=16, seed=12)
        rendezvous = system.rendezvous_of("some-topic")
        assert rendezvous in ids


class TestSplitStreamSystem:
    def build(self, count=32, stripes=4, seed=13):
        simulator = Simulator(seed=seed)
        network = Network(simulator)
        ids = make_ids(count)
        return SplitStreamSystem(simulator, network, ids, stripes=stripes), simulator, ids

    def test_delivery_equivalent_to_scribe(self):
        system, simulator, ids = self.build()
        run_topic_workload(system, simulator, ids)
        assert system.delivery_log.total_deliveries() == 24 * (32 // 4)

    def test_striping_spreads_load_more_evenly_than_scribe(self):
        scribe_system, scribe_sim, ids = TestScribeSystem().build(count=40, seed=14)
        run_topic_workload(scribe_system, scribe_sim, ids, topics=("hot",), publications=40)
        split_system, split_sim, ids2 = self.build(count=40, stripes=8, seed=14)
        run_topic_workload(split_system, split_sim, ids2, topics=("hot",), publications=40)

        def contribution_jain(system):
            return evaluate_fairness(
                EXPRESSIVE_POLICY.contributions(system.ledger),
                EXPRESSIVE_POLICY.benefits(system.ledger),
            ).contribution_jain

        assert contribution_jain(split_system) > contribution_jain(scribe_system)

    def test_stripe_topics_and_counter(self):
        system, _, _ = self.build(count=8, stripes=3, seed=15)
        assert system.stripe_topics("t") == ["t#0", "t#1", "t#2"]
        picks = {system._next_stripe("t") for _ in range(6)}
        assert picks == {"t#0", "t#1", "t#2"}

    def test_invalid_stripes(self):
        simulator = Simulator(seed=1)
        network = Network(simulator)
        with pytest.raises(ValueError):
            SplitStreamSystem(simulator, network, make_ids(4), stripes=0)


class TestDksSystem:
    def build(self, count=32, seed=16):
        simulator = Simulator(seed=seed)
        network = Network(simulator)
        ids = make_ids(count)
        return DksSystem(simulator, network, ids), simulator, ids

    def test_all_subscribers_deliver(self):
        system, simulator, ids = self.build()
        run_topic_workload(system, simulator, ids)
        assert system.delivery_log.total_deliveries() == 24 * (32 // 4)

    def test_only_group_members_receive_group_sends(self):
        system, simulator, ids = self.build(count=16, seed=17)
        system.subscribe(ids[1], TopicFilter("t"))
        system.publish(ids[0], topic="t")
        simulator.run(until=simulator.now + 10)
        assert system.delivery_log.nodes() == [ids[1]]

    def test_coordinator_carries_dispatch_load(self):
        system, simulator, ids = self.build(count=32, seed=18)
        topic = "hot"
        for node_id in ids[:16]:
            system.subscribe(node_id, TopicFilter(topic))
        for index in range(20):
            system.publish(ids[20], topic=topic)
            simulator.run(until=simulator.now + 0.3)
        simulator.run(until=simulator.now + 10)
        coordinator = system.coordinator_of(topic)
        coordinator_sends = system.ledger.account(coordinator).gossip_messages_sent
        average_sends = sum(
            system.ledger.account(node_id).gossip_messages_sent for node_id in ids
        ) / len(ids)
        assert coordinator_sends > 3 * average_sends

    def test_index_forwarders_charged_subscription_work(self):
        system, simulator, ids = self.build(count=32, seed=19)
        for node_id in ids:
            system.subscribe(node_id, TopicFilter("popular"))
        simulator.run(until=simulator.now + 10)
        forwards = sum(system.ledger.account(node_id).subscription_forwards for node_id in ids)
        assert forwards > 0

    def test_unsubscribe_removes_from_group(self):
        system, simulator, ids = self.build(count=16, seed=20)
        system.subscribe(ids[2], TopicFilter("t"))
        simulator.run(until=simulator.now + 5)
        system.unsubscribe(ids[2], TopicFilter("t"))
        simulator.run(until=simulator.now + 5)
        system.publish(ids[0], topic="t")
        simulator.run(until=simulator.now + 5)
        assert system.delivery_log.delivery_count(ids[2]) == 0

    def test_content_filter_rejected(self):
        system, _, ids = self.build(count=4, seed=21)
        with pytest.raises(TypeError):
            system.subscribe(ids[0], ContentFilter.build(level=1))
