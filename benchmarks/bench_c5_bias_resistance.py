"""Experiment C5 (§5.2 challenge 6): bias resistance.

A fraction of peers behaves selfishly: they forward stale events and
concentrate their gossip on colluders, inflating their message count (the
naive contribution measure) without helping dissemination.  The benchmark
measures (a) that the attack indeed does not show up in raw contribution
counts, and (b) the precision/recall of the receiver-side audit detector at
several attacker fractions.  Expected shape: detector recall well above 0.5
with good precision, while the attackers' raw contribution is
indistinguishable from honest nodes'.
"""

from __future__ import annotations

from common import attach_extra_info
from repro.analysis.tables import Table
from repro.core import BiasDetector, ForwardAudit, SelfishGossipNode
from repro.gossip import GossipSystem
from repro.membership import full_membership_provider
from repro.pubsub import TopicFilter
from repro.sim import Network, Simulator


def run_attack(selfish_fraction: float, seed: int = 55, nodes: int = 80):
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    node_ids = [f"node-{index:03d}" for index in range(nodes)]
    system = GossipSystem(
        simulator,
        network,
        node_ids,
        node_kwargs={"fanout": 3, "gossip_size": 6, "round_period": 1.0},
    )
    audit = ForwardAudit()
    selfish_count = int(nodes * selfish_fraction)
    selfish_ids = node_ids[:selfish_count]
    for node_id in selfish_ids:
        system.nodes[node_id].leave()
        system.registry.remove(node_id)
        attacker = SelfishGossipNode(
            node_id,
            simulator,
            network,
            membership_provider=full_membership_provider(network),
            ledger=system.ledger,
            delivery_log=system.delivery_log,
            fanout=3,
            gossip_size=6,
            colluders=[other for other in selfish_ids if other != node_id],
        )
        attacker.start()
        system.nodes[node_id] = attacker
        system.registry.add(attacker)
    for node_id, node in system.nodes.items():
        node.forward_audit = audit
    for node_id in node_ids:
        system.subscribe(node_id, TopicFilter("hot"))
    for index in range(60):
        system.publish(node_ids[selfish_count + index % 10], topic="hot")
        simulator.run(until=simulator.now + 0.4)
    simulator.run(until=simulator.now + 15)

    honest_ids = node_ids[selfish_count:]
    selfish_sends = sum(
        system.ledger.account(node_id).gossip_messages_sent for node_id in selfish_ids
    ) / max(len(selfish_ids), 1)
    honest_sends = sum(
        system.ledger.account(node_id).gossip_messages_sent for node_id in honest_ids
    ) / len(honest_ids)
    report = BiasDetector(min_messages=8).analyse(audit)
    precision, recall = report.precision_recall(selfish_ids)
    return {
        "selfish_fraction": selfish_fraction,
        "selfish_mean_sends": selfish_sends,
        "honest_mean_sends": honest_sends,
        "detector_precision": precision,
        "detector_recall": recall,
        "delivery_count": system.delivery_log.total_deliveries(),
    }


def test_c5_bias_resistance(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_attack(fraction) for fraction in (0.05, 0.1, 0.2)], rounds=1, iterations=1
    )
    table = Table(
        [
            "selfish_fraction",
            "selfish_mean_sends",
            "honest_mean_sends",
            "detector_precision",
            "detector_recall",
            "delivery_count",
        ],
        title="C5 — selfish peers: inflated contribution vs receiver-side audit detection",
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table.render())
    benchmark.extra_info["rows"] = rows
    for row in rows:
        # The attack works against naive counting: attackers send at least
        # as many gossip messages as honest peers...
        assert row["selfish_mean_sends"] >= 0.7 * row["honest_mean_sends"]
        # ...but the audit-based detector identifies most of them.
        assert row["detector_recall"] >= 0.5
        assert row["detector_precision"] >= 0.5
