"""Publication traffic generators.

Drives the ``publish`` side of an experiment: which node publishes, on which
topic (or with which content attributes), at what rate, for how long.  The
generator schedules publications directly on the simulator so dissemination
and publication interleave exactly as they would in a live system, instead
of front-loading all events at time zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..pubsub.events import Event
from ..sim.engine import Simulator
from .interest import AttributeInterest
from .popularity import TopicPopularity

__all__ = ["PublicationSchedule", "TopicPublicationWorkload", "ContentPublicationWorkload"]


@dataclass
class PublicationSchedule:
    """Record of what a workload published (used by analysis as ground truth)."""

    events: List[Event] = field(default_factory=list)

    def add(self, event: Event) -> None:
        self.events.append(event)

    def count(self) -> int:
        """Number of events published so far."""
        return len(self.events)

    def by_topic(self) -> Dict[str, int]:
        """Events per topic."""
        counts: Dict[str, int] = {}
        for event in self.events:
            topic = event.topic or "<none>"
            counts[topic] = counts.get(topic, 0) + 1
        return counts


class TopicPublicationWorkload:
    """Publishes topic events at a steady rate with Zipf topic selection.

    Parameters
    ----------
    system:
        Any :class:`~repro.pubsub.interfaces.DisseminationSystem`.
    popularity:
        Topic popularity; publication topics are drawn from it, so popular
        topics carry proportionally more traffic.
    publishers:
        Node ids allowed to publish (round-robin with random topic choice).
    rate:
        Events per time unit (spread evenly within the unit).
    event_size:
        Abstract size attached to every event.
    """

    def __init__(
        self,
        system,
        simulator: Simulator,
        popularity: TopicPopularity,
        publishers: Sequence[str],
        rate: float = 4.0,
        event_size: int = 1,
        rng_name: str = "workload-publications",
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not publishers:
            raise ValueError("at least one publisher is required")
        self.system = system
        self.simulator = simulator
        self.popularity = popularity
        self.publishers = list(publishers)
        self.rate = rate
        self.event_size = event_size
        self.schedule = PublicationSchedule()
        self._rng_name = rng_name
        self._publisher_index = 0

    def start(self, duration: float, start_at: float = 0.0) -> int:
        """Schedule all publications within ``[start_at, start_at + duration)``.

        Returns the number of scheduled publications.
        """
        total = int(self.rate * duration)
        interval = duration / max(total, 1)
        for index in range(total):
            at = start_at + index * interval
            self.simulator.schedule_at(at, self._publish_one, label="workload-publish")
        return total

    def _publish_one(self) -> None:
        rng = self.simulator.rng.stream(self._rng_name)
        topic = self.popularity.sample(rng)
        publisher = self.publishers[self._publisher_index % len(self.publishers)]
        self._publisher_index += 1
        event = self.system.publish(publisher, topic=topic, size=self.event_size)
        self.schedule.add(event)


class ContentPublicationWorkload:
    """Publishes content-based events whose attributes come from an interest model."""

    def __init__(
        self,
        system,
        simulator: Simulator,
        attribute_model: AttributeInterest,
        publishers: Sequence[str],
        rate: float = 4.0,
        rng_name: str = "workload-content",
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not publishers:
            raise ValueError("at least one publisher is required")
        self.system = system
        self.simulator = simulator
        self.attribute_model = attribute_model
        self.publishers = list(publishers)
        self.rate = rate
        self.schedule = PublicationSchedule()
        self._rng_name = rng_name
        self._publisher_index = 0

    def start(self, duration: float, start_at: float = 0.0) -> int:
        """Schedule all publications within the window; returns how many."""
        total = int(self.rate * duration)
        interval = duration / max(total, 1)
        for index in range(total):
            at = start_at + index * interval
            self.simulator.schedule_at(at, self._publish_one, label="workload-publish")
        return total

    def _publish_one(self) -> None:
        rng = self.simulator.rng.stream(self._rng_name)
        attributes = self.attribute_model.random_event_attributes(rng)
        publisher = self.publishers[self._publisher_index % len(self.publishers)]
        self._publisher_index += 1
        event = self.system.publish(publisher, **attributes)
        self.schedule.add(event)
