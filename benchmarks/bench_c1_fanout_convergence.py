"""Experiment C1 (§5.2 challenge 1): how fast does the adaptive fanout converge?

A step change in interest at mid-run: a set of nodes that benefited nothing
suddenly subscribes to the hot topic.  The benchmark measures how many rounds
their fanout controllers need to settle on a new stable recommendation, and
compares two smoothing settings (the ablation DESIGN.md calls out: reactive
vs heavily smoothed benefit signal).  Expected shape: convergence within a
couple of dozen rounds, faster (but noisier) with less smoothing.
"""

from __future__ import annotations

from common import BASE_CONFIG, attach_extra_info
from repro.analysis.tables import Table
from repro.core import FairGossipSystem, FanoutSchedule, PayloadSchedule
from repro.pubsub import TopicFilter
from repro.sim import Network, Simulator
from repro.workloads import TopicPopularity, TopicPublicationWorkload


def run_step_change(smoothing: float, seed: int = 77):
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    node_ids = [f"node-{index:03d}" for index in range(60)]
    system = FairGossipSystem(
        simulator,
        network,
        node_ids,
        node_kwargs={
            "fanout": 4,
            "gossip_size": 8,
            "round_period": 1.0,
            "smoothing": smoothing,
            "fanout_schedule": FanoutSchedule(base_fanout=4, min_fanout=1, max_fanout=12),
            "payload_schedule": PayloadSchedule(base_payload=8, min_payload=1, max_payload=32),
        },
    )
    popularity = TopicPopularity.uniform(1, prefix="hot")
    topic = popularity.topics[0]
    early_subscribers = node_ids[:20]
    late_subscribers = node_ids[20:40]
    for node_id in early_subscribers:
        system.subscribe(node_id, TopicFilter(topic))
    workload = TopicPublicationWorkload(
        system, simulator, popularity, publishers=node_ids[40:44], rate=6.0
    )
    workload.start(duration=80.0, start_at=1.0)
    system.run(until=40.0)
    # Step change: a new group becomes interested at t=40.
    for node_id in late_subscribers:
        system.subscribe(node_id, TopicFilter(topic))
    rounds_before = {
        node_id: len(system.node(node_id).fanout_controller.history) for node_id in late_subscribers
    }
    system.run(until=100.0)
    convergence_rounds = []
    final_fanouts = []
    for node_id in late_subscribers:
        controller = system.node(node_id).fanout_controller
        post_change = controller.history[rounds_before[node_id]:]
        final_fanouts.append(controller.current_fanout)
        for index in range(len(post_change) - 5 + 1):
            window = post_change[index : index + 5]
            if len(set(window)) == 1 and window[0] > 1:
                convergence_rounds.append(index + 1)
                break
    return {
        "smoothing": smoothing,
        "converged_nodes": len(convergence_rounds),
        "mean_rounds_to_converge": (
            sum(convergence_rounds) / len(convergence_rounds) if convergence_rounds else float("nan")
        ),
        "mean_final_fanout": sum(final_fanouts) / len(final_fanouts),
        "late_group_size": len(late_subscribers),
    }


def test_c1_fanout_convergence_after_interest_change(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_step_change(smoothing) for smoothing in (0.8, 0.3)], rounds=1, iterations=1
    )
    table = Table(
        ["smoothing", "converged_nodes", "late_group_size", "mean_rounds_to_converge", "mean_final_fanout"],
        title="C1 — adaptive fanout convergence after a step change in interest (t=40)",
    )
    for row in rows:
        table.add_row(**row)
    print()
    print(table.render())
    benchmark.extra_info["rows"] = rows
    for row in rows:
        # A clear majority of the newly interested nodes settles on a stable
        # elevated fanout (the reactive setting is noisier, so "stable for 5
        # consecutive rounds" is a strict criterion), and convergence is fast.
        assert row["converged_nodes"] >= 0.5 * row["late_group_size"]
        assert row["mean_rounds_to_converge"] < 30
    # Less smoothing (higher alpha) never converges more slowly here, and the
    # heavily-smoothed run must still converge a majority of nodes.
    assert rows[1]["converged_nodes"] >= rows[0]["converged_nodes"]
