"""Content-addressed on-disk cache for experiment results.

Every :class:`~repro.experiments.config.ExperimentConfig` hashes to a stable
key (:func:`config_hash`), and a finished
:class:`~repro.experiments.runner.ExperimentResult` is stored as canonical
JSON under that key.  Because experiments are deterministic functions of
their config (see ``docs/ARCHITECTURE.md``), a cache hit is
indistinguishable from a recomputation — so repeated sweeps, benchmark
re-runs, and CLI invocations skip every already-computed grid point.

Key scheme
----------
``sha256("repro-result:v{SCHEMA}:{code_version}:" + canonical_json(config.to_dict()))``
where canonical JSON uses sorted keys and no whitespace.  The hash covers
*every* config field, including ``name``: the name feeds into table rows and
the fairness summary, so two configs differing only by name produce
different artifacts.  It also covers the package version
(``repro.__version__``), so upgrading to a release with different numeric
behavior orphans old artifacts instead of silently mixing old- and new-code
numbers in one table.  Artifacts live at ``<dir>/<hash[:2]>/<hash>.json``
to keep directories small.

The cache directory defaults to ``.repro-cache`` under the current working
directory and can be overridden with the ``REPRO_CACHE_DIR`` environment
variable or explicitly in code / via the CLI's ``--cache-dir``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from .. import __version__ as _CODE_VERSION
from .config import ExperimentConfig
from .runner import ExperimentResult

__all__ = ["ARTIFACT_SCHEMA", "DEFAULT_CACHE_DIR", "config_hash", "ResultCache"]

#: Version of the on-disk artifact layout; bump when ``to_dict`` output
#: changes incompatibly.  Old artifacts then simply stop matching and are
#: recomputed.
ARTIFACT_SCHEMA = 1

#: Directory used when neither the constructor nor ``REPRO_CACHE_DIR`` says
#: otherwise.
DEFAULT_CACHE_DIR = ".repro-cache"


def config_hash(config: ExperimentConfig) -> str:
    """Stable content hash of a config plus the code version (the cache key)."""
    canonical = json.dumps(config.to_dict(), sort_keys=True, separators=(",", ":"))
    tagged = f"repro-result:v{ARTIFACT_SCHEMA}:{_CODE_VERSION}:{canonical}"
    return hashlib.sha256(tagged.encode("utf-8")).hexdigest()


class ResultCache:
    """Load and store experiment results keyed by config hash.

    The cache is safe against corrupt or stale files: anything that fails to
    parse or fails the schema check reads as a miss and is overwritten by the
    next store.  Writes are atomic (temp file + rename) so two processes of a
    parallel sweep racing on the same point cannot leave a torn artifact.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        resolved = directory or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.directory = Path(resolved)

    def path_for(self, config: ExperimentConfig) -> Path:
        """Artifact path a result for ``config`` would be stored at."""
        key = config_hash(config)
        return self.directory / key[:2] / f"{key}.json"

    def load(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """Return the cached result for ``config``, or ``None`` on a miss."""
        path = self.path_for(config)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != ARTIFACT_SCHEMA:
            return None
        try:
            return ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, AttributeError):
            return None

    def store(self, result: ExperimentResult) -> Path:
        """Persist ``result`` and return the artifact path."""
        path = self.path_for(result.config)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": ARTIFACT_SCHEMA,
            "config_hash": config_hash(result.config),
            "result": result.to_dict(),
        }
        encoded = json.dumps(payload, sort_keys=True, indent=2)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(encoded)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def entry_count(self) -> int:
        """Number of artifacts currently stored."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
