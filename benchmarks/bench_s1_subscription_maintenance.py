"""Experiment S1 (§5.1): who pays for subscription maintenance?

Continuous subscribe/unsubscribe churn with per-topic churn rates differing
by an order of magnitude (Zipf weights).  Compares the structured systems —
where (un)subscriptions are routed through index/rendezvous nodes — with the
gossip systems, measuring how concentrated the maintenance work
(subscription forwards) is and whether it lands on nodes that benefit.
Expected shape: in Scribe/DKS a small set of index nodes absorbs most of the
maintenance traffic of popular, churn-heavy topics; gossip systems spread it.
"""

from __future__ import annotations

from common import BASE_CONFIG, attach_extra_info, print_results, run_compare
from repro.core import gini_coefficient


def run_subscription_churn():
    base = BASE_CONFIG.with_overrides(
        name="s1",
        nodes=80,
        topics=16,
        topic_exponent=1.2,
        duration=25.0,
        drain_time=10.0,
        publication_rate=1.0,
        subscription_churn_rate=6.0,
    )
    results = run_compare(base, ["scribe", "dks", "gossip", "fair-gossip"], keep_system=True)
    maintenance = {}
    for result in results:
        ledger = result.system.ledger
        forwards = {
            node_id: ledger.account(node_id).subscription_forwards for node_id in ledger.node_ids()
        }
        maintenance[result.config.name] = {
            "maintenance_msgs": float(sum(forwards.values())),
            "maintenance_gini": gini_coefficient(forwards.values()),
        }
    return results, maintenance


def test_s1_subscription_maintenance_fairness(benchmark):
    results, maintenance = benchmark.pedantic(run_subscription_churn, rounds=1, iterations=1)
    print_results(
        "S1 — subscription churn: total maintenance work and its concentration (Gini)",
        results,
        extra_columns=maintenance,
    )
    attach_extra_info(benchmark, results)
    benchmark.extra_info["maintenance"] = maintenance
    scribe_gini = maintenance["s1/scribe"]["maintenance_gini"]
    dks_gini = maintenance["s1/dks"]["maintenance_gini"]
    # Structured systems route every (un)subscribe through the overlay, so
    # maintenance exists and concentrates on the index/rendezvous paths,
    # while the gossip systems have no routed subscription maintenance at all.
    assert maintenance["s1/scribe"]["maintenance_msgs"] > 0
    assert maintenance["s1/dks"]["maintenance_msgs"] > 0
    assert scribe_gini > 0.2
    assert dks_gini > 0.3
    assert maintenance["s1/gossip"]["maintenance_msgs"] == 0
    assert scribe_gini > maintenance["s1/gossip"]["maintenance_gini"]
