"""Tests for the simulation core: RNG streams, clock, engine, timers."""

from __future__ import annotations

import pytest

from repro.sim import (
    PeriodicTimer,
    RngRegistry,
    SimulationError,
    Simulator,
    VirtualClock,
    derive_seed,
    weighted_choice,
    zipf_weights,
)


class TestRngRegistry:
    def test_same_seed_same_draws(self):
        first = RngRegistry(seed=7)
        second = RngRegistry(seed=7)
        assert [first.stream("a").random() for _ in range(5)] == [
            second.stream("a").random() for _ in range(5)
        ]

    def test_different_streams_are_independent(self):
        registry = RngRegistry(seed=7)
        a = [registry.stream("a").random() for _ in range(5)]
        registry2 = RngRegistry(seed=7)
        # Interleaving draws from another stream must not perturb stream "a".
        registry2.stream("b").random()
        b = [registry2.stream("a").random() for _ in range(5)]
        assert a == b

    def test_stream_order_does_not_matter(self):
        first = RngRegistry(seed=3)
        second = RngRegistry(seed=3)
        first.stream("x")
        first_value = first.stream("y").random()
        second.stream("y")
        second_value = second.stream("y").random()
        assert first_value == second_value

    def test_spawn_creates_distinct_namespace(self):
        registry = RngRegistry(seed=11)
        child = registry.spawn("workload")
        assert child.seed != registry.seed
        assert child.stream("a").random() != registry.stream("a").random()

    def test_reset_restarts_streams(self):
        registry = RngRegistry(seed=5)
        first = registry.stream("s").random()
        registry.reset()
        assert registry.stream("s").random() == first

    def test_derive_seed_avoids_similar_name_collisions(self):
        assert derive_seed(1, "node-1") != derive_seed(1, "node-11")

    def test_zipf_weights_normalised_and_decreasing(self):
        weights = zipf_weights(10, 1.2)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert all(weights[i] >= weights[i + 1] for i in range(9))

    def test_zipf_weights_uniform_when_exponent_zero(self):
        weights = zipf_weights(4, 0.0)
        assert all(abs(weight - 0.25) < 1e-9 for weight in weights)

    def test_zipf_weights_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, -1.0)

    def test_weighted_choice_validates_lengths(self):
        registry = RngRegistry(seed=1)
        with pytest.raises(ValueError):
            weighted_choice(registry.stream("w"), ["a"], [0.5, 0.5])
        with pytest.raises(ValueError):
            weighted_choice(registry.stream("w"), [], [])

    def test_weighted_choice_respects_zero_weight(self):
        registry = RngRegistry(seed=2)
        rng = registry.stream("w")
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        clock.advance_to(2.5)
        assert clock.now == 2.5

    def test_cannot_move_backwards(self):
        clock = VirtualClock(start=5.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_reset(self):
        clock = VirtualClock(start=3.0)
        clock.reset()
        assert clock.now == 0.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)


class TestSimulator:
    def test_events_run_in_timestamp_order(self, simulator):
        order = []
        simulator.schedule(2.0, lambda: order.append("late"))
        simulator.schedule(1.0, lambda: order.append("early"))
        simulator.run()
        assert order == ["early", "late"]

    def test_ties_break_by_insertion_order(self, simulator):
        order = []
        simulator.schedule(1.0, lambda: order.append("first"))
        simulator.schedule(1.0, lambda: order.append("second"))
        simulator.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self, simulator):
        seen = []
        simulator.schedule(3.5, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [3.5]

    def test_run_until_stops_before_later_events(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(10.0, lambda: fired.append(10))
        simulator.run(until=5.0)
        assert fired == [1]
        assert simulator.now == 5.0
        simulator.run()
        assert fired == [1, 10]

    def test_cancelled_event_does_not_fire(self, simulator):
        fired = []
        event = simulator.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        simulator.run()
        assert fired == []
        assert simulator.processed_events == 0

    def test_schedule_in_past_rejected(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_max_events_limits_execution(self, simulator):
        fired = []
        for index in range(10):
            simulator.schedule(float(index + 1), lambda index=index: fired.append(index))
        simulator.run(max_events=3)
        assert len(fired) == 3

    def test_events_scheduled_during_run_execute(self, simulator):
        order = []

        def chain():
            order.append("first")
            simulator.schedule(1.0, lambda: order.append("second"))

        simulator.schedule(1.0, chain)
        simulator.run()
        assert order == ["first", "second"]

    def test_step_returns_false_when_empty(self, simulator):
        assert simulator.step() is False

    def test_identical_seeds_give_identical_traces(self):
        def run_once():
            simulator = Simulator(seed=9)
            values = []
            simulator.schedule_periodic(
                1.0, lambda: values.append(simulator.rng.stream("x").random())
            )
            simulator.run(until=5.0)
            return values

        assert run_once() == run_once()


class TestPeriodicTimer:
    def test_fires_every_period(self, simulator):
        ticks = []
        simulator.schedule_periodic(1.0, lambda: ticks.append(simulator.now))
        simulator.run(until=5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_initial_delay(self, simulator):
        ticks = []
        simulator.schedule_periodic(1.0, lambda: ticks.append(simulator.now), initial_delay=0.5)
        simulator.run(until=2.0)
        assert ticks[0] == 0.5

    def test_stop_prevents_future_firings(self, simulator):
        ticks = []
        timer = simulator.schedule_periodic(1.0, lambda: ticks.append(simulator.now))
        simulator.run(until=2.0)
        timer.stop()
        simulator.run(until=6.0)
        assert ticks == [1.0, 2.0]
        assert not timer.running

    def test_period_can_change_between_firings(self, simulator):
        ticks = []
        timer = simulator.schedule_periodic(1.0, lambda: ticks.append(simulator.now))
        simulator.run(until=1.0)
        # The next firing (t=2.0) is already scheduled; the new period takes
        # effect from the firing after that one.
        timer.period = 2.0
        simulator.run(until=5.0)
        assert ticks == [1.0, 2.0, 4.0]

    def test_jitter_stays_within_bounds(self, simulator):
        ticks = []
        simulator.schedule_periodic(1.0, lambda: ticks.append(simulator.now), jitter=0.2)
        simulator.run(until=10.0)
        gaps = [after - before for before, after in zip(ticks, ticks[1:])]
        assert all(0.8 <= gap <= 1.4 for gap in gaps)

    def test_fire_count(self, simulator):
        timer = simulator.schedule_periodic(1.0, lambda: None)
        simulator.run(until=4.0)
        assert timer.fire_count == 4

    def test_invalid_period_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule_periodic(0.0, lambda: None)
        timer = simulator.schedule_periodic(1.0, lambda: None)
        with pytest.raises(SimulationError):
            timer.period = -1.0
