"""Adaptive fanout control (challenge 1 and 3 of §5.2).

The fanout is the paper's first contribution lever: "changing the fanout
precisely means changing the contribution of the process".  The controller
implemented here chooses, every round, a fanout proportional to the node's
*relative benefit* (its own benefit rate divided by the estimated population
rate), clamped to a configurable range:

``fanout = clamp(round(base_fanout * relative_benefit), min_fanout, max_fanout)``

The minimum fanout answers the paper's question "is there any requirement on
the size of the fanout?": classic epidemic analysis needs an average fanout
of about ``ln(n)`` for reliable dissemination, so the *system-wide average*
must stay near the base fanout — the controller redistributes work from
low-benefit to high-benefit nodes rather than removing work globally.  The
floor keeps even zero-benefit nodes minimally connected so they can still
relay enough traffic for the overlay to stay usable (and so they keep
receiving events that might start matching a future subscription).

A smoothing factor damps the reaction to a single noisy round, and the
controller records its recommendation history so convergence-speed
experiments (benchmark C1) can measure how many rounds it takes to settle
after an interest change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .estimators import BenefitEstimator, Ewma

__all__ = ["AdaptiveFanoutController", "FanoutSchedule"]


@dataclass(frozen=True)
class FanoutSchedule:
    """Static description of the allowed fanout range."""

    base_fanout: int = 4
    min_fanout: int = 1
    max_fanout: int = 12

    def __post_init__(self) -> None:
        if self.min_fanout < 0:
            raise ValueError("min_fanout must be non-negative")
        if not self.min_fanout <= self.base_fanout <= self.max_fanout:
            raise ValueError("require min_fanout <= base_fanout <= max_fanout")

    def clamp(self, value: float) -> int:
        """Round and clamp a raw recommendation into the allowed range."""
        return int(min(self.max_fanout, max(self.min_fanout, round(value))))


class AdaptiveFanoutController:
    """Per-node fanout controller driven by a :class:`BenefitEstimator`.

    Parameters
    ----------
    schedule:
        Allowed fanout range and the neutral operating point.
    estimator:
        Shared benefit estimator (usually owned by the fair gossip node).
    smoothing:
        EWMA weight applied to the raw recommendation before clamping;
        1.0 reacts instantly, smaller values react more slowly but resist
        noise.
    """

    def __init__(
        self,
        schedule: Optional[FanoutSchedule] = None,
        estimator: Optional[BenefitEstimator] = None,
        smoothing: float = 0.5,
        telemetry=None,
        telemetry_tags: Optional[dict] = None,
    ) -> None:
        self.schedule = schedule if schedule is not None else FanoutSchedule()
        self.estimator = estimator if estimator is not None else BenefitEstimator()
        self._smoothed = Ewma(alpha=smoothing)
        self._current = self.schedule.base_fanout
        self.history: List[int] = []
        #: Optional telemetry gauge mirroring the live recommendation, so
        #: snapshots expose each node's current fanout mid-run.
        self._gauge = (
            telemetry.gauge("controller.fanout", **(telemetry_tags or {}))
            if telemetry is not None
            else None
        )
        if self._gauge is not None:
            # Publish the neutral operating point immediately so snapshots
            # taken before the first adaptation (or in ablations that never
            # adapt this lever) show the effective value, not 0.
            self._gauge.set(self._current)

    # ----------------------------------------------------------- observing

    def observe_round(self, own_deliveries: float) -> None:
        """Record the deliveries of the round that just ended and re-plan."""
        self.estimator.observe_own_round(own_deliveries)
        self._recompute()

    def observe_peer_rate(self, rate: float) -> None:
        """Record a peer's advertised benefit rate."""
        self.estimator.observe_peer_rate(rate)

    def _recompute(self) -> None:
        raw = self.schedule.base_fanout * self.estimator.relative_benefit()
        smoothed = self._smoothed.observe(raw)
        self._current = self.schedule.clamp(smoothed)
        self.history.append(self._current)
        if self._gauge is not None:
            self._gauge.set(self._current)

    # ------------------------------------------------------------- reading

    @property
    def current_fanout(self) -> int:
        """The fanout to use in the next round."""
        return self._current

    def rounds_to_converge(self, target: Optional[int] = None, stable_rounds: int = 5) -> Optional[int]:
        """Number of rounds until the recommendation stabilised.

        Convergence means ``stable_rounds`` consecutive identical
        recommendations (optionally equal to ``target``).  Returns ``None``
        if the controller never stabilised within the recorded history —
        callers treat that as "did not converge".
        """
        if stable_rounds <= 0:
            raise ValueError("stable_rounds must be positive")
        history = self.history
        for index in range(len(history) - stable_rounds + 1):
            window = history[index : index + stable_rounds]
            if len(set(window)) == 1 and (target is None or window[0] == target):
                return index + 1
        return None
