"""Seeded random-number utilities for reproducible simulations.

Every stochastic component of the simulator draws from a :class:`RngRegistry`
stream rather than from the global :mod:`random` module.  Each named stream is
an independent :class:`random.Random` instance derived deterministically from
the registry seed, so adding a new source of randomness (for example a new
failure model) does not perturb the draws made by existing components.  This
is the standard "independent substreams" discipline used by discrete-event
simulators to keep experiments comparable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["RngRegistry", "derive_seed", "zipf_weights", "weighted_choice"]


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a child seed from ``base_seed`` and a stream ``name``.

    The derivation hashes the pair so that streams with similar names (for
    example ``"node-1"`` and ``"node-11"``) do not end up correlated, which
    can happen with naive additive schemes.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A registry of named, independently seeded random streams.

    Parameters
    ----------
    seed:
        Master seed.  Two registries built with the same seed produce
        identical draws for identically named streams, irrespective of the
        order in which the streams are first requested.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was built with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the named random stream, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry whose master seed derives from ``name``.

        Useful when a subsystem (for example a workload generator) wants its
        own namespace of streams without risking collisions with the
        simulator's streams.
        """
        return RngRegistry(derive_seed(self._seed, name))

    def reset(self) -> None:
        """Drop all streams so the next draws start from the stream seeds."""
        self._streams.clear()


def zipf_weights(count: int, exponent: float = 1.0) -> List[float]:
    """Return normalised Zipf weights for ranks ``1..count``.

    The first rank is the most popular.  ``exponent`` of 0 yields a uniform
    distribution; larger exponents concentrate the mass on the head.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item according to ``weights`` using the provided ``rng``.

    A tiny wrapper around :meth:`random.Random.choices` that returns a single
    element and validates the arguments, so call sites stay one-liners.
    """
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return rng.choices(list(items), weights=list(weights), k=1)[0]
