"""The :class:`Telemetry` facade: tagged instruments, one store, snapshots.

Instruments are keyed by ``(name, tags)`` where tags are structured
``key=value`` pairs (``node="node-007"``, ``topic="t3"``,
``system="fair-gossip"``) normalised into a sorted tuple, replacing the
legacy positional ``node: str`` parameter of ``sim.metrics``.  Hot-path
callers fetch an instrument once and hold it (``self._latency =
telemetry.histogram("rt.delivery_latency_units")``); the shortcut methods
(:meth:`increment`, :meth:`observe`, :meth:`set_gauge`) exist for cold
paths and compatibility shims.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .instruments import Counter, Gauge, Histogram, HistogramSummary, Timer
from .snapshot import TagTuple, TelemetrySnapshot, _normalise_tags

__all__ = ["Telemetry"]


class Telemetry:
    """Store of tagged, typed instruments; the single metrics API.

    Parameters
    ----------
    time_source:
        Optional clock for :meth:`timer` spans.  Defaults to
        ``time.perf_counter`` inside :class:`~repro.telemetry.instruments.Timer`;
        simulator-side callers pass ``lambda: simulator.now`` so timed spans
        stay deterministic.
    """

    def __init__(self, time_source: Optional[Callable[[], float]] = None) -> None:
        self._time_source = time_source
        self._counters: Dict[Tuple[str, TagTuple], Counter] = {}
        self._gauges: Dict[Tuple[str, TagTuple], Gauge] = {}
        self._histograms: Dict[Tuple[str, TagTuple], Histogram] = {}
        self._snapshot_sequence = 0

    # --------------------------------------------------------------- access

    def counter(self, name: str, **tags: object) -> Counter:
        """Return (creating if needed) the counter ``name`` for ``tags``."""
        key = (name, _normalise_tags(tags))
        metric = self._counters.get(key)
        if metric is None:
            metric = Counter()
            self._counters[key] = metric
        return metric

    def gauge(self, name: str, **tags: object) -> Gauge:
        """Return (creating if needed) the gauge ``name`` for ``tags``."""
        key = (name, _normalise_tags(tags))
        metric = self._gauges.get(key)
        if metric is None:
            metric = Gauge()
            self._gauges[key] = metric
        return metric

    def histogram(self, name: str, **tags: object) -> Histogram:
        """Return (creating if needed) the histogram ``name`` for ``tags``."""
        key = (name, _normalise_tags(tags))
        metric = self._histograms.get(key)
        if metric is None:
            metric = Histogram()
            self._histograms[key] = metric
        return metric

    def timer(self, name: str, **tags: object) -> Timer:
        """A context-manager timer recording into the histogram ``name``."""
        return Timer(self.histogram(name, **tags), time_source=self._time_source)

    # ------------------------------------------------------------ shortcuts

    def increment(self, name: str, amount: float = 1.0, **tags: object) -> None:
        """Increment a counter in one call."""
        self.counter(name, **tags).increment(amount)

    def observe(self, name: str, value: float, **tags: object) -> None:
        """Record one histogram sample in one call."""
        self.histogram(name, **tags).observe(value)

    def set_gauge(self, name: str, value: float, **tags: object) -> None:
        """Set a gauge in one call."""
        self.gauge(name, **tags).set(value)

    # -------------------------------------------------------------- queries

    def counter_value(self, name: str, **tags: object) -> float:
        """Current value of a counter (0 if it was never touched)."""
        metric = self._counters.get((name, _normalise_tags(tags)))
        return metric.value if metric is not None else 0.0

    def gauge_value(self, name: str, **tags: object) -> float:
        """Current value of a gauge (0 if it was never set)."""
        metric = self._gauges.get((name, _normalise_tags(tags)))
        return metric.value if metric is not None else 0.0

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every tag set."""
        return sum(
            metric.value
            for (metric_name, _), metric in self._counters.items()
            if metric_name == name
        )

    def counters_by_tag(self, name: str, tag: str) -> Dict[object, float]:
        """Mapping ``tag value -> counter value`` for instruments carrying ``tag``."""
        return {
            dict(tag_tuple)[tag]: metric.value
            for (metric_name, tag_tuple), metric in self._counters.items()
            if metric_name == name and tag in dict(tag_tuple)
        }

    def gauges_by_tag(self, name: str, tag: str) -> Dict[object, float]:
        """Mapping ``tag value -> gauge value`` for instruments carrying ``tag``."""
        return {
            dict(tag_tuple)[tag]: metric.value
            for (metric_name, tag_tuple), metric in self._gauges.items()
            if metric_name == name and tag in dict(tag_tuple)
        }

    def histogram_summary(self, name: str, **tags: object) -> HistogramSummary:
        """Summary of a histogram (empty summary if never observed).

        Read-only like :meth:`counter_value`: probing an absent histogram
        does not create it, so queries can never perturb the instrument set
        a snapshot serialises (the byte-identical-streams contract).
        """
        metric = self._histograms.get((name, _normalise_tags(tags)))
        if metric is None:
            return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return metric.summary()

    def names(self) -> Dict[str, List[str]]:
        """All metric names grouped by instrument type."""
        return {
            "counters": sorted({name for name, _ in self._counters}),
            "gauges": sorted({name for name, _ in self._gauges}),
            "histograms": sorted({name for name, _ in self._histograms}),
        }

    # ------------------------------------------------------------- snapshots

    def snapshot(self, at: float = 0.0) -> TelemetrySnapshot:
        """Immutable, JSON-serializable snapshot of every instrument.

        Entries are sorted by ``(name, tags)``, so two identical stores
        always serialise byte-identically.  Each call advances the
        snapshot sequence number.
        """
        sequence = self._snapshot_sequence
        self._snapshot_sequence += 1
        return TelemetrySnapshot(
            at=at,
            sequence=sequence,
            counters=tuple(
                (name, tags, metric.value)
                for (name, tags), metric in sorted(self._counters.items())
            ),
            gauges=tuple(
                (name, tags, metric.value)
                for (name, tags), metric in sorted(self._gauges.items())
            ),
            histograms=tuple(
                (name, tags, metric.state())
                for (name, tags), metric in sorted(self._histograms.items())
            ),
        )

    def reset(self) -> None:
        """Forget every recorded value (between independent runs).

        Instruments are zeroed *in place* rather than discarded: hot paths
        pre-bind instrument objects, and dropping the dictionaries would
        silently split those writers from every future reader.
        """
        for counter in self._counters.values():
            counter.value = 0.0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram.reset()
        self._snapshot_sequence = 0
