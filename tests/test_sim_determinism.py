"""Seed-determinism regression tests.

The runtime-vs-simulator parity test (and the result cache, and the
parallel executor) all lean on one discipline: a simulator run is a pure
function of its master seed, *including* the per-message draws made by the
``LatencyModel`` and ``LossModel`` inside ``repro.sim.network``.  These
tests pin that property down at the byte level: two runs with the same seed
must produce byte-identical traces; a different seed must not.
"""

from __future__ import annotations

import json

from repro.experiments import ExperimentConfig, run_experiment
from repro.gossip import GossipSystem
from repro.pubsub import TopicFilter
from repro.sim import BernoulliLoss, Network, Simulator, UniformLatency
from repro.workloads import TopicPopularity, TopicPublicationWorkload


def run_traced_system(seed: int) -> bytes:
    """One small gossip run with stochastic latency AND loss, fully traced.

    The trace records every network-level delivery with its timestamps:
    ``delivered_at - sent_at`` is the latency model's draw, and a message
    missing from the trace is (among other causes) the loss model's draw —
    so byte-identical traces imply identical RNG streams in both models.
    """
    simulator = Simulator(seed=seed)
    network = Network(
        simulator,
        latency_model=UniformLatency(0.05, 0.25),
        loss_model=BernoulliLoss(0.1),
    )
    trace = []
    network.add_delivery_hook(
        lambda message, delivered_at: trace.append(
            [message.sender, message.recipient, message.kind, message.sent_at, delivered_at]
        )
    )
    system = GossipSystem(simulator, network, [f"n{i}" for i in range(12)], bootstrap_degree=4)
    for index, node_id in enumerate(system.node_ids()):
        if index % 2 == 0:
            system.subscribe(node_id, TopicFilter("news"))
    popularity = TopicPopularity.zipf(4, exponent=1.0)
    workload = TopicPublicationWorkload(
        system, simulator, popularity, publishers=system.node_ids()[:3], rate=3.0
    )
    workload.start(duration=8.0, start_at=1.0)
    simulator.run(until=14.0)
    artifact = {
        "trace": trace,
        "published": [event.to_dict() for event in workload.schedule.events],
        "stats": {
            "sent": network.stats.sent,
            "delivered": network.stats.delivered,
            "lost": network.stats.lost,
            "bytes_sent": network.stats.bytes_sent,
            "sent_by_kind": dict(sorted(network.stats.sent_by_kind.items())),
        },
        "deliveries": system.delivery_log.total_deliveries(),
    }
    return json.dumps(artifact, sort_keys=True).encode("utf-8")


class TestSeedDeterminism:
    def test_same_seed_produces_byte_identical_traces(self):
        assert run_traced_system(seed=123) == run_traced_system(seed=123)

    def test_loss_and_latency_models_actually_drew(self):
        # Guard against the test silently passing on a run where the
        # stochastic models were never exercised.
        artifact = json.loads(run_traced_system(seed=123))
        assert artifact["stats"]["lost"] > 0
        latencies = {
            round(entry[4] - entry[3], 9) for entry in artifact["trace"]
        }
        assert len(latencies) > 10  # uniform draws, not a constant

    def test_different_seed_changes_the_trace(self):
        assert run_traced_system(seed=123) != run_traced_system(seed=124)

    def test_full_experiment_artifact_is_byte_identical(self):
        # End-to-end: the whole runner pipeline (interest assignment,
        # workload, churn-free run, fairness + reliability measurement)
        # serializes to identical bytes for identical configs.
        config = ExperimentConfig(
            name="determinism",
            nodes=16,
            topics=4,
            interest_model="zipf",
            max_topics_per_node=3,
            publication_rate=2.0,
            duration=6.0,
            drain_time=4.0,
            loss_rate=0.05,
            seed=77,
        )
        first = json.dumps(run_experiment(config).to_dict(), sort_keys=True)
        second = json.dumps(run_experiment(config).to_dict(), sort_keys=True)
        assert first == second
