"""Snapshots: immutable telemetry state, emitted periodically to sinks.

A :class:`TelemetrySnapshot` is the frozen image of every instrument at one
instant — JSON-serializable, hashable enough to compare, and queryable with
the same vocabulary as the live :class:`~repro.telemetry.facade.Telemetry`.
The :class:`SnapshotScheduler` turns snapshots into a *time series*: it
rides any object with the simulator's scheduling surface
(``schedule_periodic`` / ``now``), so the same class emits snapshots on
simulated-time ticks (given a ``Simulator``) or on wall-time ticks (given
an ``AsyncScheduler``), with zero RNG draws (no timer jitter) so a
deterministic simulation stays deterministic with snapshots enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .instruments import HistogramState, HistogramSummary

__all__ = ["TelemetrySnapshot", "SnapshotScheduler"]

#: Normalised tag form: sorted ``(key, value)`` pairs with values coerced
#: to strings.  This module owns the definition; the facade imports it so
#: writer and reader can never normalise differently.
TagTuple = Tuple[Tuple[str, str], ...]

#: Schema tag carried by every serialized snapshot.
SNAPSHOT_SCHEMA = "telemetry-snapshot/v1"


def _tags_to_list(tags: TagTuple) -> List[List[str]]:
    return [[key, value] for key, value in tags]


def _tags_from_payload(payload: Sequence[Sequence[str]]) -> TagTuple:
    return tuple((str(key), str(value)) for key, value in payload)


def _normalise_tags(tags: Dict[str, object]) -> TagTuple:
    return tuple(sorted((key, str(value)) for key, value in tags.items()))


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable image of a telemetry store at one instant.

    ``at`` is the emitting scheduler's time (simulated units in the
    discrete-event engine, wall-clock units in the runtime); ``sequence``
    numbers snapshots within one run.  Entries are ``(name, tags, value)``
    triples sorted by name and tags; histogram entries carry the bounded
    :class:`HistogramState` instead of raw samples.
    """

    at: float = 0.0
    sequence: int = 0
    counters: Tuple[Tuple[str, TagTuple, float], ...] = ()
    gauges: Tuple[Tuple[str, TagTuple, float], ...] = ()
    histograms: Tuple[Tuple[str, TagTuple, HistogramState], ...] = ()

    # ------------------------------------------------------------ dict codec

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; exact inverse of :meth:`from_dict`."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "at": self.at,
            "sequence": self.sequence,
            "counters": [
                [name, _tags_to_list(tags), value] for name, tags, value in self.counters
            ],
            "gauges": [
                [name, _tags_to_list(tags), value] for name, tags, value in self.gauges
            ],
            "histograms": [
                [name, _tags_to_list(tags), state.to_dict()]
                for name, tags, state in self.histograms
            ],
        }

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "TelemetrySnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output (or its JSON)."""
        return TelemetrySnapshot(
            at=float(payload["at"]),
            sequence=int(payload["sequence"]),
            counters=tuple(
                (str(name), _tags_from_payload(tags), float(value))
                for name, tags, value in payload.get("counters", ())
            ),
            gauges=tuple(
                (str(name), _tags_from_payload(tags), float(value))
                for name, tags, value in payload.get("gauges", ())
            ),
            histograms=tuple(
                (str(name), _tags_from_payload(tags), HistogramState.from_dict(state))
                for name, tags, state in payload.get("histograms", ())
            ),
        )

    # --------------------------------------------------------------- queries

    def counter_value(self, name: str, **tags: object) -> float:
        """Value of one counter (0 if absent)."""
        wanted = _normalise_tags(tags)
        for entry_name, entry_tags, value in self.counters:
            if entry_name == name and entry_tags == wanted:
                return value
        return 0.0

    def gauge_value(self, name: str, **tags: object) -> float:
        """Value of one gauge (0 if absent)."""
        wanted = _normalise_tags(tags)
        for entry_name, entry_tags, value in self.gauges:
            if entry_name == name and entry_tags == wanted:
                return value
        return 0.0

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every tag set."""
        return sum(value for entry_name, _, value in self.counters if entry_name == name)

    def counters_by_tag(self, name: str, tag: str) -> Dict[str, float]:
        """Mapping ``tag value -> counter value`` (entries carrying ``tag``)."""
        result: Dict[str, float] = {}
        for entry_name, entry_tags, value in self.counters:
            if entry_name != name:
                continue
            tag_map = dict(entry_tags)
            if tag in tag_map:
                result[tag_map[tag]] = value
        return result

    def gauges_by_tag(self, name: str, tag: str) -> Dict[str, float]:
        """Mapping ``tag value -> gauge value`` (entries carrying ``tag``)."""
        result: Dict[str, float] = {}
        for entry_name, entry_tags, value in self.gauges:
            if entry_name != name:
                continue
            tag_map = dict(entry_tags)
            if tag in tag_map:
                result[tag_map[tag]] = value
        return result

    def histogram_state(self, name: str, **tags: object) -> HistogramState:
        """State of one histogram (empty state if absent)."""
        wanted = _normalise_tags(tags)
        for entry_name, entry_tags, state in self.histograms:
            if entry_name == name and entry_tags == wanted:
                return state
        return HistogramState()

    def histogram_summary(self, name: str, **tags: object) -> HistogramSummary:
        """Summary of one histogram (empty summary if absent)."""
        return self.histogram_state(name, **tags).summary()

    def metric_names(self) -> Dict[str, List[str]]:
        """All metric names grouped by instrument type."""
        return {
            "counters": sorted({name for name, _, _ in self.counters}),
            "gauges": sorted({name for name, _, _ in self.gauges}),
            "histograms": sorted({name for name, _, _ in self.histograms}),
        }


class SnapshotScheduler:
    """Emits periodic telemetry snapshots to a set of sinks.

    Parameters
    ----------
    telemetry:
        The store to snapshot.
    sinks:
        :class:`~repro.telemetry.sinks.TelemetrySink` instances receiving
        every snapshot.
    period:
        Tick period in the scheduler's time units (simulated units for the
        discrete-event engine, wall-clock units for the live runtime).
    scheduler:
        Any object with the simulator scheduling surface
        (``schedule_periodic(period, action, label=..., jitter=...)`` and
        ``now``) — a ``Simulator`` or an ``AsyncScheduler``.
    collect:
        Optional zero-argument callable invoked before each snapshot so the
        owner can refresh derived gauges (fairness indices, ledger totals)
        right before they are frozen.
    """

    def __init__(
        self,
        telemetry,
        sinks: Sequence,
        period: float,
        scheduler,
        collect: Optional[Callable[[], None]] = None,
        label: str = "telemetry-snapshot",
    ) -> None:
        if period <= 0:
            raise ValueError("snapshot period must be positive")
        self.telemetry = telemetry
        self.sinks = list(sinks)
        self.period = period
        self._scheduler = scheduler
        self._collect = collect
        self._label = label
        self._timer = None
        self.emitted = 0
        self._last_snapshot: Optional["TelemetrySnapshot"] = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Arm the periodic tick (no jitter: snapshots draw no randomness)."""
        if self._timer is not None:
            return
        self._timer = self._scheduler.schedule_periodic(
            self.period, self.emit, label=self._label, jitter=0.0
        )

    def emit(self) -> "TelemetrySnapshot":
        """Collect, snapshot at the scheduler's current time, fan out."""
        if self._collect is not None:
            self._collect()
        snapshot = self.telemetry.snapshot(at=self._scheduler.now)
        for sink in self.sinks:
            sink.emit(snapshot)
        self.emitted += 1
        self._last_snapshot = snapshot
        return snapshot

    def stop(self, final: bool = True, close: bool = True) -> Optional["TelemetrySnapshot"]:
        """Stop ticking; optionally emit one final snapshot and close sinks.

        When a periodic tick already fired at the current time with the
        *identical* content (a run length that is an exact multiple of the
        period), the final emit is suppressed so the stream does not carry
        two copies of the same instant; the tick's snapshot is returned.
        """
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        snapshot = None
        if final:
            previous = self._last_snapshot
            if self._collect is not None:
                self._collect()
            candidate = self.telemetry.snapshot(at=self._scheduler.now)
            if previous is not None and replace(
                candidate, sequence=previous.sequence
            ) == previous:
                snapshot = previous
            else:
                for sink in self.sinks:
                    sink.emit(candidate)
                self.emitted += 1
                self._last_snapshot = candidate
                snapshot = candidate
        if close:
            for sink in self.sinks:
                sink.close()
        return snapshot
