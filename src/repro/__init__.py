"""repro — Fair Event Dissemination.

A full reproduction of *Towards Fair Event Dissemination* (Baehni,
Guerraoui, Koldehofe, Monod — ICDCS 2007): the selective information
dissemination model, the basic push gossip algorithm of Figure 4, the
fairness model of Figures 1–3, the fairness-adaptive gossip protocols the
paper calls for, and the structured/broker baselines it compares against —
all running on a deterministic discrete-event simulator, and — via
:mod:`repro.runtime` — live on real time and real transports (in-process,
UDP, TCP) with the same protocol classes.

Quickstart::

    from repro import quick_system

    system = quick_system(nodes=64, seed=1)
    system.subscribe("node-0", system.topic_filter("news"))
    system.publish("node-1", topic="news", headline="hello world")
    system.run(until=20.0)
    print(system.delivery_log.delivery_count("node-0"))

See :mod:`repro.experiments` for the declarative experiment harness used by
the benchmarks, and the ``examples/`` directory for runnable scenarios.
"""

from typing import Optional

from .core import FairGossipSystem
from .gossip import GossipSystem
from .pubsub import ContentFilter, Event, TopicFilter
from .sim import Network, Simulator

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Network",
    "GossipSystem",
    "FairGossipSystem",
    "Event",
    "TopicFilter",
    "ContentFilter",
    "quick_system",
    "__version__",
]


def quick_system(
    nodes: int = 32,
    seed: int = 0,
    fair: bool = False,
    fanout: int = 3,
    gossip_size: int = 8,
    round_period: float = 1.0,
):
    """Build a ready-to-use gossip system with sensible defaults.

    Parameters
    ----------
    nodes:
        Number of participants (named ``node-0`` ... ``node-{n-1}``).
    seed:
        Master seed for the deterministic simulator.
    fair:
        ``True`` builds the fairness-adaptive protocol, ``False`` the classic
        Figure 4 baseline.
    fanout / gossip_size / round_period:
        Protocol parameters (Figure 4's ``F``, ``N``, and the round length).

    Returns
    -------
    GossipSystem
        A started system; call ``subscribe`` / ``publish`` / ``run`` on it.
        The returned object also carries a ``topic_filter`` convenience
        method so quickstart code does not need extra imports.
    """
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    node_ids = [f"node-{index}" for index in range(nodes)]
    node_kwargs = {
        "fanout": fanout,
        "gossip_size": gossip_size,
        "round_period": round_period,
    }
    system_class = FairGossipSystem if fair else GossipSystem
    system = system_class(simulator, network, node_ids, node_kwargs=node_kwargs)
    # Small convenience for quickstart scripts and doctests.
    system.topic_filter = TopicFilter  # type: ignore[attr-defined]
    return system
